"""T1 — Accuracy: every engine vs every closed form it shares a contract
with (the evaluation's correctness table).

Paper-shape claim: all engines agree with the analytic baselines to within
MC error / discretization error; no engine is biased.
"""

from __future__ import annotations

import pytest

from repro.analytic import (
    bs_price,
    geometric_basket_price,
    margrabe_price,
    rainbow_two_asset_price,
)
from repro.lattice import beg_price, binomial_price
from repro.market import MultiAssetGBM
from repro.mc import MonteCarloEngine, QMCSobol
from repro.payoffs import Call, CallOnMax, ExchangeOption, GeometricBasketCall
from repro.pde import adi_price, fd_price
from repro.utils import Table
from repro.utils.numerics import relative_error
from repro.workloads import rainbow_workload


def build_t1_table() -> tuple[Table, list[float]]:
    """Price four contracts with all applicable engines; returns the table
    and the list of relative errors."""
    table = Table(
        ["contract", "engine", "price", "exact", "rel err"],
        title="T1 — accuracy vs closed forms",
        floatfmt=".6g",
    )
    rel_errors: list[float] = []

    def add(contract, engine, price, exact):
        err = relative_error(price, exact)
        rel_errors.append(err)
        table.add_row([contract, engine, price, exact, err])

    m1 = MultiAssetGBM.single(100, 0.2, 0.05)
    exact = bs_price(100, 100, 0.2, 0.05, 1.0)
    add("BS call d=1", "mc-qmc",
        MonteCarloEngine(65_536, technique=QMCSobol(8), seed=1)
        .price(m1, Call(100.0), 1.0).price, exact)
    add("BS call d=1", "lattice",
        binomial_price(100, Call(100.0), 0.2, 0.05, 1.0, 1000).price, exact)
    add("BS call d=1", "pde",
        fd_price(100, Call(100.0), 0.2, 0.05, 1.0, n_space=400, n_time=400).price,
        exact)

    w = rainbow_workload()
    exact = margrabe_price(100, 95, 0.2, 0.3, 0.4, 1.0)
    add("Margrabe d=2", "mc",
        MonteCarloEngine(400_000, seed=2).price(w.model, ExchangeOption(), 1.0).price,
        exact)
    add("Margrabe d=2", "lattice",
        beg_price(w.model, ExchangeOption(), 1.0, 250).price, exact)
    add("Margrabe d=2", "pde",
        adi_price(w.model, ExchangeOption(), 1.0, n_space=200, n_time=100).price,
        exact)

    exact = rainbow_two_asset_price(100, 95, 100, 0.2, 0.3, 0.4, 0.05, 1.0,
                                    kind="call-on-max")
    add("Stulz max-call d=2", "mc",
        MonteCarloEngine(400_000, seed=3).price(w.model, CallOnMax(100.0), 1.0).price,
        exact)
    add("Stulz max-call d=2", "lattice",
        beg_price(w.model, CallOnMax(100.0), 1.0, 250).price, exact)
    add("Stulz max-call d=2", "pde",
        adi_price(w.model, CallOnMax(100.0), 1.0, n_space=200, n_time=100).price,
        exact)

    m3 = MultiAssetGBM.equicorrelated(3, 100, 0.25, 0.05, 0.3)
    w3 = [1 / 3] * 3
    exact = geometric_basket_price(m3, w3, 100.0, 1.0)
    add("geom basket d=3", "mc-qmc",
        MonteCarloEngine(65_536, technique=QMCSobol(8), seed=4)
        .price(m3, GeometricBasketCall(w3, 100.0), 1.0).price, exact)
    add("geom basket d=3", "lattice",
        beg_price(m3, GeometricBasketCall(w3, 100.0), 1.0, 60).price, exact)
    return table, rel_errors


def test_t1_accuracy_table(benchmark, show):
    m4 = MultiAssetGBM.equicorrelated(4, 100, 0.25, 0.05, 0.3)
    payoff = GeometricBasketCall([0.25] * 4, 100.0)
    eng = MonteCarloEngine(50_000, seed=1)
    # Representative kernel: one multidimensional MC pricing call.
    benchmark(lambda: eng.price(m4, payoff, 1.0))
    table, rel_errors = build_t1_table()
    show(table.render())
    assert max(rel_errors) < 0.01, "some engine deviates >1% from closed form"


if __name__ == "__main__":
    print(build_t1_table()[0].render())
