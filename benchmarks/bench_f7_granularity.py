"""F7 — Granularity and machine ablation: how network quality and
reduction topology shape the curves.

Paper-shape claims:
* the latency-bound lattice is far more sensitive to α than MC;
* tree reduction beats linear reduction at scale for MC (the DESIGN.md
  reduction-topology ablation);
* on the slow network the lattice's efficiency collapses while MC merely
  dips.
"""

from __future__ import annotations

from repro.core import ParallelLatticePricer, ParallelMCPricer
from repro.utils import Table
from repro.workloads import basket_workload, default_machine_specs, rainbow_workload

P = 16


def build_f7_table():
    specs = default_machine_specs()
    mc_w = basket_workload(4)
    lat_w = rainbow_workload()
    table = Table(
        ["machine", "MC E(16)", "lattice E(16)", "MC tree T", "MC linear T"],
        title=f"F7 — efficiency at P={P} across machine variants + topology ablation",
        floatfmt=".4g",
    )
    rows = {}
    for name, spec in specs.items():
        mc = ParallelMCPricer(100_000, seed=1, spec=spec)
        mc_t1 = mc.price(mc_w.model, mc_w.payoff, mc_w.expiry, 1).sim_time
        mc_tp = mc.price(mc_w.model, mc_w.payoff, mc_w.expiry, P).sim_time
        lat = ParallelLatticePricer(200, spec=spec)
        lat_t1 = lat.price(lat_w.model, lat_w.payoff, lat_w.expiry, 1).sim_time
        lat_tp = lat.price(lat_w.model, lat_w.payoff, lat_w.expiry, P).sim_time
        mc_lin = ParallelMCPricer(100_000, seed=1, spec=spec,
                                  reduce_topology="linear")
        mc_lin_tp = mc_lin.price(mc_w.model, mc_w.payoff, mc_w.expiry, P).sim_time
        rows[name] = {
            "mc_eff": mc_t1 / (P * mc_tp),
            "lat_eff": lat_t1 / (P * lat_tp),
            "mc_tree_t": mc_tp,
            "mc_linear_t": mc_lin_tp,
        }
        table.add_row([name, rows[name]["mc_eff"], rows[name]["lat_eff"],
                       mc_tp, mc_lin_tp])
    return table, rows


def test_f7_granularity(benchmark, show):
    w = basket_workload(4)
    pricer = ParallelMCPricer(100_000, seed=1)
    benchmark(lambda: pricer.price(w.model, w.payoff, w.expiry, P))
    table, rows = build_f7_table()
    show(table.render())
    base, slow = rows["baseline"], rows["slow-network"]
    fast = rows["fast-network"]
    # Network quality ordering holds for both engines.
    assert fast["lat_eff"] > base["lat_eff"] > slow["lat_eff"]
    assert fast["mc_eff"] >= base["mc_eff"] >= slow["mc_eff"]
    # Lattice suffers proportionally more on the slow network than MC.
    lat_drop = base["lat_eff"] / slow["lat_eff"]
    mc_drop = base["mc_eff"] / slow["mc_eff"]
    assert lat_drop > mc_drop
    # Tree reduce never slower than linear; strictly better on slow network.
    for name, r in rows.items():
        assert r["mc_tree_t"] <= r["mc_linear_t"] + 1e-15, name
    assert slow["mc_tree_t"] < slow["mc_linear_t"]


if __name__ == "__main__":
    print(build_f7_table()[0].render())
