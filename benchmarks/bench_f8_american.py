"""F8 — American/Bermudan exercise: parallel lattice speedup with early
exercise, and LSMC as the MC-side alternative.

Paper-shape claims: adding early exercise increases per-level work
(intrinsic evaluation) and therefore *improves* the lattice's parallel
efficiency slightly (better compute/communication ratio); the LSM price
agrees with the lattice American value.
"""

from __future__ import annotations

from repro.core import ParallelLatticePricer
from repro.market import MultiAssetGBM, constant_correlation
from repro.mc import lsm_price
from repro.payoffs import CallOnMax
from repro.perf import ScalingSeries
from repro.utils import Table

PS = (1, 2, 4, 8, 16, 32)
MODEL = MultiAssetGBM(
    [100.0, 100.0], [0.2, 0.2], 0.05, dividends=[0.1, 0.1],
    correlation=constant_correlation(2, 0.0),
)
PAYOFF = CallOnMax(100.0)
STEPS = 120


def build_f8_table():
    eu = ScalingSeries.from_results(
        ParallelLatticePricer(STEPS).sweep(MODEL, PAYOFF, 1.0, PS)
    )
    am = ScalingSeries.from_results(
        ParallelLatticePricer(STEPS, american=True).sweep(MODEL, PAYOFF, 1.0, PS)
    )
    table = Table(
        ["P", "S(P) european", "S(P) american", "E european", "E american"],
        title="F8 — lattice speedup with and without early exercise (2-asset max-call)",
        floatfmt=".4g",
    )
    for i, p in enumerate(PS):
        table.add_row([p, float(eu.speedups[i]), float(am.speedups[i]),
                       float(eu.efficiencies[i]), float(am.efficiencies[i])])
    return table, eu, am


def test_f8_american(benchmark, show):
    pricer = ParallelLatticePricer(STEPS, american=True)
    benchmark(lambda: pricer.price(MODEL, PAYOFF, 1.0, 8))
    table, eu, am = build_f8_table()
    show(table.render())
    # Early exercise adds compute per level ⇒ ≥ efficiency at high P.
    assert am.efficiencies[-1] >= eu.efficiencies[-1] - 1e-9

    # Cross-validate the American value with LSMC (Bermudan lower bound).
    tree = ParallelLatticePricer(STEPS, american=True).price(MODEL, PAYOFF, 1.0, 1)
    lsm = lsm_price(MODEL, PAYOFF, 1.0, 12, 60_000, seed=1)
    show(f"lattice american: {tree.price:.4f}   LSMC (12 dates): "
         f"{lsm.price:.4f} ± {lsm.stderr:.4f}")
    assert 0.9 * tree.price < lsm.price < 1.03 * tree.price


if __name__ == "__main__":
    print(build_f8_table()[0].render())
