"""F6 — The curse-of-dimensionality crossover: lattice vs Monte Carlo cost
as dimension grows, at (roughly) matched accuracy.

Paper-shape claim: the lattice wins at d=1, stays competitive at d=2, and
is hopeless by d≥3–4: its cost grows exponentially (2^d branches ×
(n+1)^d nodes) while MC cost grows linearly in d. This crossover is the
reason the paper's multidimensional pricer leans on parallel Monte Carlo.
"""

from __future__ import annotations

from repro.core import WorkModel
from repro.market import MultiAssetGBM
from repro.mc import MonteCarloEngine
from repro.lattice import beg_price
from repro.payoffs import GeometricBasketCall
from repro.utils import Table
from repro.analytic import geometric_basket_price

#: Lattice steps giving ≈1-cent accuracy at each dimension (empirical).
LATTICE_STEPS = {1: 250, 2: 120, 3: 40}
MC_PATHS = 200_000  # ≈1-cent stderr on these contracts
WM = WorkModel()


def _workload(d: int):
    model = MultiAssetGBM.equicorrelated(d, 100.0, 0.25, 0.05,
                                         0.3 if d > 1 else 0.0)
    return model, GeometricBasketCall([1.0 / d] * d, 100.0)


def build_f6_table():
    table = Table(
        ["d", "lattice steps", "lattice work", "mc work", "lattice/mc",
         "lattice err", "mc err"],
        title="F6 — cost vs dimension at matched ~1-cent accuracy (work units)",
        floatfmt=".3g",
    )
    ratios = {}
    for d in (1, 2, 3):
        model, payoff = _workload(d)
        exact = geometric_basket_price(model, [1.0 / d] * d, 100.0, 1.0)
        steps = LATTICE_STEPS[d]
        lat = beg_price(model, payoff, 1.0, steps)
        lat_work = lat.nodes * WM.lattice_node_units(d)
        mc = MonteCarloEngine(MC_PATHS, seed=1).price(model, payoff, 1.0)
        mc_work = MC_PATHS * WM.mc_path_units(d, None)
        ratios[d] = lat_work / mc_work
        table.add_row([d, steps, lat_work, mc_work, ratios[d],
                       abs(lat.price - exact), abs(mc.price - exact)])
    # Extrapolated lattice work for d=4..6 at 40 steps (memory-infeasible to run).
    for d in (4, 5, 6):
        nodes = sum((t + 1) ** d for t in range(41))
        lat_work = nodes * WM.lattice_node_units(d)
        mc_work = MC_PATHS * WM.mc_path_units(d, None)
        ratios[d] = lat_work / mc_work
        table.add_row([d, 40, lat_work, mc_work, ratios[d], float("nan"),
                       float("nan")])
    return table, ratios


def test_f6_crossover(benchmark, show):
    model, payoff = _workload(2)
    benchmark(lambda: beg_price(model, payoff, 1.0, LATTICE_STEPS[2]))
    table, ratios = build_f6_table()
    show(table.render())
    # Lattice cheaper at d=1, MC decisively cheaper by d=3+.
    assert ratios[1] < 1.0
    assert ratios[3] > ratios[2] > ratios[1]
    assert ratios[6] > 100.0


if __name__ == "__main__":
    print(build_f6_table()[0].render())
