"""F17 — Sharded gateway saturation: goodput scaling and bounded-tail
overload behavior.

ROADMAP item 2 closes here. Seeded open-loop traffic (Poisson arrivals,
the default interactive/standard/bulk lane mix) is replayed on the
virtual-time executor across a shards × offered-load grid. Virtual time
makes the whole sweep deterministic in the seed — every goodput, shed
count and latency quantile below reproduces bit-for-bit — and decouples
the measured serving dynamics from CI host noise.

Two experiments:

* **F17a — saturation sweep.** Shards ∈ {1, 2, 4} × offered load ∈
  {1×, 2×} of the all-miss capacity. Gated claims:

  - **shard scaling**: goodput at 4 shards under 2× overload is ≥ 3×
    the 1-shard goodput (near-linear: disjoint queues, disjoint caches);
  - **shed, don't collapse**: every 2× cell keeps goodput ≥ 90% of its
    all-miss capacity with a nonzero shed rate — overload is absorbed by
    refusing work early, not by queue collapse;
  - **bounded tail**: 4-shard p99 latency under 2× overload stays ≤ 5×
    the 1×-load p99 — admission keeps the tail pinned to deadline
    budgets instead of letting it grow with the backlog.

* **F17b — hot disjoint shard caches.** The same book replayed
  *without* per-request seed variation (``unique=False``): after the
  cold pass every shard serves its slice from its own cache. Reported
  per shard straight from the labeled ``serve.cache_hits{shard=i}``
  counters; the claim (asserted, not timed) is an aggregate hit rate
  ≥ 80% with every shard's cache populated.

Each cell appends a ``kind="gateway"`` record to the active run ledger
(``REPRO_LEDGER``), so the CI perf job's ledger diff sees gateway drive
times next to the engine stages.

``--smoke`` shortens the traffic window; the gates are identical — they
are the PR's acceptance criteria.
"""

from __future__ import annotations

import sys

from repro.gateway import (CostModel, LoadgenConfig, capacity,
                           open_loop_schedule, run_schedule)
from repro.obs import MetricsRegistry
from repro.utils import Table

SEED = 17
SHARD_LIST = (1, 2, 4)
LOAD_LIST = (1.0, 2.0)
MAX_QUEUE = 64

SCALING_GATE = 3.0      # goodput(4 shards) / goodput(1 shard) at 2x
GOODPUT_FLOOR = 0.9     # goodput >= 90% of capacity in every 2x cell
P99_RATIO_GATE = 5.0    # p99(2x) <= 5 * p99(1x) at 4 shards
HIT_RATE_FLOOR = 0.8    # aggregate hit rate on repeated-book traffic


def _cell(n_shards: int, load: float, duration_s: float,
          metrics: MetricsRegistry | None = None):
    """One sweep cell: seeded traffic at ``load``× the cell's capacity."""
    cost = CostModel()
    base = LoadgenConfig(seed=SEED, duration_s=duration_s)
    cap = capacity(base, cost, n_shards)
    cfg = LoadgenConfig(seed=SEED, rate=load * cap, duration_s=duration_s)
    result = run_schedule(open_loop_schedule(cfg), n_shards=n_shards,
                          cost=cost, duration_s=duration_s,
                          max_queue=MAX_QUEUE, metrics=metrics)
    return cap, result


def build_f17a_saturation(duration_s: float = 10.0):
    table = Table(
        ["shards", "load", "offered", "goodput", "cap", "shed %",
         "p50 [ms]", "p99 [ms]", "max depth"],
        title=(f"F17a — gateway saturation sweep (virtual time, seed "
               f"{SEED}, {duration_s:g}s window, max_queue={MAX_QUEUE})"),
        floatfmt=".4g",
    )
    cells = {}
    for n_shards in SHARD_LIST:
        for load in LOAD_LIST:
            cap, res = _cell(n_shards, load, duration_s)
            cells[(n_shards, load)] = (cap, res)
            overall = res.overall_latency
            table.add_row([n_shards, f"{load:g}x", res.offered, res.goodput,
                           cap, 100.0 * res.shed_rate,
                           overall.quantile(0.5) * 1e3,
                           overall.quantile(0.99) * 1e3,
                           max(res.max_depths)])
    return table, cells


def build_f17b_cache(duration_s: float = 3.0, n_shards: int = 4):
    cost = CostModel()
    base = LoadgenConfig(seed=SEED, duration_s=duration_s, unique=False)
    cfg = LoadgenConfig(seed=SEED, rate=0.8 * capacity(base, cost, n_shards),
                        duration_s=duration_s, unique=False)
    metrics = MetricsRegistry()
    result = run_schedule(open_loop_schedule(cfg), n_shards=n_shards,
                          cost=cost, duration_s=duration_s,
                          max_queue=MAX_QUEUE, metrics=metrics)
    table = Table(["shard", "hits", "misses", "hit rate", "max depth"],
                  title=(f"F17b — hot disjoint shard caches (repeated "
                         f"{cfg.n_contracts}-contract book, {n_shards} "
                         f"shards)"),
                  floatfmt=".3g")
    for shard in range(n_shards):
        hits = metrics.counter("serve.cache_hits", shard=str(shard)).value
        misses = metrics.counter("serve.cache_misses", shard=str(shard)).value
        rate = hits / (hits + misses) if hits + misses else 0.0
        table.add_row([shard, int(hits), int(misses), rate,
                       result.max_depths[shard]])
    total_hits = metrics.sum_counters("serve.cache_hits")
    total = total_hits + metrics.sum_counters("serve.cache_misses")
    aggregate = total_hits / total if total else 0.0
    return table, aggregate, metrics


def check_gates(cells) -> list[str]:
    """Every failed acceptance gate as a message (empty == all pass)."""
    failures = []
    g1 = cells[(1, 2.0)][1].goodput
    g4 = cells[(4, 2.0)][1].goodput
    if g4 < SCALING_GATE * g1:
        failures.append(f"goodput scaling {g4 / max(g1, 1e-9):.2f}x "
                        f"(1->4 shards at 2x) < {SCALING_GATE}x gate")
    for n_shards in SHARD_LIST:
        cap, res = cells[(n_shards, 2.0)]
        if res.goodput < GOODPUT_FLOOR * cap:
            failures.append(f"{n_shards}-shard 2x goodput {res.goodput:.1f} "
                            f"< {GOODPUT_FLOOR:.0%} of capacity {cap:.1f}")
        if res.shed_total == 0:
            failures.append(f"{n_shards}-shard 2x cell shed nothing — "
                            f"overload not exercised")
        if max(res.max_depths) > 3 * MAX_QUEUE:
            failures.append(f"{n_shards}-shard queue depth "
                            f"{max(res.max_depths)} exceeds lanes x "
                            f"max_queue bound {3 * MAX_QUEUE}")
    p99_1x = cells[(4, 1.0)][1].overall_latency.quantile(0.99)
    p99_2x = cells[(4, 2.0)][1].overall_latency.quantile(0.99)
    if p99_2x > P99_RATIO_GATE * p99_1x:
        failures.append(f"4-shard p99 grew {p99_2x / max(p99_1x, 1e-9):.2f}x "
                        f"under 2x overload (gate {P99_RATIO_GATE}x)")
    return failures


# ---------------------------------------------------------------------------
# pytest lane (smoke scale; the gates are the acceptance criteria)
# ---------------------------------------------------------------------------

def test_f17_gateway(benchmark, show):
    table, cells = build_f17a_saturation(duration_s=3.0)
    show(table.render())
    failures = check_gates(cells)
    assert not failures, "; ".join(failures)

    cache_table, hit_rate, metrics = build_f17b_cache()
    show(cache_table.render())
    assert hit_rate >= HIT_RATE_FLOOR, (
        f"aggregate hit rate {hit_rate:.1%} < {HIT_RATE_FLOOR:.0%}")
    assert len(metrics.matching("serve.cache_hits")) == 4

    def drive_once():
        return _cell(2, 2.0, 1.0)

    benchmark(drive_once)


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv[1:]
    duration = 3.0 if smoke else 10.0
    table, cells = build_f17a_saturation(duration_s=duration)
    print(table.render())
    print()
    cache_table, hit_rate, _ = build_f17b_cache(
        duration_s=1.0 if smoke else 3.0)
    print(cache_table.render())
    failures = check_gates(cells)
    if hit_rate < HIT_RATE_FLOOR:
        failures.append(f"aggregate hit rate {hit_rate:.1%} < "
                        f"{HIT_RATE_FLOOR:.0%} floor")
    if failures:
        for msg in failures:
            print(f"FAIL: {msg}", file=sys.stderr)
        raise SystemExit(1)
    scaling = cells[(4, 2.0)][1].goodput / cells[(1, 2.0)][1].goodput
    print(f"OK: goodput scales {scaling:.2f}x from 1 to 4 shards at 2x "
          f"overload; every 2x cell sheds without collapsing; hot caches "
          f"hit {hit_rate:.0%}")
