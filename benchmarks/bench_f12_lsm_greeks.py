"""F12 — Scaling of the two risk-desk workloads: American MC (parallel
LSM) and hedge parameters (parallel CRN Greeks).

Shape claims:
* parallel LSM's speedup sits *between* plain MC (embarrassing) and the
  lattice (level-synchronous): one O(k²) allreduce per exercise date;
* more exercise dates ⇒ lower LSM efficiency at fixed P (more allreduces
  per unit of path work);
* the Greeks sweep scales like pricing (communication stays O(d) while
  compute multiplies by the 1+4d bumped models).
"""

from __future__ import annotations

from repro.core import (
    ParallelLatticePricer,
    ParallelLSMPricer,
    ParallelMCGreeks,
    ParallelMCPricer,
)
from repro.market import MultiAssetGBM
from repro.payoffs import BasketCall, Put
from repro.perf import ScalingSeries
from repro.utils import Table
from repro.workloads import basket_workload, rainbow_workload

PS = (1, 2, 4, 8, 16, 32)


def build_f12_table():
    m1 = MultiAssetGBM.single(100.0, 0.2, 0.05)
    mc_w = basket_workload(4)
    lat_w = rainbow_workload()

    mc = ScalingSeries.from_results(
        ParallelMCPricer(100_000, seed=1).sweep(mc_w.model, mc_w.payoff,
                                                mc_w.expiry, PS)
    )
    lsm = ScalingSeries.from_results(
        ParallelLSMPricer(100_000, 50, seed=1).sweep(m1, Put(100.0), 1.0, PS)
    )
    lat = ScalingSeries.from_results(
        ParallelLatticePricer(100).sweep(lat_w.model, lat_w.payoff,
                                         lat_w.expiry, PS)
    )
    greeks_pricer = ParallelMCGreeks(50_000, seed=1)
    greeks_times = [
        greeks_pricer.compute(mc_w.model, BasketCall([0.25] * 4, 100.0),
                              1.0, p).run.sim_time
        for p in PS
    ]
    greeks = ScalingSeries(ps=PS, times=tuple(greeks_times))

    table = Table(
        ["P", "S(P) MC", "S(P) greeks", "S(P) LSM", "S(P) lattice"],
        title="F12 — speedup of the risk-desk workloads",
        floatfmt=".4g",
    )
    for i, p in enumerate(PS):
        table.add_row([p, float(mc.speedups[i]), float(greeks.speedups[i]),
                       float(lsm.speedups[i]), float(lat.speedups[i])])
    return table, mc, greeks, lsm, lat


def test_f12_lsm_greeks(benchmark, show):
    m1 = MultiAssetGBM.single(100.0, 0.2, 0.05)
    pricer = ParallelLSMPricer(50_000, 25, seed=1)
    benchmark(lambda: pricer.price(m1, Put(100.0), 1.0, 8))
    table, mc, greeks, lsm, lat = build_f12_table()
    show(table.render())
    # MC and the Greeks sweep are both near-linear; the Greeks sweep can
    # even edge out plain pricing (17× the compute per rank amortizes the
    # one reduction better). LSM sits in between; the lattice trails.
    assert mc.speedups[-1] > 32 * 0.8
    assert greeks.speedups[-1] > 32 * 0.8
    assert greeks.speedups[-1] > lsm.speedups[-1]
    assert lsm.speedups[-1] > lat.speedups[-1]
    # LSM sits strictly between the extremes.
    assert 2 * lat.speedups[-1] < lsm.speedups[-1] < 0.9 * mc.speedups[-1]

    # More exercise dates ⇒ lower LSM efficiency at P=16.
    few = ParallelLSMPricer(100_000, 10, seed=1).sweep(m1, Put(100.0), 1.0,
                                                       (1, 16))
    many = ParallelLSMPricer(100_000, 100, seed=1).sweep(m1, Put(100.0), 1.0,
                                                         (1, 16))
    eff_few = few[0].sim_time / few[1].sim_time / 16
    eff_many = many[0].sim_time / many[1].sim_time / 16
    show(f"LSM efficiency at P=16: {eff_few:.3f} (10 dates) vs "
         f"{eff_many:.3f} (100 dates)")
    # Communication grows strictly with the date count; efficiency dips
    # only slightly because the per-path work grows with it too.
    assert many[1].comm_time > few[1].comm_time
    assert eff_many <= eff_few + 1e-6


if __name__ == "__main__":
    print(build_f12_table()[0].render())
