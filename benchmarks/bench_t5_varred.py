"""T5 — Variance reduction: standard error and effective speedup of each
technique on the 4-asset arithmetic basket.

Paper-shape claim: antithetic ≈ mild gain; stratified ≈ moderate;
geometric control variate ≈ 10–100× stderr reduction (the classical
result); randomized QMC the strongest at this sample size. "Var speedup"
is (stderr_plain/stderr_tech)² — the factor fewer paths needed for equal
error.
"""

from __future__ import annotations

from repro.analytic import geometric_basket_price
from repro.market import MultiAssetGBM
from repro.mc import (
    Antithetic,
    ControlVariate,
    MonteCarloEngine,
    PlainMC,
    QMCSobol,
    Stratified,
)
from repro.payoffs import BasketCall, GeometricBasketCall
from repro.utils import Table
from repro.workloads import basket_workload

N = 65_536


def build_t5_table():
    w = basket_workload(4)
    gexact = geometric_basket_price(w.model, [0.25] * 4, 100.0, 1.0)
    techniques = {
        "plain": PlainMC(),
        "antithetic": Antithetic(),
        "stratified(32)": Stratified(32),
        "control-variate": ControlVariate(GeometricBasketCall([0.25] * 4, 100.0),
                                          gexact),
        "qmc-sobol(8)": QMCSobol(8),
    }
    table = Table(
        ["technique", "price", "stderr", "var speedup ×"],
        title=f"T5 — variance reduction on the 4-asset basket call, N={N}",
        floatfmt=".5g",
    )
    stderrs = {}
    base = None
    for name, tech in techniques.items():
        r = MonteCarloEngine(N, technique=tech, seed=7).price(w.model, w.payoff,
                                                              w.expiry)
        stderrs[name] = r.stderr
        if base is None:
            base = r.stderr
        table.add_row([name, r.price, r.stderr, (base / r.stderr) ** 2])
    return table, stderrs


def test_t5_variance_reduction(benchmark, show):
    w = basket_workload(4)
    gexact = geometric_basket_price(w.model, [0.25] * 4, 100.0, 1.0)
    cv = ControlVariate(GeometricBasketCall([0.25] * 4, 100.0), gexact)
    eng = MonteCarloEngine(N, technique=cv, seed=7)
    benchmark(lambda: eng.price(w.model, w.payoff, w.expiry))
    table, stderrs = build_t5_table()
    show(table.render())
    assert stderrs["antithetic"] < stderrs["plain"]
    assert stderrs["stratified(32)"] < stderrs["plain"]
    assert stderrs["control-variate"] < 0.15 * stderrs["plain"]
    assert stderrs["qmc-sobol(8)"] < 0.3 * stderrs["plain"]


if __name__ == "__main__":
    print(build_t5_table()[0].render())
