"""F14 — Observability overhead on the MC hot path.

Three claims for the obs layer, measured on F1's MC speedup configuration:

1. **Disabled is free** — constructing the pricer with a *disabled*
   tracer (``Tracer(enabled=False)``) costs nothing measurable: every
   call site gates on the tracer's truthiness, so the disabled path is
   one branch. Its measured overhead must sit at noise level (< 5%,
   same budget the fault layer meets in F13).
2. **Enabled is cheap** — a live tracer recording every phase and
   per-rank span adds < 5% wall-clock: span recording is append-only
   (no formatting, no I/O on the hot path; exporters run after the run).
3. **Full observability is cheap** — a live tracer *plus* a metrics
   registry (quantile histograms on every engine/task observation) *plus*
   a run ledger appending a canonical-JSON record per run stays under the
   same 5% budget: histogram observation is two dict updates and a
   ``log2``, and the ledger writes one line per *run*, not per task.

The variants are timed interleaved (bare → disabled → enabled → full per
repeat) so clock drift and cache state hit all variants equally; the best
of 7 repeats is compared (min is the noise-resistant estimator — see
``repro.perf.timer.TimingStats`` — which keeps the 5% gate stable at
CI's quick scale where scheduler jitter exceeds the budget).
"""

from __future__ import annotations

import sys
import tempfile
import time
from pathlib import Path

from repro.core import ParallelMCPricer
from repro.obs import MetricsRegistry, RunLedger, Tracer
from repro.utils import Table
from repro.workloads import basket_workload

N_PATHS = 200_000  # F1's MC speedup configuration
P = 8
REPEATS = 7
BUDGET = 0.05


def _measure(n_paths: int = N_PATHS, repeats: int = REPEATS) -> dict:
    """Interleaved best-of-N wall-clock per observability variant."""
    w = basket_workload(2)
    live = Tracer()
    tmpdir = tempfile.mkdtemp(prefix="f14_ledger_")
    full = ParallelMCPricer(n_paths, seed=1, tracer=Tracer())
    full.metrics = MetricsRegistry()
    full.ledger = RunLedger(Path(tmpdir) / "runs.jsonl")
    pricers = {
        "bare (no tracer)": ParallelMCPricer(n_paths, seed=1),
        "disabled tracer": ParallelMCPricer(
            n_paths, seed=1, tracer=Tracer(enabled=False)),
        "enabled tracer": ParallelMCPricer(n_paths, seed=1, tracer=live),
        "tracer+metrics+ledger": full,
    }
    samples = {name: [] for name in pricers}
    for _ in range(repeats):
        for name, pricer in pricers.items():
            live.clear()  # measure steady-state recording, not list growth
            t0 = time.perf_counter()
            pricer.price(w.model, w.payoff, w.expiry, P)
            samples[name].append(time.perf_counter() - t0)
    return {name: min(ts) for name, ts in samples.items()}


def build_f14_overhead(n_paths: int = N_PATHS,
                       repeats: int = REPEATS) -> tuple[Table, dict]:
    bests = _measure(n_paths, repeats)
    t_bare = bests["bare (no tracer)"]
    overheads = {name: t / t_bare - 1.0 for name, t in bests.items()}
    table = Table(
        ["variant", "best wall (s)", "overhead"],
        title=f"F14 — obs overhead on MC, N={n_paths}, P={P} "
              f"(best of {repeats}, interleaved)",
        floatfmt=".4g",
    )
    for name, t in bests.items():
        table.add_row([name, t, overheads[name]])
    return table, overheads


def test_f14_obs_overhead(benchmark, show):
    w = basket_workload(2)
    traced = ParallelMCPricer(N_PATHS, seed=1, tracer=Tracer())
    benchmark(lambda: traced.price(w.model, w.payoff, w.expiry, P))

    table, overheads = build_f14_overhead()
    show(table.render())
    disabled = overheads["disabled tracer"]
    enabled = overheads["enabled tracer"]
    full = overheads["tracer+metrics+ledger"]
    assert disabled < BUDGET, f"disabled-tracer overhead {disabled:.1%} ≥ 5%"
    assert enabled < BUDGET, f"enabled-tracer overhead {enabled:.1%} ≥ 5%"
    assert full < BUDGET, \
        f"tracer+metrics+ledger overhead {full:.1%} ≥ 5%"


if __name__ == "__main__":
    quick = "--quick" in sys.argv[1:]
    # Quick mode (CI smoke): half-size problem — still long enough per run
    # (~20 ms) that scheduler jitter stays well below the 5% budget.
    table, overheads = (build_f14_overhead(100_000, 5) if quick
                        else build_f14_overhead())
    print(table.render())
    failed = {name: ov for name, ov in overheads.items() if ov >= BUDGET}
    if failed:
        for name, ov in failed.items():
            print(f"FAIL: {name} overhead {ov:.1%} ≥ {BUDGET:.0%}",
                  file=sys.stderr)
        raise SystemExit(1)
    print(f"OK: all variants under the {BUDGET:.0%} budget")
