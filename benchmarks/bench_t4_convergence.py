"""T4 — Convergence: error vs cost for MC (N^{-1/2}), QMC (≈N^{-1}) and
the lattice (O(1/n)), all on contracts with exact prices.

Paper-shape claim: the fitted MC slope is ≈ −0.5, the QMC slope is
markedly steeper, and the (smoothed) lattice error decays ≈ 1/n.
"""

from __future__ import annotations

import numpy as np

from repro.analytic import geometric_basket_price
from repro.lattice import beg_price
from repro.market import MultiAssetGBM
from repro.mc import MonteCarloEngine, QMCSobol
from repro.payoffs import GeometricBasketCall
from repro.utils import Table

MODEL = MultiAssetGBM.equicorrelated(3, 100.0, 0.25, 0.05, 0.3)
W = [1 / 3] * 3
PAYOFF = GeometricBasketCall(W, 100.0)
EXACT = None  # filled lazily


def _exact() -> float:
    global EXACT
    if EXACT is None:
        EXACT = geometric_basket_price(MODEL, W, 100.0, 1.0)
    return EXACT


def mc_errors(ns, *, seeds=range(8)) -> list[float]:
    """RMS error over seeds at each N (plain MC)."""
    out = []
    for n in ns:
        errs = [
            MonteCarloEngine(n, seed=s).price(MODEL, PAYOFF, 1.0).price - _exact()
            for s in seeds
        ]
        out.append(float(np.sqrt(np.mean(np.square(errs)))))
    return out


def qmc_errors(ns) -> list[float]:
    return [
        abs(MonteCarloEngine(n, technique=QMCSobol(8, seed=3)).price(
            MODEL, PAYOFF, 1.0).price - _exact())
        for n in ns
    ]


def lattice_errors(steps) -> list[float]:
    out = []
    for n in steps:
        a = beg_price(MODEL, PAYOFF, 1.0, n).price
        b = beg_price(MODEL, PAYOFF, 1.0, n + 1).price
        out.append(abs(0.5 * (a + b) - _exact()))  # damp odd/even wobble
    return out


def build_t4_table():
    ns = [4096, 16384, 65536]
    steps = [16, 32, 64]
    mc = mc_errors(ns)
    qmc = qmc_errors(ns)
    lat = lattice_errors(steps)
    table = Table(
        ["N paths", "MC rms err", "QMC err", "lattice steps", "lattice err"],
        title="T4 — convergence toward the exact geometric-basket price",
        floatfmt=".3e",
    )
    for i in range(3):
        table.add_row([ns[i], mc[i], qmc[i], steps[i], lat[i]])
    slopes = {
        "mc": float(np.polyfit(np.log(ns), np.log(mc), 1)[0]),
        "qmc": float(np.polyfit(np.log(ns), np.log(np.maximum(qmc, 1e-12)), 1)[0]),
        "lattice": float(np.polyfit(np.log(steps), np.log(lat), 1)[0]),
    }
    return table, slopes


def test_t4_convergence(benchmark, show):
    benchmark(lambda: MonteCarloEngine(16384, seed=0).price(MODEL, PAYOFF, 1.0))
    table, slopes = build_t4_table()
    show(table.render() + f"\nfitted slopes: {slopes}")
    assert -0.75 < slopes["mc"] < -0.3, slopes
    assert slopes["qmc"] < -0.6, slopes
    assert slopes["lattice"] < -0.5, slopes


if __name__ == "__main__":
    t, s = build_t4_table()
    print(t.render())
    print("slopes:", s)
