"""F18 — Risk-scenario workload: sweep throughput scaling and cache
hit-rate structure.

The risk tier turns the Premia/Nsp-style risk-management benchmark into
gated CI claims. Seeded stress scenarios revalue a fixed strike-ladder
book, first as lane-tagged traffic through the virtual-time gateway
(deterministic in the seed), then as an axis-bump sweep through one
shared :class:`PricingService`/:class:`PriceCache`.

Two experiments:

* **F18a — sweep throughput scaling.** One scenario sweep (base book
  interactive, revaluations bulk, two passes) replayed at shards ∈
  {1, 2, 4}, offered at 1.5× each cell's all-miss capacity. Virtual
  time makes scenarios/sec a pure function of the seed. Gated claims:

  - **shard scaling**: scenarios/sec at 4 shards is ≥ 2.5× the 1-shard
    rate (disjoint queues and caches, near-linear drain);
  - **cache-hot second pass**: every cell completes with a nonzero
    aggregate hit rate — the repeated pass is served from shard caches.

* **F18b — exact hit/miss structure.** The axis-bump sweep
  (spot/vol/rate ladders, each led by the identity scenario) through a
  shared cache: after the base pass primes it, axis-base points are
  pure hits and bumped points pure misses, so the split is *counted*,
  not approximated. A second full pass is all hits. Gated claims: the
  exact counts match the formula and the two-pass aggregate hit rate
  clears the floor.

Every cell appends ``kind="risk"`` (and the drive's ``kind="gateway"``)
records to the active run ledger (``REPRO_LEDGER``), so the CI perf
job's ledger diff tracks risk sweep times next to the other stages.

``--smoke`` shrinks scenario counts and path budgets; the gates are
identical — they are the PR's acceptance criteria.
"""

from __future__ import annotations

import sys

from repro.obs import MetricsRegistry, active_ledger, set_active_ledger
from repro.risk.bridge import risk_run_record, run_risk_sweep
from repro.risk.scenarios import SWEEP_AXES, axis_sweep, stress_scenarios
from repro.risk.var import revalue_book
from repro.serve import PriceCache, PricingService
from repro.utils import Table
from repro.workloads.generators import strike_strip

SEED = 23
SHARD_LIST = (1, 2, 4)
N_CONTRACTS = 4
REPEATS = 2

SCALING_GATE = 2.5      # scenarios/sec (4 shards) / (1 shard)
HIT_RATE_FLOOR = 0.5    # two-pass aggregate hit rate of the axis sweep


def build_f18a_scaling(n_scenarios: int = 32, n_paths: int = 2_000):
    book = strike_strip(N_CONTRACTS, dim=2)
    scenarios = stress_scenarios(2, n_scenarios, seed=SEED)
    table = Table(
        ["shards", "offered", "completed", "shed", "scen/s", "hit rate"],
        title=(f"F18a — risk sweep throughput (virtual time, seed {SEED}, "
               f"{n_scenarios} scenarios x {N_CONTRACTS} contracts, "
               f"{REPEATS} passes)"),
        floatfmt=".4g",
    )
    cells = {}
    for n_shards in SHARD_LIST:
        result = run_risk_sweep(book, scenarios, n_shards=n_shards,
                                n_paths=n_paths, seed=SEED, repeats=REPEATS)
        record = risk_run_record(result, n_scenarios=n_scenarios,
                                 n_contracts=N_CONTRACTS, engine="mc",
                                 seed=SEED, repeats=REPEATS)
        cells[n_shards] = record.extra
        table.add_row([n_shards, result.offered, result.completed,
                       result.shed_total, record.extra["scenarios_per_s"],
                       record.extra["hit_rate"]])
    return table, cells


def build_f18b_cache(n_contracts: int = 4, n_paths: int = 1_000):
    book = strike_strip(n_contracts, dim=2)
    sweep = axis_sweep()
    metrics = MetricsRegistry()
    cache = PriceCache(max(64, 4 * n_contracts * (len(sweep) + 1)),
                       metrics=metrics)
    # Suspend the ambient ledger for the real revaluations: the per-batch
    # serve records and per-run engine records of a smoke-scale sweep
    # would pollute the (kind, engine, stage) groups the scaling baseline
    # owns. Only the two kind="risk" sweep summaries are appended below.
    ledger = active_ledger()
    set_active_ledger(None)
    try:
        with PricingService(cache=cache, max_batch=n_contracts,
                            metrics=metrics) as service:
            reports = [revalue_book(book, sweep, n_paths=n_paths, seed=SEED,
                                    levels=(0.95,), service=service,
                                    metrics=metrics)
                       for _ in range(2)]
    finally:
        set_active_ledger(ledger)
    if ledger is not None:
        for label, rep in zip(("cold", "hot"), reports):
            ledger.append(rep.to_record(
                {"experiment": "f18b", "pass": label,
                 "n_contracts": n_contracts, "n_paths": n_paths,
                 "seed": SEED}))
    n_axes, n_bumped = len(SWEEP_AXES), len(sweep) - len(SWEEP_AXES)
    expected = {
        "cold hits": n_axes * n_contracts,
        "cold misses": (1 + n_bumped) * n_contracts,
        "hot hits": (1 + len(sweep)) * n_contracts,
        "hot misses": 0,
    }
    observed = {
        "cold hits": reports[0].cache_hits,
        "cold misses": reports[0].cache_misses,
        "hot hits": reports[1].cache_hits,
        "hot misses": reports[1].cache_misses,
    }
    table = Table(["pass", "hits", "misses", "hit rate"],
                  title=(f"F18b — axis-sweep cache structure "
                         f"({n_contracts}-contract book, "
                         f"{len(sweep)}-scenario sweep, exact counts)"),
                  floatfmt=".3g")
    for label, rep in zip(("cold", "cache-hot"), reports):
        table.add_row([label, rep.cache_hits, rep.cache_misses,
                       rep.hit_rate])
    hits = sum(r.cache_hits for r in reports)
    total = hits + sum(r.cache_misses for r in reports)
    aggregate = hits / total if total else 0.0
    return table, expected, observed, aggregate


def check_gates(cells, expected, observed, aggregate) -> list[str]:
    """Every failed acceptance gate as a message (empty == all pass)."""
    failures = []
    r1 = cells[1]["scenarios_per_s"]
    r4 = cells[4]["scenarios_per_s"]
    if r4 < SCALING_GATE * r1:
        failures.append(f"scenarios/sec scaling {r4 / max(r1, 1e-9):.2f}x "
                        f"(1->4 shards) < {SCALING_GATE}x gate")
    for n_shards, extra in cells.items():
        if extra["hit_rate"] <= 0.0:
            failures.append(f"{n_shards}-shard sweep finished with zero "
                            f"cache hits — repeated pass not cache-hot")
        if extra["completed"] <= 0:
            failures.append(f"{n_shards}-shard sweep completed nothing")
    if expected != observed:
        failures.append(f"axis-sweep hit/miss structure drifted: "
                        f"expected {expected}, observed {observed}")
    if aggregate < HIT_RATE_FLOOR:
        failures.append(f"two-pass aggregate hit rate {aggregate:.1%} < "
                        f"{HIT_RATE_FLOOR:.0%} floor")
    return failures


# ---------------------------------------------------------------------------
# pytest lane (smoke scale; the gates are the acceptance criteria)
# ---------------------------------------------------------------------------

def test_f18_risk(benchmark, show):
    table, cells = build_f18a_scaling(n_scenarios=12, n_paths=500)
    show(table.render())
    cache_table, expected, observed, aggregate = build_f18b_cache(
        n_contracts=3, n_paths=500)
    show(cache_table.render())
    failures = check_gates(cells, expected, observed, aggregate)
    assert not failures, "; ".join(failures)

    book = strike_strip(N_CONTRACTS, dim=2)
    scenarios = stress_scenarios(2, 8, seed=SEED)

    def sweep_once():
        return run_risk_sweep(book, scenarios, n_shards=2, n_paths=500,
                              seed=SEED)

    benchmark(sweep_once)


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv[1:]
    table, cells = build_f18a_scaling(
        n_scenarios=12 if smoke else 32, n_paths=500 if smoke else 2_000)
    print(table.render())
    print()
    cache_table, expected, observed, aggregate = build_f18b_cache(
        n_contracts=3 if smoke else 4, n_paths=500 if smoke else 1_000)
    print(cache_table.render())
    failures = check_gates(cells, expected, observed, aggregate)
    if failures:
        for msg in failures:
            print(f"FAIL: {msg}", file=sys.stderr)
        raise SystemExit(1)
    scaling = cells[4]["scenarios_per_s"] / cells[1]["scenarios_per_s"]
    print(f"OK: scenarios/sec scales {scaling:.2f}x from 1 to 4 shards; "
          f"axis-sweep hit/miss structure exact; two-pass hit rate "
          f"{aggregate:.0%}")
