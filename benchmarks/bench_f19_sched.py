"""F19 — Execute-stage scheduling: stealing vs LPT vs static chunks.

Two halves, one claim: when task durations are heterogeneous and the
heterogeneity is not known in advance, work stealing recovers the
balance that static block chunks forfeit and that LPT can only buy with
good cost estimates.

**F19a (real wall clock).** The F16 straggler shape — a 64-rank MC job on
a 4-worker thread pool with four *adjacent* straggler ranks (real
injected sleeps) — but instead of re-chunking, the run swaps in the
:class:`~repro.parallel.sched.WorkStealingScheduler`. Static chunking
welds all four stragglers into one worker's chunk, serializing them;
stealing holds one task in flight per worker, so when the straggler
node's queue backs up the idle workers drain it. Gates: steal wall
< 80 % of static wall, prices **bitwise identical** (scheduling is
placement only).

**F19b (virtual time, byte-reproducible).** A skewed lattice-style task
set (geometric per-level costs) swept across worker counts through
:func:`~repro.parallel.sched.simulate_schedule`. LPT is fed *uniform*
estimates — the stale-belief scenario: the planner thinks tasks are
equal, so its "longest first" order is no order at all — while stealing
needs no estimates. Gates: stealing's makespan beats stale-LPT on at
least one curve point and never exceeds static anywhere; the steal
schedule digest replays byte-identically.

``--smoke`` shrinks paths and the sweep; the gates are identical. Runs
land in the ambient ledger (``REPRO_LEDGER``) with ``extra["sched"]``
rows, which is how the CI perf-regression diff sees this benchmark.
"""

from __future__ import annotations

import sys

from repro.core import ParallelMCPricer
from repro.parallel import ThreadBackend
from repro.parallel.backends import suggest_chunksize
from repro.parallel.faults import FaultEvent, FaultKind, FaultPlan, FaultPolicy
from repro.parallel.sched import WorkStealingScheduler, simulate_schedule
from repro.utils import Table
from repro.workloads import basket_workload

P = 64                   # ranks (= tasks per map)
WORKERS = 4
SLEEP_S = 0.03           # real injected delay per straggler task
STRAGGLER_RANKS = (0, 1, 2, 3)   # adjacent — a single degraded node
WALL_GATE = 0.8          # steal must finish under this fraction of static


def _straggler_plan() -> FaultPlan:
    events = tuple(FaultEvent(r, FaultKind.STRAGGLER, slowdown=2.0)
                   for r in STRAGGLER_RANKS)
    return FaultPlan(events=events, seed=19)


def _run(n_paths: int, scheduler=None, chunksize=None):
    backend = ThreadBackend(WORKERS)
    w = basket_workload(2)
    pricer = ParallelMCPricer(
        n_paths, seed=7, backend=backend, chunksize=chunksize,
        scheduler=scheduler, faults=_straggler_plan(),
        policy=FaultPolicy(mode="retry", straggler_sleep=SLEEP_S),
    )
    try:
        return pricer.price(w.model, w.payoff, w.expiry, P)
    finally:
        backend.close()


def build_f19a_stragglers(n_paths: int = 64_000):
    """Real wall clock: static chunks vs stealing on the straggler node."""
    static_chunk = suggest_chunksize(P, WORKERS)
    static = _run(n_paths, chunksize=static_chunk)
    steal = _run(n_paths, scheduler=WorkStealingScheduler(seed=19))

    table = Table(
        ["variant", "wall [s]", "speedup", "steals", "price"],
        title=(f"F19a — scheduling under stragglers (P={P}, {WORKERS} "
               f"workers, {len(STRAGGLER_RANKS)} adjacent stragglers x "
               f"{SLEEP_S:g}s)"),
        floatfmt=".6g",
    )
    sched_report = steal.meta["fault_report"].sched
    table.add_row([f"static chunk={static_chunk}", static.wall_time, 1.0,
                   0, static.price])
    table.add_row(["work stealing", steal.wall_time,
                   static.wall_time / max(steal.wall_time, 1e-12),
                   sched_report.steals if sched_report else 0, steal.price])
    return table, {"static": static, "steal": steal,
                   "sched": sched_report}


def _skewed_costs(n_tasks: int) -> list[float]:
    """Lattice-style skew: a few heavy levels, a long tail of light ones."""
    return [8.0 if i % 16 == 0 else (2.0 if i % 4 == 0 else 0.5)
            for i in range(n_tasks)]


def build_f19b_curve(n_tasks: int = 96, p_list=(2, 4, 8, 16)):
    """Virtual-time curve: static vs stale-LPT vs stealing, by workers."""
    costs = _skewed_costs(n_tasks)
    uniform = [1.0] * n_tasks
    table = Table(
        ["workers", "static [s]", "stale-LPT [s]", "steal [s]",
         "steal vs LPT", "steals"],
        title=(f"F19b — virtual-time makespans, {n_tasks} skewed tasks "
               f"(LPT fed uniform estimates)"),
        floatfmt=".4g",
    )
    rows = []
    for p in p_list:
        static = simulate_schedule(costs, p, strategy="static")
        lpt = simulate_schedule(costs, p, strategy="lpt",
                                estimates=uniform)
        steal = simulate_schedule(costs, p, strategy="steal", seed=19)
        replay = simulate_schedule(costs, p, strategy="steal", seed=19)
        rows.append({"p": p, "static": static.makespan,
                     "lpt": lpt.makespan, "steal": steal.makespan,
                     "steals": steal.stats.steals,
                     "replay_ok": steal.digest() == replay.digest()})
        table.add_row([p, static.makespan, lpt.makespan, steal.makespan,
                       lpt.makespan / max(steal.makespan, 1e-12),
                       steal.stats.steals])
    return table, rows


def check_gates(a, rows) -> list[str]:
    failures = []
    if a["static"].price != a["steal"].price:
        failures.append("scheduling moved the price "
                        f"({a['static'].price!r} != {a['steal'].price!r})")
    if a["static"].stderr != a["steal"].stderr:
        failures.append("scheduling moved the stderr")
    if not a["steal"].wall_time < WALL_GATE * a["static"].wall_time:
        failures.append(
            f"steal wall {a['steal'].wall_time:.3f}s not under "
            f"{WALL_GATE:.0%} of static {a['static'].wall_time:.3f}s")
    if not any(r["steal"] < r["lpt"] for r in rows):
        failures.append("stealing never beat stale-estimate LPT")
    if any(r["steal"] > r["static"] + 1e-9 for r in rows):
        failures.append("stealing lost to static chunks on the curve")
    if not all(r["replay_ok"] for r in rows):
        failures.append("steal schedule digest did not replay")
    return failures


# ---------------------------------------------------------------------------
# pytest lane (smoke scale; the gates are the acceptance criteria)
# ---------------------------------------------------------------------------


def test_f19_sched(benchmark, show):
    table_a, a = build_f19a_stragglers(n_paths=32_000)
    show(table_a.render())
    table_b, rows = build_f19b_curve()
    show(table_b.render())
    failures = check_gates(a, rows)
    assert not failures, "; ".join(failures)

    benchmark(lambda: build_f19b_curve(n_tasks=48, p_list=(4,)))


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv[1:]
    table_a, a = build_f19a_stragglers(n_paths=16_000 if smoke else 64_000)
    print(table_a.render())
    print()
    table_b, rows = build_f19b_curve(
        n_tasks=48 if smoke else 96,
        p_list=(4, 8) if smoke else (2, 4, 8, 16))
    print(table_b.render())
    failures = check_gates(a, rows)
    if failures:
        for msg in failures:
            print(f"FAIL: {msg}", file=sys.stderr)
        raise SystemExit(1)
    best = max(r["lpt"] / max(r["steal"], 1e-12) for r in rows)
    print(f"OK: steal {a['static'].wall_time / a['steal'].wall_time:.2f}x "
          f"over static chunks under stragglers (bitwise-equal prices); "
          f"beats stale-LPT up to {best:.2f}x on the virtual curve")
    raise SystemExit(0)
