"""F5 — Isoefficiency curves W(P) for the three engines.

Paper-shape claim: MC needs only Θ(P log P) work growth to hold
efficiency; the lattice needs polynomial growth; the transpose-bound ADI
grows fastest (and cannot reach high efficiency targets at all).
"""

from __future__ import annotations

import math

from repro.parallel import MachineSpec
from repro.perf import isoefficiency_curve
from repro.utils import Table

SPEC = MachineSpec()
PS = (2, 4, 8, 16, 32)
TARGET = 0.5


def mc_time(n: int, p: int) -> float:
    t = (n / p) * SPEC.flop_time * 50
    if p > 1:
        t += math.ceil(math.log2(p)) * SPEC.message_time(24)
    return t


def lattice_time(n: int, p: int) -> float:
    t = (n**3 / p) * SPEC.flop_time * 10
    if p > 1:
        t += n * 2 * SPEC.message_time(8 * n)
    return t


def pde_time(n: int, p: int) -> float:
    t = (n * n / p) * SPEC.flop_time * 30
    if p > 1:
        t += 2 * (p - 1) * SPEC.message_time(8.0 * n * n / (p * p))
    return t


def build_f5_table() -> tuple[Table, dict[str, list[int]]]:
    curves = {
        "mc (paths)": [w for _, w in isoefficiency_curve(mc_time, PS, TARGET)],
        "lattice (steps)": [w for _, w in isoefficiency_curve(lattice_time, PS, TARGET)],
        "pde (grid/axis)": [w for _, w in isoefficiency_curve(pde_time, PS, TARGET)],
    }
    table = Table(
        ["P"] + list(curves),
        title=f"F5 — isoefficiency W(P) at E = {TARGET}",
        floatfmt=".6g",
    )
    for i, p in enumerate(PS):
        table.add_row([p] + [curves[k][i] for k in curves])
    return table, curves


def test_f5_isoefficiency(benchmark, show):
    benchmark(lambda: isoefficiency_curve(mc_time, PS, TARGET))
    table, curves = build_f5_table()
    show(table.render())
    mc = curves["mc (paths)"]
    # MC tracks P·log₂P growth within 2×.
    ratios = [mc[i] / (p * math.log2(p)) for i, p in enumerate(PS)]
    assert max(ratios) / min(ratios) < 2.0
    # In work units, PDE grows fastest from P=2 to P=32.
    pde_growth = (curves["pde (grid/axis)"][-1] / curves["pde (grid/axis)"][0]) ** 2
    lat_growth = (curves["lattice (steps)"][-1] / curves["lattice (steps)"][0]) ** 3
    mc_growth = mc[-1] / mc[0]
    assert pde_growth > mc_growth
    assert pde_growth > lat_growth


if __name__ == "__main__":
    print(build_f5_table()[0].render())
