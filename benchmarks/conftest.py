"""Benchmark-suite configuration.

Every module in this directory regenerates one table (T*) or figure (F*)
of the reconstructed evaluation (see DESIGN.md for the index and
EXPERIMENTS.md for recorded results). Run with::

    pytest benchmarks/ --benchmark-only -s

The ``-s`` flag lets the paper-style ASCII tables print; the
pytest-benchmark timings cover each experiment's representative kernel.
"""

from __future__ import annotations

import pytest


@pytest.fixture(scope="session")
def show(request):
    """Print an experiment table so it appears in the benchmark log."""

    def _show(text: str) -> None:
        print("\n" + text + "\n")

    return _show
