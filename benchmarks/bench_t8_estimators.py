"""T8 — Estimator extensions (the optional/future-work features of
DESIGN.md): second QMC family, importance sampling, jump diffusion, MLMC.

Shape claims:
* scrambled Halton and Sobol both beat plain MC on the smooth basket
  integrand; Sobol ≥ Halton at these dimensions;
* importance sampling turns a deep-OTM digital-like tail estimate from
  ~100% relative noise to sub-percent;
* Merton jump-diffusion MC matches the closed-form series;
* MLMC reaches the target error at a fraction of single-level cost.
"""

from __future__ import annotations

import numpy as np

from repro.analytic import bs_price, geometric_basket_price, merton_price
from repro.market import MertonJumpDiffusion, MultiAssetGBM
from repro.mc import (
    DirectSampling,
    ImportanceSampling,
    MonteCarloEngine,
    drift_to_strike,
    mlmc_price,
)
from repro.payoffs import AsianArithmeticCall, Call, GeometricBasketCall
from repro.rng import HaltonSequence, Philox4x32, SobolSequence
from repro.utils import Table
from repro.utils.numerics import norm_ppf


def qmc_family_comparison(n: int = 16_384):
    """Integrate the 4-asset geometric basket with each point family."""
    model = MultiAssetGBM.equicorrelated(4, 100.0, 0.25, 0.05, 0.3)
    w = [0.25] * 4
    payoff = GeometricBasketCall(w, 100.0)
    exact = geometric_basket_price(model, w, 100.0, 1.0)
    df = float(np.exp(-0.05))

    def price_points(u: np.ndarray) -> float:
        z = np.asarray(norm_ppf(np.clip(u, 1e-12, 1 - 1e-12)))
        return df * float(payoff.terminal(model.terminal_from_normals(z, 1.0)).mean())

    mc_u = Philox4x32(3).uniforms(n * 4).reshape(n, 4)
    estimates = {
        "plain MC": price_points(mc_u),
        "halton": price_points(HaltonSequence(4, skip=1).next(n)),
        "halton scrambled": price_points(
            HaltonSequence(4, scramble=True, seed=5, skip=1).next(n)
        ),
        "sobol scrambled": price_points(
            SobolSequence(4, scramble=True, seed=5, skip=1).next(n)
        ),
    }
    return exact, estimates


def build_t8_table():
    table = Table(["experiment", "estimate", "reference", "abs err / stderr"],
                  title="T8 — estimator extensions", floatfmt=".5g")

    exact, estimates = qmc_family_comparison()
    errs = {k: abs(v - exact) for k, v in estimates.items()}
    for name, est in estimates.items():
        table.add_row([f"geo-basket via {name}", est, exact, errs[name]])

    # Importance sampling on a deep OTM call.
    m1 = MultiAssetGBM.single(100.0, 0.2, 0.05)
    otm = Call(200.0)
    exact_otm = bs_price(100, 200, 0.2, 0.05, 1.0)
    plain = MonteCarloEngine(100_000, seed=2).price(m1, otm, 1.0)
    shift = drift_to_strike(m1, otm, 1.0)
    imp = MonteCarloEngine(100_000, technique=ImportanceSampling(shift),
                           seed=2).price(m1, otm, 1.0)
    table.add_row(["OTM call, plain MC", plain.price, exact_otm, plain.stderr])
    table.add_row(["OTM call, importance", imp.price, exact_otm, imp.stderr])

    # Merton jump diffusion vs the series.
    mj = MertonJumpDiffusion(100, 0.2, 0.05, jump_intensity=1.0,
                             jump_mean=-0.1, jump_vol=0.15)
    series = merton_price(100, 100, 0.2, 0.05, 1.0, jump_intensity=1.0,
                          jump_mean=-0.1, jump_vol=0.15)
    merton_mc = MonteCarloEngine(200_000, technique=DirectSampling(),
                                 seed=4).price(mj, Call(100.0), 1.0)
    table.add_row(["Merton MC vs series", merton_mc.price, series,
                   merton_mc.stderr])

    # MLMC vs single level at matched target error.
    mlmc = mlmc_price(m1, AsianArithmeticCall(100.0), 1.0, base_steps=4,
                      levels=4, target_stderr=0.01, seed=5)
    pilot = MonteCarloEngine(20_000, steps=64, seed=6).price(
        m1, AsianArithmeticCall(100.0), 1.0
    )
    sigma = pilot.stderr * np.sqrt(20_000)
    single_cost = (sigma / 0.01) ** 2 * 64
    table.add_row(["MLMC price (ε=0.01)", mlmc.price, pilot.price, mlmc.stderr])
    table.add_row(["MLMC cost / single-level", mlmc.cost_units / single_cost,
                   1.0, 0.0])
    return table, {
        "qmc_errs": errs,
        "is_stderrs": (plain.stderr, imp.stderr),
        "merton": (merton_mc, series),
        "mlmc_cost_ratio": mlmc.cost_units / single_cost,
    }


def test_t8_estimators(benchmark, show):
    m1 = MultiAssetGBM.single(100.0, 0.2, 0.05)
    mj = MertonJumpDiffusion(100, 0.2, 0.05, 1.0, -0.1, 0.15)
    eng = MonteCarloEngine(50_000, technique=DirectSampling(), seed=1)
    benchmark(lambda: eng.price(mj, Call(100.0), 1.0))
    table, data = build_t8_table()
    show(table.render())
    errs = data["qmc_errs"]
    assert errs["sobol scrambled"] < errs["plain MC"]
    assert errs["halton scrambled"] < errs["plain MC"]
    se_plain, se_is = data["is_stderrs"]
    assert se_is < 0.1 * se_plain
    merton_mc, series = data["merton"]
    assert abs(merton_mc.price - series) < 5 * merton_mc.stderr
    assert data["mlmc_cost_ratio"] < 0.5


if __name__ == "__main__":
    print(build_t8_table()[0].render())
