"""The paper's headline experiment, end to end: strong-scaling all three
parallel pricing algorithms on the simulated multiprocessor, fitting
Amdahl serial fractions, and printing the full diagnostic tables.

Run:  python examples/scalability_study.py
Optionally tweak the machine:  --alpha 5e-6 --beta 1e-9
"""

import argparse

from repro import MachineSpec
from repro.core import ParallelLatticePricer, ParallelMCPricer, ParallelPDEPricer
from repro.perf import ScalingExperiment
from repro.workloads import basket_workload, rainbow_workload, spread_workload

P_LIST = [1, 2, 4, 8, 16, 32]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--alpha", type=float, default=50e-6,
                        help="message latency in seconds (default 2002-era 50µs)")
    parser.add_argument("--beta", type=float, default=1e-8,
                        help="seconds per byte (default 100 MB/s)")
    parser.add_argument("--paths", type=int, default=200_000)
    parser.add_argument("--steps", type=int, default=200)
    args = parser.parse_args()
    spec = MachineSpec(alpha=args.alpha, beta=args.beta)

    mc_w = basket_workload(4)
    experiments = [
        ScalingExperiment(
            ParallelMCPricer(args.paths, seed=1, spec=spec),
            mc_w.model, mc_w.payoff, mc_w.expiry,
            label=f"Monte Carlo — 4-asset basket, N={args.paths}",
        ),
    ]
    lat_w = rainbow_workload()
    experiments.append(
        ScalingExperiment(
            ParallelLatticePricer(args.steps, spec=spec),
            lat_w.model, lat_w.payoff, lat_w.expiry,
            label=f"BEG lattice — 2-asset max-call, {args.steps} steps",
        )
    )
    pde_w = spread_workload()
    experiments.append(
        ScalingExperiment(
            ParallelPDEPricer(n_space=128, n_time=32, spec=spec),
            pde_w.model, pde_w.payoff, pde_w.expiry,
            label="ADI PDE — 2-asset spread call, 128² grid",
        )
    )

    print(f"simulated machine: flop_time={spec.flop_time:g}s  "
          f"alpha={spec.alpha:g}s  beta={spec.beta:g}s/B\n")
    for exp in experiments:
        print(exp.report(P_LIST))
        print()

    print("Reading the tables: Monte Carlo scales almost linearly (its "
          "reduction payload is O(1)); the lattice saturates early (one halo "
          "exchange per time level); the PDE peaks and then degrades (two "
          "all-to-all transposes per step). This is the shape the ICPP 2002 "
          "evaluation reports — reproduced here deterministically.\n")

    # Make the signatures visible: trace one run of each engine at P=4 and
    # draw its timeline.
    from repro.perf import render_gantt

    print("Execution timelines at P = 4 (# compute, ~ communication, . idle):\n")
    for label, pricer, w in (
        ("Monte Carlo", ParallelMCPricer(args.paths, seed=1, spec=spec,
                                         record=True), mc_w),
        ("BEG lattice", ParallelLatticePricer(min(args.steps, 64), spec=spec,
                                              record=True), lat_w),
        ("ADI PDE", ParallelPDEPricer(n_space=64, n_time=6, spec=spec,
                                      record=True), pde_w),
    ):
        r = pricer.price(w.model, w.payoff, w.expiry, 4)
        print(f"{label}:")
        print(render_gantt(r.meta["cluster"], width=68))
        print()


if __name__ == "__main__":
    main()
