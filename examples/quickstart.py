"""Quickstart: price a multidimensional basket option, sequentially and in
parallel, and read off the speedup curve.

Run:  python examples/quickstart.py
"""

from repro import (
    BasketCall,
    MonteCarloEngine,
    MultiAssetGBM,
    ParallelMCPricer,
)
from repro.analytic import geometric_basket_price
from repro.payoffs import GeometricBasketCall
from repro.perf import ScalingSeries


def main() -> None:
    # A four-asset market: spot 100, 25% vol, 5% rate, pairwise ρ = 0.3.
    model = MultiAssetGBM.equicorrelated(4, spot=100.0, vol=0.25, rate=0.05,
                                         rho=0.3)
    payoff = BasketCall([0.25] * 4, strike=100.0)

    # --- sequential price with a confidence interval -----------------------
    engine = MonteCarloEngine(n_paths=200_000, seed=42)
    result = engine.price(model, payoff, expiry=1.0)
    lo, hi = result.confidence_interval()
    print(f"sequential price : {result.price:.4f} ± {result.stderr:.4f}  "
          f"(95% CI [{lo:.4f}, {hi:.4f}])")

    # Sanity anchor: the geometric basket has an exact closed form.
    exact_geo = geometric_basket_price(model, [0.25] * 4, 100.0, 1.0)
    geo = engine.price(model, GeometricBasketCall([0.25] * 4, 100.0), expiry=1.0)
    print(f"geometric basket : {geo.price:.4f} (exact {exact_geo:.4f})")

    # --- the same job on a simulated multiprocessor -------------------------
    pricer = ParallelMCPricer(n_paths=200_000, seed=42)
    results = pricer.sweep(model, payoff, 1.0, [1, 2, 4, 8, 16, 32])
    series = ScalingSeries.from_results(results, label="parallel MC, 4-asset basket")
    print()
    print(series.table().render())
    print()
    print("All P produce statistically identical prices; only T(P) changes:")
    for r in results:
        print(f"  P={r.p:<3d} price={r.price:.4f}  T_sim={r.sim_time:.4f}s  "
              f"comm={100 * r.comm_fraction:.1f}%")


if __name__ == "__main__":
    main()
