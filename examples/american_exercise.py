"""American and Bermudan exercise, three ways.

Values an American put (one asset) with the binomial lattice, the
Crank–Nicolson/PSOR finite-difference solver, and Longstaff–Schwartz
Monte Carlo, then a two-asset Bermudan max-call with the BEG lattice and
LSMC — showing the engines agree and where early exercise matters.

Run:  python examples/american_exercise.py
"""

from repro import MultiAssetGBM, constant_correlation
from repro.analytic import bs_price
from repro.lattice import beg_price, binomial_price
from repro.mc import LongstaffSchwartz
from repro.payoffs import CallOnMax, Put
from repro.pde import fd_price
from repro.utils import Table


def american_put() -> None:
    spot, strike, vol, rate, expiry = 100.0, 100.0, 0.2, 0.05, 1.0
    model = MultiAssetGBM.single(spot, vol, rate)
    euro = bs_price(spot, strike, vol, rate, expiry, option="put")

    tree = binomial_price(spot, Put(strike), vol, rate, expiry, 2000,
                          american=True)
    pde = fd_price(spot, Put(strike), vol, rate, expiry, american=True,
                   n_space=400, n_time=200)
    lsm = LongstaffSchwartz(degree=3).price(model, Put(strike), expiry, 50,
                                            200_000, seed=7)

    table = Table(["method", "price", "note"],
                  title="American put  S=K=100, σ=20%, r=5%, T=1", floatfmt=".4f")
    table.add_row(["European (exact)", euro, "no early exercise"])
    table.add_row(["binomial 2000", tree.price, "reference"])
    table.add_row(["CN + PSOR", pde.price, f"grid 400x200, Δ={pde.delta:.3f}"])
    table.add_row(["LSM (200k paths)", lsm.price, f"± {lsm.stderr:.4f}"])
    print(table.render())
    premium = tree.price - euro
    print(f"early-exercise premium: {premium:.4f}\n")


def bermudan_max_call() -> None:
    # The classical Broadie–Glasserman benchmark setup: two iid assets with
    # heavy dividends make early exercise valuable.
    model = MultiAssetGBM(
        [100.0, 100.0], [0.2, 0.2], 0.05, dividends=[0.10, 0.10],
        correlation=constant_correlation(2, 0.0),
    )
    payoff = CallOnMax(100.0)
    expiry = 1.0

    euro = beg_price(model, payoff, expiry, 200)
    amer = beg_price(model, payoff, expiry, 200, american=True)
    lsm = LongstaffSchwartz(degree=2).price(model, payoff, expiry, 12, 200_000,
                                            seed=9)

    table = Table(["method", "price"],
                  title="2-asset max-call, q=10% each (BEG lattice, 200 steps)",
                  floatfmt=".4f")
    table.add_row(["European lattice", euro.price])
    table.add_row(["American lattice", amer.price])
    table.add_row(["Bermudan LSM (12 dates)", lsm.price])
    print(table.render())
    print(f"early-exercise premium: {amer.price - euro.price:.4f}")
    print(f"lattice deltas: {amer.delta}")


if __name__ == "__main__":
    american_put()
    bermudan_max_call()
