"""Beyond plain GBM Monte Carlo: the estimator extensions.

Walks through four upgrades a production pricing desk layers onto crude
Monte Carlo, each validated against an exact reference:

1. jump risk        — Merton jump diffusion vs its closed-form series;
2. rare payoffs     — importance sampling on a deep out-of-the-money call;
3. smooth integrands — scrambled Halton vs scrambled Sobol vs plain MC;
4. path-dependence  — multilevel Monte Carlo on an Asian option.

Run:  python examples/beyond_gbm.py
"""

import numpy as np

from repro import MonteCarloEngine, MultiAssetGBM
from repro.analytic import bs_price, merton_price
from repro.market import MertonJumpDiffusion
from repro.mc import (
    DirectSampling,
    ImportanceSampling,
    drift_to_strike,
    mlmc_price,
)
from repro.payoffs import AsianArithmeticCall, Call
from repro.rng import HaltonSequence, SobolSequence
from repro.utils import Table
from repro.utils.numerics import norm_ppf


def jump_risk() -> None:
    mj = MertonJumpDiffusion(100, 0.2, 0.05, jump_intensity=1.0,
                             jump_mean=-0.10, jump_vol=0.15)
    series = merton_price(100, 100, 0.2, 0.05, 1.0, jump_intensity=1.0,
                          jump_mean=-0.10, jump_vol=0.15)
    gbm = bs_price(100, 100, 0.2, 0.05, 1.0)
    mc = MonteCarloEngine(300_000, technique=DirectSampling(), seed=1).price(
        mj, Call(100.0), 1.0
    )
    print("1) jump risk (Merton λ=1, mean jump −10%)")
    print(f"   GBM price          : {gbm:.4f}")
    print(f"   Merton series      : {series:.4f}")
    print(f"   Merton Monte Carlo : {mc.price:.4f} ± {mc.stderr:.4f}")
    print(f"   crash premium      : {series - gbm:+.4f}\n")


def rare_payoffs() -> None:
    model = MultiAssetGBM.single(100, 0.2, 0.05)
    otm = Call(200.0)
    exact = bs_price(100, 200, 0.2, 0.05, 1.0)
    plain = MonteCarloEngine(100_000, seed=2).price(model, otm, 1.0)
    shift = drift_to_strike(model, otm, 1.0)
    tilted = MonteCarloEngine(100_000, technique=ImportanceSampling(shift),
                              seed=2).price(model, otm, 1.0)
    print("2) rare payoffs (K = 200, spot 100 — ~0.1% exercise probability)")
    print(f"   exact               : {exact:.6f}")
    print(f"   plain MC            : {plain.price:.6f} ± {plain.stderr:.6f}")
    print(f"   importance-sampled  : {tilted.price:.6f} ± {tilted.stderr:.6f}")
    print(f"   variance speedup    : ×{(plain.stderr / tilted.stderr) ** 2:,.0f}\n")


def qmc_families() -> None:
    from repro.analytic import geometric_basket_price
    from repro.payoffs import GeometricBasketCall
    from repro.rng import Philox4x32

    model = MultiAssetGBM.equicorrelated(4, 100, 0.25, 0.05, 0.3)
    payoff = GeometricBasketCall([0.25] * 4, 100.0)
    exact = geometric_basket_price(model, [0.25] * 4, 100.0, 1.0)
    df = float(np.exp(-0.05))
    n = 16_384

    def integrate(u):
        z = np.asarray(norm_ppf(np.clip(u, 1e-12, 1 - 1e-12)))
        return df * float(
            payoff.terminal(model.terminal_from_normals(z, 1.0)).mean()
        )

    table = Table(["point set", "estimate", "abs error"],
                  title=f"3) QMC families on a smooth 4-d integrand (N={n})",
                  floatfmt=".6f")
    table.add_row(["plain MC",
                   integrate(Philox4x32(3).uniforms(n * 4).reshape(n, 4)),
                   abs(integrate(Philox4x32(3).uniforms(n * 4).reshape(n, 4))
                       - exact)])
    for name, seq in (
        ("halton (scrambled)", HaltonSequence(4, scramble=True, seed=5, skip=1)),
        ("sobol (scrambled)", SobolSequence(4, scramble=True, seed=5, skip=1)),
    ):
        est = integrate(seq.next(n))
        table.add_row([name, est, abs(est - exact)])
    print(table.render())
    print(f"   exact: {exact:.6f}\n")


def multilevel() -> None:
    model = MultiAssetGBM.single(100, 0.2, 0.05)
    res = mlmc_price(model, AsianArithmeticCall(100.0), 1.0, base_steps=4,
                     levels=4, target_stderr=0.01, seed=5)
    print("4) multilevel Monte Carlo (Asian call, 64 monitoring dates)")
    print(f"   price       : {res.price:.4f} ± {res.stderr:.4f}")
    print(f"   paths/level : {list(res.n_per_level)}")
    print(f"   level vars  : {[f'{v:.2e}' for v in res.var_per_level]}")
    print("   (most samples run on the 4-date grid; the fine grids see only "
          "thousands — that is the whole trick)")


if __name__ == "__main__":
    jump_risk()
    rare_payoffs()
    qmc_families()
    multilevel()
