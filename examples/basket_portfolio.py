"""Portfolio pricing with variance reduction and Greeks.

Prices a seeded portfolio of multi-asset basket options, shows what each
variance-reduction technique buys on one representative contract, and
computes the hedging deltas two independent ways (pathwise vs
bump-and-revalue with common random numbers).

Run:  python examples/basket_portfolio.py
"""

import numpy as np

from repro import ControlVariate, MonteCarloEngine, QMCSobol
from repro.analytic import geometric_basket_price
from repro.mc import mc_delta_pathwise, mc_greeks_bump
from repro.payoffs import GeometricBasketCall
from repro.utils import Table
from repro.workloads import basket_workload, random_portfolio


def price_portfolio() -> None:
    portfolio = random_portfolio(8, dim=4, seed=11)
    table = Table(["contract", "strike", "price", "stderr"],
                  title="portfolio of 4-asset basket calls (100k paths each)",
                  floatfmt=".4f")
    engine = MonteCarloEngine(100_000, seed=1)
    total = 0.0
    for w in portfolio:
        r = engine.price(w.model, w.payoff, w.expiry)
        total += r.price
        table.add_row([w.name, w.payoff.strike, r.price, r.stderr])
    print(table.render())
    print(f"portfolio value: {total:.4f}\n")


def variance_reduction_shootout() -> None:
    w = basket_workload(4)
    weights = [0.25] * 4
    exact_geo = geometric_basket_price(w.model, weights, 100.0, 1.0)
    techniques = {
        "plain": None,
        "control variate": ControlVariate(GeometricBasketCall(weights, 100.0),
                                          exact_geo),
        "qmc (8 shifts)": QMCSobol(8),
    }
    table = Table(["estimator", "price", "stderr", "paths for 1¢"],
                  title="what variance reduction buys (64k paths)",
                  floatfmt=".5g")
    for name, tech in techniques.items():
        eng = MonteCarloEngine(65_536, technique=tech, seed=3) if tech \
            else MonteCarloEngine(65_536, seed=3)
        r = eng.price(w.model, w.payoff, w.expiry)
        # Paths needed for a 0.01 stderr scales as (stderr/0.01)².
        needed = int(65_536 * (r.stderr / 0.01) ** 2)
        table.add_row([name, r.price, r.stderr, needed])
    print(table.render())
    print()


def hedging_deltas() -> None:
    w = basket_workload(4)
    pathwise, se = mc_delta_pathwise(w.model, w.payoff, w.expiry, 200_000, seed=5)
    bump = mc_greeks_bump(w.model, w.payoff, w.expiry, 100_000, seed=5)
    table = Table(["asset", "pathwise Δ", "± se", "bump Δ", "bump Γ", "bump vega"],
                  title="hedging sensitivities, two estimators", floatfmt=".4f")
    for i in range(4):
        table.add_row([i, pathwise[i], se[i], bump.delta[i], bump.gamma[i],
                       bump.vega[i]])
    print(table.render())
    agreement = np.max(np.abs(pathwise - bump.delta))
    print(f"max |pathwise − bump| delta: {agreement:.4f}")


if __name__ == "__main__":
    price_portfolio()
    variance_reduction_shootout()
    hedging_deltas()
