"""Acceptance tier: the gateway under seeded 2x overload (``-m gateway``).

Everything runs on the virtual clock — a seeded Poisson schedule at
twice the all-miss capacity, replayed through the exact state machine
the asyncio front-end drives — so the assertions are sharp, not
statistical:

* **bounded queues**: no shard's depth ever exceeds lanes x max_queue;
* **shed, don't collapse**: goodput stays within 10% of capacity while
  a nonzero fraction of traffic is refused with recorded reasons;
* **no silent loss**: every offered request reaches exactly one
  terminal decision — completed within its deadline, or shed with a
  reason — and the counters reconcile to the offered total;
* **determinism**: the same seed replays to a bitwise-identical price
  stream and an identical admit/shed decision log.
"""

from __future__ import annotations

import pytest

from repro.gateway import (CostModel, LoadgenConfig, capacity,
                           open_loop_schedule, run_closed_loop, run_schedule)
from repro.gateway.admission import LANES

pytestmark = pytest.mark.gateway

SEED = 23
N_SHARDS = 4
MAX_QUEUE = 32
DURATION_S = 4.0
COST = CostModel()


def _overload_run(*, priced: bool = False, n_paths: int = 2_000,
                  duration_s: float = DURATION_S, unique: bool = True):
    base = LoadgenConfig(seed=SEED, duration_s=duration_s, n_paths=n_paths,
                         unique=unique)
    cap = capacity(base, COST, N_SHARDS)
    cfg = LoadgenConfig(seed=SEED, rate=2.0 * cap, duration_s=duration_s,
                        n_paths=n_paths, unique=unique)
    result = run_schedule(open_loop_schedule(cfg), n_shards=N_SHARDS,
                          cost=COST, duration_s=duration_s,
                          max_queue=MAX_QUEUE, priced=priced)
    return cfg, cap, result


@pytest.fixture(scope="module")
def overload():
    return _overload_run()


def test_overload_is_real(overload):
    cfg, cap, result = overload
    assert result.offered > 1.5 * cap * DURATION_S
    assert result.shed_total > 0
    assert set(result.shed) <= {"queue-full", "deadline", "expired"}


def test_queues_stay_bounded(overload):
    _, _, result = overload
    bound = len(LANES) * MAX_QUEUE
    assert all(depth <= bound for depth in result.max_depths), (
        f"max depths {result.max_depths} exceed {bound}")


def test_goodput_holds_at_capacity(overload):
    _, cap, result = overload
    assert result.goodput == pytest.approx(cap, rel=0.10), (
        f"goodput {result.goodput:.1f} outside 10% of capacity {cap:.1f}")


def test_every_offer_reaches_one_terminal_decision(overload):
    cfg, _, result = overload
    schedule = open_loop_schedule(cfg)
    # seq order == arrival order: recover each request's absolute deadline.
    deadline_at = {seq: t + greq.deadline_s
                   for seq, (t, greq) in enumerate(schedule)}
    terminal: dict[int, object] = {}
    admitted = set()
    for d in result.decisions:
        if d.action == "admit":
            admitted.add(d.seq)
            assert d.seq not in terminal, "admit after a terminal decision"
        else:
            assert d.action in ("shed", "done")
            assert d.seq not in terminal, f"two terminal decisions: {d.seq}"
            terminal[d.seq] = d
    assert len(terminal) == result.offered == len(schedule)
    for seq, d in terminal.items():
        if d.action == "done":
            assert seq in admitted
            # Virtual time is exact: an admitted completion is never late.
            assert d.reason == ""
            assert d.t <= deadline_at[seq] + 1e-12, (
                f"request {seq} finished {d.t} past deadline "
                f"{deadline_at[seq]}")
        else:
            assert d.reason in ("queue-full", "deadline", "expired")
            # Only queued (admitted) requests can expire.
            if d.reason == "expired":
                assert seq in admitted


def test_counters_reconcile(overload):
    _, _, result = overload
    at_door = (result.shed.get("queue-full", 0)
               + result.shed.get("deadline", 0))
    assert result.offered == result.admitted + at_door
    assert result.admitted == result.completed + result.shed.get("expired", 0)
    assert sum(h.count for h in result.latency.values()) == result.completed


def test_same_seed_is_bitwise_identical():
    # Priced runs: every completed quote's price/stderr bits must match,
    # and the decision log must replay move for move. Small path budget
    # and a repeated book keep the real pricing work tiny.
    _, _, a = _overload_run(priced=True, n_paths=400, duration_s=0.5,
                            unique=False)
    _, _, b = _overload_run(priced=True, n_paths=400, duration_s=0.5,
                            unique=False)
    assert a.completed == b.completed > 0
    assert a.price_stream_digest() == b.price_stream_digest()
    assert a.decision_log_digest() == b.decision_log_digest()
    assert a.shed == b.shed


def test_closed_loop_never_sheds_when_self_throttled():
    # A closed loop slower than capacity absorbs everything: clients wait
    # for answers, so offered load tracks goodput and queues stay trivial.
    cfg = LoadgenConfig(seed=SEED, duration_s=1.0)
    result = run_closed_loop(cfg, n_shards=2, cost=COST, n_clients=4,
                             think_s=0.05, max_queue=MAX_QUEUE)
    assert result.offered == result.completed > 0
    assert result.shed_total == 0
    assert all(depth <= 4 for depth in result.max_depths)
