"""Heston stochastic volatility: characteristic function, semi-analytic
pricing, Euler sampling."""

import math
import warnings

import numpy as np
import pytest

from repro.analytic import bs_price, heston_charfn, heston_price
from repro.errors import ValidationError
from repro.market import HestonModel
from repro.mc import DirectSampling, MonteCarloEngine
from repro.payoffs import Call, Put
from repro.rng import Philox4x32

#: The standard test parameter set (Feller-violating, skewed — demanding).
KW = dict(v0=0.04, kappa=1.5, theta=0.06, xi=0.5, rho=-0.7, rate=0.03)


@pytest.fixture(autouse=True)
def _quiet_quad():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        yield


class TestCharacteristicFunction:
    def test_unit_at_zero(self):
        phi = heston_charfn(0.0, 100, expiry=1.0, dividend=0.0, **KW)
        assert phi == pytest.approx(1.0 + 0.0j, abs=1e-12)

    def test_martingale_at_minus_i(self):
        # φ(−i) = E[S_T] = forward.
        phi = heston_charfn(-1j, 100, expiry=1.0, dividend=0.0, **KW)
        forward = 100 * math.exp(0.03)
        assert phi.real == pytest.approx(forward, rel=1e-10)
        assert phi.imag == pytest.approx(0.0, abs=1e-8)

    def test_modulus_bounded(self):
        for u in (0.5, 2.0, 10.0, 50.0):
            assert abs(heston_charfn(u, 100, expiry=1.0, dividend=0.0, **KW)) <= 1.0 + 1e-12

    def test_conjugate_symmetry(self):
        a = heston_charfn(2.0, 100, expiry=1.0, dividend=0.0, **KW)
        b = heston_charfn(-2.0, 100, expiry=1.0, dividend=0.0, **KW)
        assert a == pytest.approx(b.conjugate(), rel=1e-12)


class TestSemiAnalyticPrice:
    def test_degenerates_to_black_scholes(self):
        # ξ → 0 with v0 = θ: variance is constant at θ.
        p = heston_price(100, 100, 1.0, v0=0.04, kappa=2.0, theta=0.04,
                         xi=1e-6, rho=0.0, rate=0.05)
        assert p == pytest.approx(bs_price(100, 100, 0.2, 0.05, 1.0), abs=1e-3)

    def test_put_call_parity(self):
        c = heston_price(100, 95, 1.0, **KW)
        p = heston_price(100, 95, 1.0, option="put", **KW)
        assert c - p == pytest.approx(100 - 95 * math.exp(-0.03), abs=1e-8)

    def test_no_arbitrage_bounds(self):
        c = heston_price(100, 100, 1.0, **KW)
        assert max(100 - 100 * math.exp(-0.03), 0.0) < c < 100

    def test_monotone_in_strike(self):
        prices = [heston_price(100, k, 1.0, **KW) for k in (80, 100, 120)]
        assert prices[0] > prices[1] > prices[2]

    def test_negative_rho_skews_the_smile(self):
        # ρ < 0 fattens the left tail: the 80-put carries more implied vol
        # than the 120-call.
        from repro.analytic import bs_implied_vol

        put80 = heston_price(100, 80, 1.0, option="put", **KW)
        call120 = heston_price(100, 120, 1.0, **KW)
        iv_put = bs_implied_vol(put80, 100, 80, 0.03, 1.0, option="put")
        iv_call = bs_implied_vol(call120, 100, 120, 0.03, 1.0)
        assert iv_put > iv_call + 0.01

    def test_long_maturity_stable(self):
        # The little-trap form must not blow up at T = 10.
        p = heston_price(100, 100, 10.0, **KW)
        assert 0 < p < 100

    def test_validation(self):
        with pytest.raises(ValidationError):
            heston_price(100, 100, 1.0, v0=0.04, kappa=1.0, theta=0.04,
                         xi=0.3, rho=1.0, rate=0.05)
        with pytest.raises(ValidationError):
            heston_price(100, 100, 1.0, option="swap", **KW)


class TestModelSampling:
    def _model(self, steps=200):
        return HestonModel(100, rate=0.03, sampling_steps=steps,
                           v0=0.04, kappa=1.5, theta=0.06, xi=0.5, rho=-0.7)

    def test_feller_flag(self):
        assert not self._model().feller_satisfied
        assert HestonModel(100, 0.04, 2.0, 0.04, 0.2, -0.5, 0.05).feller_satisfied

    def test_martingale_property(self):
        m = self._model()
        st = m.sample_terminal(Philox4x32(1), 200_000, 1.0)
        # O(Δt) weak bias allowed on top of MC error.
        assert st.mean() == pytest.approx(m.terminal_mean(1.0), rel=0.005)

    def test_mc_matches_semi_analytic(self):
        m = self._model()
        exact = heston_price(100, 100, 1.0, **KW)
        r = MonteCarloEngine(150_000, technique=DirectSampling(), seed=3).price(
            m, Call(100.0), 1.0
        )
        assert abs(r.price - exact) < 4 * r.stderr + 0.05

    def test_mc_put_matches(self):
        m = self._model()
        exact = heston_price(100, 110, 1.0, option="put", **KW)
        r = MonteCarloEngine(150_000, technique=DirectSampling(), seed=4).price(
            m, Put(110.0), 1.0
        )
        assert abs(r.price - exact) < 4 * r.stderr + 0.05

    def test_finer_steps_reduce_bias(self):
        exact = heston_price(100, 100, 1.0, **KW)
        coarse = MonteCarloEngine(150_000, technique=DirectSampling(),
                                  seed=5).price(self._model(12), Call(100.0), 1.0)
        fine = MonteCarloEngine(150_000, technique=DirectSampling(),
                                seed=5).price(self._model(400), Call(100.0), 1.0)
        assert abs(fine.price - exact) <= abs(coarse.price - exact) + 2 * fine.stderr

    def test_expected_integrated_variance(self):
        m = self._model()
        # v0 < θ ⇒ mean variance between v0·T and θ·T.
        eiv = m.expected_integrated_variance(1.0)
        assert 0.04 < eiv < 0.06

    def test_deterministic(self):
        m = self._model(50)
        a = m.sample_terminal(Philox4x32(9), 100, 1.0)
        b = m.sample_terminal(Philox4x32(9), 100, 1.0)
        assert np.array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ValidationError):
            HestonModel(100, 0.04, 0.0, 0.04, 0.3, -0.5, 0.05)
        with pytest.raises(ValidationError):
            HestonModel(100, 0.04, 1.0, 0.04, 0.3, -1.0, 0.05)
