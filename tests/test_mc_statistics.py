"""Mergeable statistics: the parallel-reduction payload must merge exactly."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import ValidationError
from repro.mc import CrossStats, SampleStats, StrataStats

values = hnp.arrays(np.float64, st.integers(1, 200),
                    elements=st.floats(-100.0, 100.0))


class TestSampleStats:
    def test_mean_and_variance_match_numpy(self):
        v = np.array([1.0, 2.0, 3.0, 4.0])
        s = SampleStats.from_values(v)
        assert s.mean == pytest.approx(v.mean())
        assert s.variance == pytest.approx(v.var(ddof=1))
        assert s.stderr == pytest.approx(v.std(ddof=1) / 2.0)

    @given(values, values)
    def test_merge_equals_concatenation(self, a, b):
        merged = SampleStats.from_values(a).merge(SampleStats.from_values(b))
        whole = SampleStats.from_values(np.concatenate([a, b]))
        assert merged.n == whole.n
        assert merged.mean == pytest.approx(whole.mean, rel=1e-9, abs=1e-9)
        assert merged.variance == pytest.approx(whole.variance, rel=1e-6, abs=1e-9)

    @given(values)
    def test_merge_associative(self, v):
        thirds = np.array_split(v, 3)
        parts = [SampleStats.from_values(t) for t in thirds]
        left = parts[0].merge(parts[1]).merge(parts[2])
        right = parts[0].merge(parts[1].merge(parts[2]))
        assert left.n == right.n
        assert left.total == pytest.approx(right.total, rel=1e-12, abs=1e-12)

    def test_identity_element(self):
        s = SampleStats.from_values(np.array([5.0, 7.0]))
        assert SampleStats().merge(s) == s
        assert s.merge(SampleStats()) == s

    def test_empty_mean_raises(self):
        with pytest.raises(ValidationError):
            _ = SampleStats().mean

    def test_single_sample(self):
        s = SampleStats.from_values(np.array([3.0]))
        assert s.variance == 0.0
        assert s.mean == 3.0

    def test_confidence_interval_contains_mean(self):
        s = SampleStats.from_values(np.random.default_rng(0).normal(size=500))
        lo, hi = s.confidence_interval(0.95)
        assert lo < s.mean < hi
        lo99, hi99 = s.confidence_interval(0.99)
        assert lo99 < lo and hi99 > hi

    def test_ci_level_validated(self):
        s = SampleStats.from_values(np.array([1.0, 2.0]))
        with pytest.raises(ValidationError):
            s.confidence_interval(1.5)

    def test_array_roundtrip(self):
        s = SampleStats.from_values(np.array([1.0, -2.0, 3.5]))
        assert SampleStats.from_array(s.as_array()) == s

    def test_constant_sample_has_zero_variance(self):
        s = SampleStats.from_values(np.full(100, 2.5))
        assert s.variance == pytest.approx(0.0, abs=1e-12)


class TestCrossStats:
    def _xy(self, seed=0, n=400):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=n)
        y = 2.0 * x + rng.normal(size=n) * 0.5
        return y, x

    def test_beta_recovers_regression_slope(self):
        y, x = self._xy()
        c = CrossStats.from_values(y, x)
        expected = np.cov(y, x, ddof=1)[0, 1] / np.var(x, ddof=1)
        assert c.beta == pytest.approx(expected, rel=1e-9)

    def test_adjusted_reduces_variance(self):
        y, x = self._xy()
        c = CrossStats.from_values(y, x)
        _, se_adj = c.adjusted(control_mean=0.0)
        se_plain = SampleStats.from_values(y).stderr
        assert se_adj < 0.5 * se_plain

    def test_adjusted_mean_with_perfect_control(self):
        # Y = X exactly: the adjusted estimator must hit the control mean
        # with zero residual variance.
        x = np.random.default_rng(1).normal(size=300)
        c = CrossStats.from_values(x, x)
        mean, se = c.adjusted(control_mean=0.0)
        assert mean == pytest.approx(0.0, abs=1e-12)
        assert se == pytest.approx(0.0, abs=1e-9)

    @given(values)
    def test_merge_equals_concatenation(self, y):
        x = np.cos(y)  # deterministic paired control
        half = y.size // 2
        a = CrossStats.from_values(y[:half], x[:half])
        b = CrossStats.from_values(y[half:], x[half:])
        merged = a.merge(b)
        whole = CrossStats.from_values(y, x)
        assert merged.n == whole.n
        assert merged.sxy == pytest.approx(whole.sxy, rel=1e-9, abs=1e-9)
        if whole.n >= 2:
            assert merged.beta == pytest.approx(whole.beta, rel=1e-9, abs=1e-9)

    def test_degenerate_control_gives_zero_beta(self):
        c = CrossStats.from_values(np.array([1.0, 2.0, 3.0]), np.full(3, 7.0))
        assert c.beta == 0.0

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValidationError):
            CrossStats.from_values(np.zeros(3), np.zeros(4))

    def test_array_roundtrip(self):
        y, x = self._xy(2, 50)
        c = CrossStats.from_values(y, x)
        assert CrossStats.from_array(c.as_array()) == c


class TestStrataStats:
    def test_stratified_mean_is_average_of_stratum_means(self):
        s = StrataStats.empty(2)
        s = s.add_stratum_values(0, np.array([1.0, 1.0]))
        s = s.add_stratum_values(1, np.array([3.0, 5.0]))
        assert s.mean == pytest.approx((1.0 + 4.0) / 2.0)
        assert s.n == 4

    def test_merge_stratumwise(self):
        a = StrataStats.empty(2).add_stratum_values(0, np.array([1.0]))
        b = StrataStats.empty(2).add_stratum_values(0, np.array([3.0]))
        b = b.add_stratum_values(1, np.array([10.0, 10.0]))
        m = a.merge(b)
        assert m.strata[0].n == 2
        assert m.strata[0].mean == pytest.approx(2.0)
        assert m.strata[1].n == 2

    def test_merge_requires_same_layout(self):
        with pytest.raises(ValidationError):
            StrataStats.empty(2).merge(StrataStats.empty(3))

    def test_empty_stratum_blocks_mean(self):
        s = StrataStats.empty(2).add_stratum_values(0, np.array([1.0]))
        with pytest.raises(ValidationError):
            _ = s.mean
        assert s.stderr == math.inf

    def test_stratification_never_hurts_balanced_case(self):
        # With equal-probability strata and proportional allocation the
        # stratified variance is ≤ the plain variance of the pooled sample.
        rng = np.random.default_rng(3)
        lcount, per = 8, 500
        s = StrataStats.empty(lcount)
        pooled = []
        for l_idx in range(lcount):
            u = (l_idx + rng.random(per)) / lcount
            vals = np.sin(3 * u) + u  # smooth monotone-ish integrand
            s = s.add_stratum_values(l_idx, vals)
            pooled.append(vals)
        plain = SampleStats.from_values(np.concatenate(pooled))
        assert s.stderr <= plain.stderr * 1.05

    def test_invalid_stratum_index(self):
        with pytest.raises(ValidationError):
            StrataStats.empty(2).add_stratum_values(2, np.array([1.0]))

    def test_empty_layout_rejected(self):
        with pytest.raises(ValidationError):
            StrataStats.empty(0)
