"""ASCII table rendering."""

import pytest

from repro.utils.formatting import Table, format_series, format_table


class TestTable:
    def test_renders_headers_and_rows(self):
        t = Table(["P", "T"], title="demo")
        t.add_row([1, 2.0])
        t.add_row([2, 1.0])
        out = t.render()
        lines = out.splitlines()
        assert lines[0] == "demo"
        assert "P" in lines[1] and "T" in lines[1]
        assert len(lines) == 5  # title, header, separator, 2 rows

    def test_rejects_ragged_rows(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_float_formatting(self):
        t = Table(["x"], floatfmt=".2f")
        t.add_row([3.14159])
        assert "3.14" in t.render()
        assert "3.142" not in t.render()

    def test_column_alignment(self):
        t = Table(["name", "value"])
        t.add_row(["a", 1])
        t.add_row(["bbbb", 22])
        lines = t.render().splitlines()
        # All data lines share the same width.
        assert len(lines[2]) == len(lines[3])

    def test_empty_table_renders_headers(self):
        t = Table(["only"])
        out = t.render()
        assert "only" in out

    def test_str_equals_render(self):
        t = Table(["x"])
        t.add_row([1])
        assert str(t) == t.render()


def test_format_table_one_shot():
    out = format_table(["a"], [[1], [2]])
    assert out.count("\n") == 3


def test_format_series():
    out = format_series("curve", [1, 2], [10.0, 20.0], xlabel="P", ylabel="S")
    assert "curve" in out
    assert "P" in out


def test_format_series_length_mismatch():
    with pytest.raises(ValueError):
        format_series("s", [1, 2], [1.0])
