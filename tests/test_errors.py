"""Exception hierarchy contracts."""

import pytest

from repro.errors import (
    BackendError,
    ConvergenceError,
    ModelError,
    PartitionError,
    ReproError,
    StabilityError,
    ValidationError,
)


def test_all_errors_derive_from_repro_error():
    for exc_type in (
        ValidationError,
        ModelError,
        ConvergenceError,
        PartitionError,
        BackendError,
        StabilityError,
    ):
        assert issubclass(exc_type, ReproError)


def test_validation_error_is_value_error():
    # Generic callers guarding with ValueError must keep working.
    assert issubclass(ValidationError, ValueError)
    assert issubclass(PartitionError, ValueError)


def test_backend_error_is_runtime_error():
    assert issubclass(BackendError, RuntimeError)


def test_convergence_error_carries_diagnostics():
    err = ConvergenceError("nope", iterations=17, residual=1e-3)
    assert err.iterations == 17
    assert err.residual == pytest.approx(1e-3)


def test_convergence_error_defaults():
    err = ConvergenceError("nope")
    assert err.iterations is None
    assert err.residual is None


def test_stability_error_carries_cfl():
    err = StabilityError("unstable", cfl=2.5)
    assert err.cfl == pytest.approx(2.5)


def test_catching_base_class_catches_all():
    with pytest.raises(ReproError):
        raise StabilityError("boom")
