"""Longstaff–Schwartz LSM against lattice American values."""

import numpy as np
import pytest

from repro.analytic import bs_price
from repro.errors import ValidationError
from repro.lattice import beg_price, binomial_price
from repro.market import MultiAssetGBM, constant_correlation
from repro.mc import LongstaffSchwartz, lsm_price
from repro.mc.american import polynomial_features
from repro.payoffs import Call, CallOnMax, Put


class TestPolynomialFeatures:
    def test_degree_two_two_assets_column_count(self):
        x = np.random.default_rng(0).uniform(50, 150, size=(10, 2))
        f = polynomial_features(x, 2, np.array([100.0, 100.0]))
        # 1, x1, x2, x1², x1x2, x2².
        assert f.shape == (10, 6)
        assert np.allclose(f[:, 0], 1.0)

    def test_degree_one_single_asset(self):
        x = np.array([[100.0], [200.0]])
        f = polynomial_features(x, 1, np.array([100.0]))
        assert np.allclose(f, [[1.0, 1.0], [1.0, 2.0]])

    def test_scaling_applied(self):
        x = np.array([[200.0]])
        f = polynomial_features(x, 2, np.array([100.0]))
        assert np.allclose(f, [[1.0, 2.0, 4.0]])

    def test_validation(self):
        with pytest.raises(ValidationError):
            polynomial_features(np.zeros(3), 2, np.ones(3))
        with pytest.raises(ValidationError):
            polynomial_features(np.zeros((3, 1)), 0, np.ones(1))


class TestAmericanPut:
    def test_above_european_below_lattice_plus_noise(self, model_1d):
        r = lsm_price(model_1d, Put(100.0), 1.0, 50, 100_000, seed=1)
        euro = bs_price(100, 100, 0.2, 0.05, 1.0, option="put")
        lattice = binomial_price(100, Put(100.0), 0.2, 0.05, 1.0, 2000,
                                 american=True).price
        assert r.price > euro
        # LSM is low-biased but should land within a few stderr of the tree.
        assert lattice - 6 * r.stderr - 0.03 < r.price < lattice + 4 * r.stderr

    def test_deep_itm_put_exercises_immediately(self):
        model = MultiAssetGBM.single(40.0, 0.2, 0.05)
        r = lsm_price(model, Put(100.0), 1.0, 20, 20_000, seed=2)
        assert r.price == pytest.approx(60.0, abs=0.5)

    def test_more_exercise_dates_weakly_increase_value(self, model_1d):
        few = lsm_price(model_1d, Put(100.0), 1.0, 4, 100_000, seed=3)
        many = lsm_price(model_1d, Put(100.0), 1.0, 50, 100_000, seed=3)
        assert many.price > few.price - 3 * few.stderr


class TestAmericanCall:
    def test_no_dividend_call_equals_european(self, model_1d):
        # Early exercise of a call is never optimal without dividends.
        r = lsm_price(model_1d, Call(100.0), 1.0, 25, 100_000, seed=4)
        euro = bs_price(100, 100, 0.2, 0.05, 1.0)
        assert r.price == pytest.approx(euro, abs=4 * r.stderr + 0.05)

    def test_dividend_call_exceeds_european(self):
        model = MultiAssetGBM.single(100.0, 0.3, 0.05, dividend=0.08)
        r = lsm_price(model, Call(100.0), 2.0, 50, 100_000, seed=5)
        euro = bs_price(100, 100, 0.3, 0.05, 2.0, dividend=0.08)
        assert r.price > euro + 2 * r.stderr


class TestMultiAssetBermudan:
    def test_two_asset_max_call_matches_lattice(self):
        model = MultiAssetGBM(
            [100.0, 100.0], [0.2, 0.2], 0.05,
            dividends=[0.10, 0.10],
            correlation=constant_correlation(2, 0.0),
        )
        payoff = CallOnMax(100.0)
        steps = 9
        tree = beg_price(model, payoff, 1.0, 90, american=True).price
        r = LongstaffSchwartz(degree=2).price(model, payoff, 1.0, steps, 100_000,
                                              seed=6)
        # Bermudan(9) ≤ American but close for this setup; allow a band.
        assert tree * 0.93 < r.price < tree * 1.03

    def test_supplied_paths_used(self, model_1d):
        paths = model_1d.sample_paths(
            __import__("repro.rng", fromlist=["Philox4x32"]).Philox4x32(9),
            5_000, 1.0, 10,
        )
        ls = LongstaffSchwartz()
        a = ls.price(model_1d, Put(100.0), 1.0, 10, 5_000, paths=paths)
        b = ls.price(model_1d, Put(100.0), 1.0, 10, 5_000, paths=paths)
        assert a.price == b.price

    def test_path_shape_validated(self, model_1d):
        with pytest.raises(ValidationError):
            LongstaffSchwartz().price(model_1d, Put(100.0), 1.0, 10, 100,
                                      paths=np.zeros((100, 5, 1)))

    def test_dim_mismatch(self, model_2d):
        with pytest.raises(ValidationError):
            lsm_price(model_2d, Put(100.0), 1.0, 10, 1000)


class TestLSMInternals:
    def test_itm_only_flag_changes_estimate_little(self, model_1d):
        a = LongstaffSchwartz(itm_only=True).price(model_1d, Put(100.0), 1.0, 20,
                                                   50_000, seed=7)
        b = LongstaffSchwartz(itm_only=False).price(model_1d, Put(100.0), 1.0, 20,
                                                    50_000, seed=7)
        assert abs(a.price - b.price) < 0.1

    def test_degree_three_consistent(self, model_1d):
        a = lsm_price(model_1d, Put(100.0), 1.0, 20, 50_000, degree=3, seed=8)
        b = lsm_price(model_1d, Put(100.0), 1.0, 20, 50_000, degree=2, seed=8)
        assert abs(a.price - b.price) < 5 * max(a.stderr, b.stderr) + 0.03

    def test_meta_recorded(self, model_1d):
        r = lsm_price(model_1d, Put(100.0), 1.0, 10, 10_000, seed=9)
        assert r.technique == "lsm"
        assert r.meta["steps"] == 10
