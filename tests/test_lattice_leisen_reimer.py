"""Leisen–Reimer tree: smooth convergence, strike centering."""

import numpy as np
import pytest

from repro.analytic import bs_greeks, bs_price
from repro.errors import ValidationError
from repro.lattice import binomial_price, leisen_reimer_price, peizer_pratt
from repro.payoffs import Call, Put


class TestPeizerPratt:
    def test_symmetry(self):
        assert peizer_pratt(0.0, 51) == pytest.approx(0.5)
        assert peizer_pratt(1.3, 51) + peizer_pratt(-1.3, 51) == pytest.approx(1.0)

    def test_monotone(self):
        ps = [peizer_pratt(z, 101) for z in (-2.0, -1.0, 0.0, 1.0, 2.0)]
        assert all(b > a for a, b in zip(ps, ps[1:]))

    def test_bounds(self):
        assert 0.0 < peizer_pratt(-5.0, 11) < 0.5
        assert 0.5 < peizer_pratt(5.0, 11) < 1.0

    def test_requires_odd(self):
        with pytest.raises(ValidationError):
            peizer_pratt(0.5, 10)


class TestConvergence:
    @pytest.mark.parametrize("option", ["call", "put"])
    def test_far_more_accurate_than_crr_at_equal_steps(self, option):
        exact = bs_price(100, 100, 0.2, 0.05, 1.0, option=option)
        payoff = Call(100.0) if option == "call" else Put(100.0)
        lr_err = abs(
            leisen_reimer_price(100, 100, 0.2, 0.05, 1.0, 101,
                                option=option).price - exact
        )
        crr_err = abs(
            binomial_price(100, payoff, 0.2, 0.05, 1.0, 101).price - exact
        )
        assert lr_err < crr_err / 20

    def test_smooth_second_order_convergence(self):
        exact = bs_price(100, 95, 0.25, 0.03, 1.5)
        errs = [
            abs(leisen_reimer_price(100, 95, 0.25, 0.03, 1.5, n).price - exact)
            for n in (25, 51, 101, 201)
        ]
        # Strictly decreasing (no CRR-style oscillation) and fast.
        assert all(b < a for a, b in zip(errs, errs[1:]))
        assert errs[-1] < 5e-5

    def test_off_money_strikes(self):
        for k in (70.0, 130.0):
            exact = bs_price(100, k, 0.2, 0.05, 1.0)
            v = leisen_reimer_price(100, k, 0.2, 0.05, 1.0, 101).price
            assert v == pytest.approx(exact, abs=2e-4)

    def test_dividend(self):
        exact = bs_price(100, 100, 0.2, 0.05, 1.0, dividend=0.03)
        v = leisen_reimer_price(100, 100, 0.2, 0.05, 1.0, 101,
                                dividend=0.03).price
        assert v == pytest.approx(exact, abs=2e-4)

    def test_delta_accuracy(self):
        g = bs_greeks(100, 100, 0.2, 0.05, 1.0)
        r = leisen_reimer_price(100, 100, 0.2, 0.05, 1.0, 201)
        assert r.delta[0] == pytest.approx(g.delta, abs=2e-3)


class TestAmerican:
    def test_american_put_matches_crr_reference(self):
        crr = binomial_price(100, Put(100.0), 0.2, 0.05, 1.0, 2001,
                             american=True).price
        lr = leisen_reimer_price(100, 100, 0.2, 0.05, 1.0, 201, option="put",
                                 american=True).price
        assert lr == pytest.approx(crr, abs=5e-3)

    def test_american_geq_european(self):
        eu = leisen_reimer_price(100, 100, 0.2, 0.05, 1.0, 101, option="put").price
        am = leisen_reimer_price(100, 100, 0.2, 0.05, 1.0, 101, option="put",
                                 american=True).price
        assert am > eu


class TestValidation:
    def test_even_steps_rejected(self):
        with pytest.raises(ValidationError, match="odd"):
            leisen_reimer_price(100, 100, 0.2, 0.05, 1.0, 100)

    def test_option_name(self):
        with pytest.raises(ValidationError):
            leisen_reimer_price(100, 100, 0.2, 0.05, 1.0, 101, option="straddle")

    def test_meta(self):
        r = leisen_reimer_price(100, 100, 0.2, 0.05, 1.0, 51)
        assert r.meta["scheme"] == "leisen-reimer"
        assert 0 < r.meta["p"] < 1
