"""Boyle–Evnine–Gibbs multidimensional lattice."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analytic import (
    bs_price,
    geometric_basket_price,
    margrabe_price,
    rainbow_two_asset_price,
)
from repro.errors import StabilityError, ValidationError
from repro.lattice import BEGLattice, beg_price, beg_probabilities
from repro.market import MultiAssetGBM, constant_correlation
from repro.payoffs import (
    AsianGeometricCall,
    BasketCall,
    Call,
    CallOnMax,
    CallOnMin,
    ExchangeOption,
    GeometricBasketCall,
    Put,
)


class TestProbabilities:
    @given(st.integers(1, 4), st.floats(0.0, 0.45))
    def test_sum_to_one_and_nonnegative(self, dim, rho):
        # BEG feasibility for equicorrelated d=4 requires ρ ≤ 0.5 (the
        # mixed-sign branch weight 1 − 2ρ must stay non-negative); the
        # infeasible region is covered by test_coarse_dt_raises-style cases.
        model = MultiAssetGBM.equicorrelated(dim, 100, 0.25, 0.05, rho if dim > 1 else 0.0)
        offsets, probs = beg_probabilities(model, dt=1.0 / 300)
        assert probs.shape == (2**dim,)
        assert offsets.shape == (2**dim, dim)
        assert probs.sum() == pytest.approx(1.0, abs=1e-12)
        assert probs.min() >= 0.0

    def test_one_dim_reduces_to_half_plus_drift(self):
        model = MultiAssetGBM.single(100, 0.2, 0.05)
        _, probs = beg_probabilities(model, dt=0.01)
        mu = (0.05 - 0.02) / 0.2
        expected_up = 0.5 * (1.0 + np.sqrt(0.01) * mu)
        assert max(probs) == pytest.approx(expected_up, abs=1e-12)

    def test_coarse_dt_raises(self):
        model = MultiAssetGBM.single(100, 0.05, 0.5)  # huge drift/vol ratio
        with pytest.raises(StabilityError):
            beg_probabilities(model, dt=1.0)

    def test_moment_matching_mean(self):
        # E[Δ log S] over branches must equal μ·dt to machine precision.
        model = MultiAssetGBM.equicorrelated(2, 100, 0.3, 0.05, 0.5)
        dt = 1.0 / 200
        offsets, probs = beg_probabilities(model, dt)
        eps = 2.0 * offsets - 1.0  # back to ±1
        step = eps * model.vols[None, :] * np.sqrt(dt)
        mean = probs @ step
        assert np.allclose(mean, model.drifts * dt, atol=1e-14)

    def test_moment_matching_correlation(self):
        model = MultiAssetGBM.equicorrelated(2, 100, 0.3, 0.05, 0.5)
        dt = 1.0 / 200
        offsets, probs = beg_probabilities(model, dt)
        eps = 2.0 * offsets - 1.0
        # E[ε₁ε₂] = ρ by construction.
        assert probs @ (eps[:, 0] * eps[:, 1]) == pytest.approx(0.5, abs=1e-12)


class TestPricingAgainstClosedForms:
    def test_d1_converges_to_bs(self, model_1d):
        exact = bs_price(100, 100, 0.2, 0.05, 1.0)
        r = beg_price(model_1d, Call(100.0), 1.0, 600)
        assert r.price == pytest.approx(exact, abs=0.02)

    def test_d2_exchange_vs_margrabe(self, model_2d):
        exact = margrabe_price(100, 95, 0.2, 0.3, 0.4, 1.0)
        r = beg_price(model_2d, ExchangeOption(), 1.0, 200)
        assert r.price == pytest.approx(exact, abs=0.03)

    @pytest.mark.parametrize("kind,payoff", [
        ("call-on-max", CallOnMax(100.0)),
        ("call-on-min", CallOnMin(100.0)),
    ])
    def test_d2_rainbow_vs_stulz(self, model_2d, kind, payoff):
        exact = rainbow_two_asset_price(100, 95, 100, 0.2, 0.3, 0.4, 0.05, 1.0,
                                        kind=kind)
        r = beg_price(model_2d, payoff, 1.0, 200)
        assert r.price == pytest.approx(exact, abs=0.05)

    def test_d3_geometric_basket(self):
        model = MultiAssetGBM.equicorrelated(3, 100, 0.25, 0.05, 0.3)
        w = [1 / 3] * 3
        exact = geometric_basket_price(model, w, 100.0, 1.0)
        r = beg_price(model, GeometricBasketCall(w, 100.0), 1.0, 60)
        assert r.price == pytest.approx(exact, abs=0.05)

    def test_convergence_order(self, model_2d):
        exact = margrabe_price(100, 95, 0.2, 0.3, 0.4, 1.0)
        errs = [
            abs(beg_price(model_2d, ExchangeOption(), 1.0, n).price - exact)
            for n in (25, 50, 100, 200)
        ]
        assert errs[-1] < errs[0]


class TestAmerican:
    def test_american_geq_european(self, model_2d):
        eu = beg_price(model_2d, CallOnMax(100.0), 1.0, 80).price
        am = beg_price(model_2d, CallOnMax(100.0), 1.0, 80, american=True).price
        assert am >= eu - 1e-12

    def test_d1_american_put_matches_crr_shape(self, model_1d):
        from repro.lattice import binomial_price

        beg = beg_price(model_1d, Put(100.0), 1.0, 800, american=True).price
        crr = binomial_price(100, Put(100.0), 0.2, 0.05, 1.0, 800,
                             american=True).price
        assert beg == pytest.approx(crr, abs=0.02)

    def test_dividend_makes_early_exercise_bind(self):
        model = MultiAssetGBM(
            [100.0, 100.0], [0.2, 0.2], 0.05, dividends=[0.1, 0.1],
            correlation=constant_correlation(2, 0.0),
        )
        eu = beg_price(model, CallOnMax(100.0), 3.0, 60).price
        am = beg_price(model, CallOnMax(100.0), 3.0, 60, american=True).price
        assert am > eu + 0.1


class TestSlabDecomposition:
    @given(st.integers(0, 9), st.integers(1, 5))
    def test_step_rows_matches_full_step(self, start, width):
        model = MultiAssetGBM.equicorrelated(2, 100, 0.25, 0.05, 0.3)
        lat = BEGLattice(model, 1.0, 10)
        t = 9
        stop = min(start + width, t + 1)
        v_next = lat.payoff_values(CallOnMax(100.0), t + 1)
        full = lat.step(v_next, t)
        rows = lat.step_rows(v_next[start : stop + 1], t, start, stop - start)
        assert np.array_equal(full[start:stop], rows)

    def test_step_rows_validation(self):
        model = MultiAssetGBM.equicorrelated(2, 100, 0.25, 0.05, 0.3)
        lat = BEGLattice(model, 1.0, 5)
        v = lat.payoff_values(CallOnMax(100.0), 5)
        with pytest.raises(ValidationError):
            lat.step_rows(v[:3], 4, 3, 3)  # rows exceed level extent

    def test_step_shape_validation(self):
        model = MultiAssetGBM.single(100, 0.2, 0.05)
        lat = BEGLattice(model, 1.0, 5)
        with pytest.raises(ValidationError):
            lat.step(np.zeros(3), 3)


class TestGuards:
    def test_memory_guard(self):
        model = MultiAssetGBM.equicorrelated(4, 100, 0.2, 0.05, 0.2)
        with pytest.raises(ValidationError, match="node limit"):
            BEGLattice(model, 1.0, 200)

    def test_dim_mismatch(self, model_2d):
        with pytest.raises(ValidationError):
            beg_price(model_2d, Call(100.0), 1.0, 10)

    def test_path_dependent_rejected(self, model_1d):
        with pytest.raises(ValidationError):
            beg_price(model_1d, AsianGeometricCall(100.0), 1.0, 10)

    def test_level_axes_bounds(self, model_1d):
        lat = BEGLattice(model_1d, 1.0, 10)
        with pytest.raises(ValidationError):
            lat.level_axes(11)

    def test_delta_sign_for_calls(self, model_2d):
        r = beg_price(model_2d, CallOnMax(100.0), 1.0, 60)
        assert np.all(r.delta > 0)
