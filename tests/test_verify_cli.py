"""Tests for the ``repro verify`` CLI subcommand."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


def test_skip_everything_but_fast_sections(capsys):
    code = main(["verify", "--skip", "oracle", "--skip", "golden"])
    out = capsys.readouterr().out
    assert code == 0
    assert "metamorphic" in out and "determinism" in out
    assert "oracle" not in out.splitlines()[0]
    assert "PASS" in out


def test_missing_golden_fails_fast_with_actionable_error(tmp_path, capsys):
    code = main(["verify", "--golden", str(tmp_path / "nope.json")])
    err = capsys.readouterr().err
    assert code == 2
    assert "--update" in err


@pytest.mark.oracle
def test_update_then_replay_round_trip(tmp_path, capsys):
    golden = tmp_path / "golden.json"
    report = tmp_path / "report.json"

    code = main(["verify", "--skip", "metamorphic", "--skip", "determinism",
                 "--update", "--golden", str(golden)])
    out = capsys.readouterr().out
    assert code == 0
    assert "rebaselined" in out
    assert golden.exists()

    code = main(["verify", "--skip", "metamorphic", "--skip", "determinism",
                 "--golden", str(golden), "--report", str(report)])
    out = capsys.readouterr().out
    assert code == 0
    assert "0 failures" in out and "PASS" in out

    doc = json.loads(report.read_text())
    assert doc["ok"] is True
    assert doc["oracle"]["ok"] is True
    assert doc["golden"]["n_failures"] == 0
    # The machine-readable report carries every engine cell with its band.
    cell = doc["oracle"]["cases"]["european-call-1d"]["engines"]["mc"]
    assert cell["band"] > 0
