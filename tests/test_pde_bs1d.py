"""1-D finite differences: θ-schemes, stability, American PSOR."""

import numpy as np
import pytest

from repro.analytic import bs_greeks, bs_price
from repro.errors import StabilityError, ValidationError
from repro.lattice import binomial_price
from repro.payoffs import AsianGeometricCall, BasketCall, Call, Put, Straddle
from repro.pde import fd_price, theta_scheme_operator
from repro.pde.grid import LogGrid


class TestOperator:
    def test_bands_shape(self):
        lo, d, up = theta_scheme_operator(0.2, 0.05, 0.0, 0.01, 11)
        assert lo.shape == d.shape == up.shape == (11,)

    def test_interior_row_sums_to_minus_rate_on_constants(self):
        # L applied to a constant must be −r·const (no diffusion/convection).
        lo, d, up = theta_scheme_operator(0.2, 0.05, 0.01, 0.02, 21)
        ones = np.ones(21)
        y = d * ones
        y[1:] += lo[1:]
        y[:-1] += up[:-1]
        assert np.allclose(y, -0.05)

    def test_linear_function_sees_convection_only(self):
        # L x = μ for interior nodes when V = x (V_xx = 0).
        vol, r, q, dx, n = 0.2, 0.05, 0.01, 0.02, 41
        lo, d, up = theta_scheme_operator(vol, r, q, dx, n)
        x = dx * np.arange(n)
        y = d * x
        y[1:] += lo[1:] * x[:-1]
        y[:-1] += up[:-1] * x[1:]
        mu = r - q - 0.5 * vol * vol
        interior = y[1:-1] + r * x[1:-1]
        assert np.allclose(interior, mu, atol=1e-10)

    def test_validation(self):
        with pytest.raises(ValidationError):
            theta_scheme_operator(0.2, 0.05, 0.0, 0.01, 2)


class TestEuropeanConvergence:
    @pytest.mark.parametrize("scheme", ["implicit", "crank-nicolson"])
    def test_call_converges(self, scheme):
        exact = bs_price(100, 100, 0.2, 0.05, 1.0)
        r = fd_price(100, Call(100.0), 0.2, 0.05, 1.0, scheme=scheme,
                     n_space=400, n_time=400)
        assert r.price == pytest.approx(exact, abs=0.01)

    def test_explicit_with_fine_time_grid(self):
        exact = bs_price(100, 100, 0.2, 0.05, 1.0)
        r = fd_price(100, Call(100.0), 0.2, 0.05, 1.0, scheme="explicit",
                     n_space=100, n_time=2500)
        assert r.price == pytest.approx(exact, abs=0.03)

    def test_crank_nicolson_beats_implicit_in_time(self):
        exact = bs_price(100, 100, 0.2, 0.05, 1.0)
        imp = fd_price(100, Call(100.0), 0.2, 0.05, 1.0, scheme="implicit",
                       n_space=800, n_time=50).price
        cn = fd_price(100, Call(100.0), 0.2, 0.05, 1.0, scheme="crank-nicolson",
                      n_space=800, n_time=50).price
        assert abs(cn - exact) < abs(imp - exact)

    def test_put_call_parity(self):
        c = fd_price(100, Call(95.0), 0.2, 0.05, 1.0).price
        p = fd_price(100, Put(95.0), 0.2, 0.05, 1.0).price
        assert c - p == pytest.approx(100 - 95 * np.exp(-0.05), abs=0.02)

    def test_straddle(self):
        s = fd_price(100, Straddle(100.0), 0.2, 0.05, 1.0).price
        exact = bs_price(100, 100, 0.2, 0.05, 1.0) + bs_price(
            100, 100, 0.2, 0.05, 1.0, option="put"
        )
        assert s == pytest.approx(exact, abs=0.02)

    def test_dividend(self):
        exact = bs_price(100, 100, 0.2, 0.05, 1.0, dividend=0.03)
        r = fd_price(100, Call(100.0), 0.2, 0.05, 1.0, dividend=0.03)
        assert r.price == pytest.approx(exact, abs=0.01)


class TestGreeks:
    def test_delta_gamma_from_grid(self):
        g = bs_greeks(100, 100, 0.2, 0.05, 1.0)
        r = fd_price(100, Call(100.0), 0.2, 0.05, 1.0, n_space=600, n_time=300)
        assert r.delta == pytest.approx(g.delta, abs=2e-3)
        assert r.gamma == pytest.approx(g.gamma, rel=0.03)


class TestStability:
    def test_explicit_cfl_violation_raises(self):
        with pytest.raises(StabilityError) as exc:
            fd_price(100, Call(100.0), 0.2, 0.05, 1.0, scheme="explicit",
                     n_space=400, n_time=100)
        assert exc.value.cfl is not None and exc.value.cfl > 1.0

    def test_implicit_unconditionally_stable(self):
        # Same brutal grid, implicit scheme: fine.
        r = fd_price(100, Call(100.0), 0.2, 0.05, 1.0, scheme="implicit",
                     n_space=400, n_time=10)
        assert np.isfinite(r.price)


class TestAmerican:
    def test_put_matches_binomial(self):
        tree = binomial_price(100, Put(100.0), 0.2, 0.05, 1.0, 2000,
                              american=True).price
        r = fd_price(100, Put(100.0), 0.2, 0.05, 1.0, american=True,
                     n_space=400, n_time=200)
        assert r.price == pytest.approx(tree, abs=0.01)

    def test_value_dominates_obstacle_everywhere(self):
        r = fd_price(100, Put(100.0), 0.2, 0.05, 1.0, american=True,
                     n_space=200, n_time=100, keep_values=True)
        grid = LogGrid(100, 0.2, 1.0, 200, drift=0.05 - 0.02)
        intrinsic = np.maximum(100.0 - grid.s, 0.0)
        assert np.all(r.values >= intrinsic - 1e-8)

    def test_explicit_american_projection(self):
        r = fd_price(100, Put(100.0), 0.2, 0.05, 1.0, scheme="explicit",
                     american=True, n_space=100, n_time=2500)
        tree = binomial_price(100, Put(100.0), 0.2, 0.05, 1.0, 1000,
                              american=True).price
        assert r.price == pytest.approx(tree, abs=0.05)


class TestValidation:
    def test_scheme_name(self):
        with pytest.raises(ValidationError):
            fd_price(100, Call(100.0), 0.2, 0.05, 1.0, scheme="dufort-frankel")

    def test_multi_asset_rejected(self):
        with pytest.raises(ValidationError):
            fd_price(100, BasketCall([1, 1], 100.0), 0.2, 0.05, 1.0)

    def test_path_dependent_rejected(self):
        with pytest.raises(ValidationError):
            fd_price(100, AsianGeometricCall(100.0), 0.2, 0.05, 1.0)

    def test_values_kept_only_on_request(self):
        a = fd_price(100, Call(100.0), 0.2, 0.05, 1.0, n_space=100, n_time=50)
        b = fd_price(100, Call(100.0), 0.2, 0.05, 1.0, n_space=100, n_time=50,
                     keep_values=True)
        assert a.values is None and b.values is not None


class TestLogGrid:
    def test_spot_on_node(self):
        g = LogGrid(123.0, 0.3, 2.0, 100)
        assert g.s[g.spot_index] == pytest.approx(123.0)

    def test_odd_interval_count_rejected(self):
        with pytest.raises(ValidationError):
            LogGrid(100, 0.2, 1.0, 101)

    def test_width_scales_with_vol(self):
        narrow = LogGrid(100, 0.1, 1.0, 100)
        wide = LogGrid(100, 0.4, 1.0, 100)
        assert wide.x[-1] > narrow.x[-1]

    def test_derivative_readout_on_quadratic(self):
        # Central differences in x carry an O(S²·dx²) error when read back
        # as S-derivatives; a fine grid keeps it at the 1e-4 level.
        g = LogGrid(100, 0.2, 1.0, 2000)
        v = (g.s - 100.0) ** 2
        delta, gamma = g.derivatives_at_spot(v)
        assert delta == pytest.approx(0.0, abs=2e-4)
        assert gamma == pytest.approx(2.0, rel=1e-3)
