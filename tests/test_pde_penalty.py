"""Penalty method for the American LCP — the PSOR ablation."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.lattice import binomial_price
from repro.payoffs import Put
from repro.pde import fd_price, penalty_solve, psor_solve
from repro.utils.numerics import solve_tridiagonal


def _system(n, seed=0):
    rng = np.random.default_rng(seed)
    lower = -np.abs(rng.normal(size=n)) * 0.3
    upper = -np.abs(rng.normal(size=n)) * 0.3
    diag = np.abs(lower) + np.abs(upper) + 1.0
    rhs = rng.normal(size=n)
    return lower, diag, upper, rhs


class TestSolver:
    def test_unconstrained_limit(self):
        lower, diag, upper, rhs = _system(60, 1)
        obstacle = np.full(60, -1e9)
        x = penalty_solve(lower, diag, upper, rhs, obstacle)
        exact = solve_tridiagonal(lower.copy(), diag.copy(), upper.copy(),
                                  rhs.copy())
        assert np.allclose(x, exact, atol=1e-6)

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_psor(self, seed):
        lower, diag, upper, rhs = _system(80, seed)
        obstacle = np.sin(np.linspace(0, 3, 80))
        x_pen = penalty_solve(lower, diag, upper, rhs, obstacle, penalty=1e8)
        x_psor = psor_solve(lower, diag, upper, rhs, obstacle, tol=1e-11)
        assert np.allclose(x_pen, x_psor, atol=1e-5)

    def test_feasibility(self):
        lower, diag, upper, rhs = _system(50, 7)
        obstacle = np.linspace(-1, 1, 50)
        x = penalty_solve(lower, diag, upper, rhs, obstacle)
        assert np.all(x >= obstacle - 1e-9)

    def test_validation(self):
        lower, diag, upper, rhs = _system(10)
        with pytest.raises(ValidationError):
            penalty_solve(lower, diag, upper, rhs, np.zeros(10), penalty=0.0)
        with pytest.raises(ValidationError):
            penalty_solve(lower, diag, upper, rhs[:5], np.zeros(10))


class TestAmericanAblation:
    def test_psor_and_penalty_price_identically(self):
        kwargs = dict(n_space=300, n_time=150, american=True)
        psor = fd_price(100, Put(100.0), 0.2, 0.05, 1.0,
                        american_solver="psor", **kwargs)
        pen = fd_price(100, Put(100.0), 0.2, 0.05, 1.0,
                       american_solver="penalty", **kwargs)
        assert pen.price == pytest.approx(psor.price, abs=5e-4)
        assert pen.meta["american_solver"] == "penalty"

    def test_penalty_matches_binomial_reference(self):
        tree = binomial_price(100, Put(100.0), 0.2, 0.05, 1.0, 2000,
                              american=True).price
        pen = fd_price(100, Put(100.0), 0.2, 0.05, 1.0, american=True,
                       american_solver="penalty", n_space=300, n_time=150)
        assert pen.price == pytest.approx(tree, abs=0.01)

    def test_solver_name_validated(self):
        with pytest.raises(ValidationError):
            fd_price(100, Put(100.0), 0.2, 0.05, 1.0, american=True,
                     american_solver="active-set")
