"""Sequential Monte Carlo engine against every closed form we own."""

import numpy as np
import pytest

from repro.analytic import (
    barrier_price,
    bs_price,
    geometric_asian_price,
    geometric_basket_price,
    margrabe_price,
    rainbow_two_asset_price,
)
from repro.errors import ValidationError
from repro.market import MultiAssetGBM
from repro.mc import MCResult, MonteCarloEngine
from repro.payoffs import (
    AsianGeometricCall,
    BarrierOption,
    BasketCall,
    Call,
    CallOnMin,
    DigitalCall,
    ExchangeOption,
    GeometricBasketCall,
    Put,
)
from repro.rng import Philox4x32

N = 150_000


class TestEuropeanAccuracy:
    def test_bs_call_within_ci(self, model_1d):
        r = MonteCarloEngine(N, seed=1).price(model_1d, Call(100.0), 1.0)
        assert r.within(bs_price(100, 100, 0.2, 0.05, 1.0))

    def test_bs_put_within_ci(self, model_1d):
        r = MonteCarloEngine(N, seed=2).price(model_1d, Put(100.0), 1.0)
        assert r.within(bs_price(100, 100, 0.2, 0.05, 1.0, option="put"))

    def test_digital_within_ci(self, model_1d):
        r = MonteCarloEngine(N, seed=3).price(model_1d, DigitalCall(100.0, 10.0), 1.0)
        # Digital call = 10·e^{-rT}·N(d2).
        from repro.utils.numerics import norm_cdf
        import math

        d2 = (math.log(1.0) + (0.05 - 0.02) * 1.0) / 0.2
        exact = 10.0 * math.exp(-0.05) * float(norm_cdf(d2))
        assert r.within(exact)

    def test_margrabe_within_ci(self, model_2d):
        r = MonteCarloEngine(N, seed=4).price(model_2d, ExchangeOption(), 1.0)
        assert r.within(margrabe_price(100, 95, 0.2, 0.3, 0.4, 1.0))

    def test_stulz_min_call_within_ci(self, model_2d):
        r = MonteCarloEngine(N, seed=5).price(model_2d, CallOnMin(100.0), 1.0)
        exact = rainbow_two_asset_price(100, 95, 100, 0.2, 0.3, 0.4, 0.05, 1.0,
                                        kind="call-on-min")
        assert r.within(exact)

    def test_geometric_basket_within_ci(self, model_4d):
        w = [0.25] * 4
        r = MonteCarloEngine(N, seed=6).price(model_4d, GeometricBasketCall(w, 100.0), 1.0)
        assert r.within(geometric_basket_price(model_4d, w, 100.0, 1.0))

    def test_arithmetic_basket_bounded_by_geometric(self, model_4d):
        w = [0.25] * 4
        ar = MonteCarloEngine(N, seed=7).price(model_4d, BasketCall(w, 100.0), 1.0)
        ge = geometric_basket_price(model_4d, w, 100.0, 1.0)
        assert ar.price > ge  # AM ≥ GM ⇒ dearer call


class TestPathDependentAccuracy:
    def test_geometric_asian_within_ci(self, model_1d):
        eng = MonteCarloEngine(N, steps=12, seed=8)
        r = eng.price(model_1d, AsianGeometricCall(100.0), 1.0)
        assert r.within(geometric_asian_price(100, 100, 0.2, 0.05, 1.0, 12))

    def test_barrier_converges_to_continuous_form(self, model_1d):
        # Discrete monitoring gives a *higher* knock-out value; with 250
        # dates it lands within a few percent of the continuous formula.
        eng = MonteCarloEngine(100_000, steps=250, seed=9)
        contract = BarrierOption("up-and-out", "call", 100.0, 130.0)
        r = eng.price(model_1d, contract, 1.0)
        cont = barrier_price(100, 100, 130, 0.2, 0.05, 1.0, kind="up-and-out")
        assert r.price > cont - 2 * r.stderr  # discrete ≥ continuous (KO)
        assert abs(r.price - cont) < 0.05 * cont + 4 * r.stderr


class TestEngineContracts:
    def test_deterministic_in_seed(self, model_1d):
        a = MonteCarloEngine(20_000, seed=11).price(model_1d, Call(100.0), 1.0)
        b = MonteCarloEngine(20_000, seed=11).price(model_1d, Call(100.0), 1.0)
        assert a.price == b.price

    def test_batching_invariance(self, model_1d):
        # The estimate must not depend on the batch size.
        a = MonteCarloEngine(50_000, seed=12, batch_size=7_777).price(
            model_1d, Call(100.0), 1.0
        )
        b = MonteCarloEngine(50_000, seed=12, batch_size=50_000).price(
            model_1d, Call(100.0), 1.0
        )
        assert a.price == pytest.approx(b.price, rel=1e-12)

    def test_explicit_generator_used(self, model_1d):
        r1 = MonteCarloEngine(10_000).price(model_1d, Call(100.0), 1.0,
                                            gen=Philox4x32(77))
        r2 = MonteCarloEngine(10_000).price(model_1d, Call(100.0), 1.0,
                                            gen=Philox4x32(77))
        assert r1.price == r2.price

    def test_stderr_shrinks_with_n(self, model_1d):
        small = MonteCarloEngine(10_000, seed=13).price(model_1d, Call(100.0), 1.0)
        large = MonteCarloEngine(160_000, seed=13).price(model_1d, Call(100.0), 1.0)
        assert large.stderr < small.stderr / 3.0  # ≈ 1/√16 = 1/4

    def test_dim_mismatch_rejected(self, model_2d):
        with pytest.raises(ValidationError):
            MonteCarloEngine(1000).price(model_2d, Call(100.0), 1.0)

    def test_path_dependent_needs_steps(self, model_1d):
        with pytest.raises(ValidationError, match="steps"):
            MonteCarloEngine(1000).price(model_1d, AsianGeometricCall(100.0), 1.0)

    def test_wall_time_recorded(self, model_1d):
        r = MonteCarloEngine(5_000, seed=1).price(model_1d, Call(100.0), 1.0)
        assert r.meta["wall_time_s"] > 0


class TestMCResult:
    def test_confidence_interval_ordering(self):
        r = MCResult(price=10.0, stderr=0.1, n_paths=1000)
        lo, hi = r.confidence_interval(0.95)
        assert lo < 10.0 < hi
        assert hi - lo == pytest.approx(2 * 1.959963984540054 * 0.1, rel=1e-9)

    def test_within_helper(self):
        r = MCResult(price=10.0, stderr=0.1, n_paths=1000)
        assert r.within(10.2, z=4)
        assert not r.within(11.0, z=4)

    def test_str_contains_key_fields(self):
        s = str(MCResult(price=1.5, stderr=0.01, n_paths=10, technique="plain"))
        assert "plain" in s and "1.5" in s

    def test_invalid_ci_level(self):
        with pytest.raises(ValidationError):
            MCResult(1.0, 0.1, 10).confidence_interval(0.0)
