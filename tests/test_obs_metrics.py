"""Metrics registry: series semantics, canonical snapshots, bridges."""

import json
import statistics

import pytest

from repro.errors import ValidationError
from repro.obs import MetricsRegistry, metrics_from_report, metrics_from_run
from repro.parallel import SimulatedCluster
from repro.core import ParallelMCPricer
from repro.parallel.faults import FaultPlan
from repro.workloads import basket_workload


class TestCounter:
    def test_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("msgs").inc()
        reg.counter("msgs").inc(2.5)
        assert reg.counter("msgs").snapshot() == 3.5

    def test_rejects_negative_increment(self):
        with pytest.raises(ValidationError):
            MetricsRegistry().counter("msgs").inc(-1.0)


class TestGauge:
    def test_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("level").set(1.0)
        reg.gauge("level").set(7.0)
        assert reg.gauge("level").snapshot() == 7.0


class TestHistogram:
    def test_moments_match_statistics_module(self):
        values = [0.1, 0.4, 0.25, 0.9, 0.3]
        h = MetricsRegistry().histogram("lat")
        for v in values:
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == len(values)
        assert snap["sum"] == pytest.approx(sum(values))
        assert snap["min"] == min(values) and snap["max"] == max(values)
        assert snap["mean"] == pytest.approx(statistics.mean(values))
        assert snap["std"] == pytest.approx(statistics.stdev(values))

    def test_empty_and_single_observation(self):
        h = MetricsRegistry().histogram("lat")
        assert h.snapshot() == {"count": 0, "sum": 0.0, "min": 0.0,
                                "max": 0.0, "mean": 0.0, "std": 0.0,
                                "buckets": [], "p50": 0.0, "p90": 0.0,
                                "p99": 0.0, "p999": 0.0}
        h.observe(2.0)
        snap = h.snapshot()
        assert snap["std"] == 0.0
        assert snap["p50"] == 2.0 and snap["p999"] == 2.0
        assert snap["buckets"] == [[4, 1]]  # log2(2)*4 = bucket index 4

    def test_quantiles_bracket_min_max_and_interpolate(self):
        h = MetricsRegistry().histogram("lat")
        for v in range(1, 101):
            h.observe(v / 100.0)
        assert h.quantile(0.0) == h.min
        assert h.quantile(1.0) == h.max
        # Bucketed estimate lands within one bucket width (~19%) of exact.
        assert h.quantile(0.5) == pytest.approx(0.5, rel=0.2)
        assert h.quantile(0.99) == pytest.approx(0.99, rel=0.2)
        with pytest.raises(ValidationError):
            h.quantile(1.5)

    def test_nonpositive_observations_bucket_separately(self):
        h = MetricsRegistry().histogram("lat")
        h.observe(0.0)
        h.observe(5.0)
        snap = h.snapshot()
        assert snap["count"] == 2
        assert h.quantile(0.0) == 0.0 and h.quantile(1.0) == 5.0

    def test_merge_is_exact_and_validates_type(self):
        a = MetricsRegistry().histogram("lat")
        b = MetricsRegistry().histogram("lat")
        values = [0.01, 0.2, 0.2, 3.0, 41.0]
        for v in values[:2]:
            a.observe(v)
        for v in values[2:]:
            b.observe(v)
        whole = MetricsRegistry().histogram("lat")
        for v in values:
            whole.observe(v)
        a.merge(b)
        sa, sw = a.snapshot(), whole.snapshot()
        # Bucket counts, extremes and quantiles merge exactly (integers and
        # bucket geometry); the moment sums only up to summation order.
        for key in ("count", "min", "max", "buckets", "p50", "p90", "p99",
                    "p999"):
            assert sa[key] == sw[key], key
        assert sa["sum"] == pytest.approx(sw["sum"], rel=1e-12)
        assert sa["std"] == pytest.approx(sw["std"], rel=1e-9)
        with pytest.raises(ValidationError):
            a.merge(object())


class TestRegistry:
    def test_labels_make_distinct_series_with_sorted_keys(self):
        reg = MetricsRegistry()
        reg.counter("tasks", backend="thread").inc()
        reg.counter("tasks", backend="process").inc(2)
        # Label order in the call does not matter for series identity.
        assert (reg.gauge("x", b=1, a=2)
                is reg.gauge("x", a=2, b=1))
        snap = reg.snapshot()
        assert snap["counters"]["tasks{backend=process}"] == 2.0
        assert snap["counters"]["tasks{backend=thread}"] == 1.0
        assert "x{a=2,b=1}" in snap["gauges"]

    def test_matching_and_sum_counters(self):
        reg = MetricsRegistry()
        reg.counter("hits", shard=0).inc(3)
        reg.counter("hits", shard=1).inc(4)
        reg.counter("hits").inc(1)
        reg.counter("hitsx").inc(100)          # prefix, not a label variant
        reg.gauge("hits_depth").set(9.0)
        matched = reg.matching("hits")
        assert list(matched) == ["hits", "hits{shard=0}", "hits{shard=1}"]
        assert reg.sum_counters("hits") == 8.0
        # Reading only: no series is created by matching a missing name.
        assert reg.matching("absent") == {}
        assert reg.sum_counters("absent") == 0.0
        assert len(reg) == 5

    def test_kind_collision_raises(self):
        reg = MetricsRegistry()
        reg.counter("n")
        with pytest.raises(ValidationError):
            reg.gauge("n")

    def test_snapshot_is_insertion_order_independent(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("one").inc()
        a.gauge("two").set(2.0)
        b.gauge("two").set(2.0)
        b.counter("one").inc()
        assert a.to_json() == b.to_json()
        # Canonical JSON: parseable, sorted, compact.
        doc = json.loads(a.to_json())
        assert set(doc) == {"counters", "gauges", "histograms"}
        assert " " not in a.to_json()


class TestReportBridge:
    def test_counters_match_cluster_report_exactly(self):
        c = SimulatedCluster(4)
        for r in range(4):
            c.compute(r, 100 * (r + 1))
        c.reduce(24)
        c.bcast(8)
        rep = c.report()
        snap = metrics_from_report(rep).snapshot()
        assert snap["counters"]["sim.messages"] == rep["messages"]
        assert snap["counters"]["sim.bytes_moved"] == rep["bytes_moved"]
        assert snap["gauges"]["sim.p"] == 4
        assert snap["gauges"]["sim.elapsed"] == rep["elapsed"]

    def test_per_rank_breakdown_series(self):
        c = SimulatedCluster(2)
        c.compute(0, 500)
        c.reduce(24)
        rep = c.report()
        snap = metrics_from_report(rep).snapshot()
        assert (snap["gauges"]["sim.rank_seconds{account=compute,rank=0}"]
                == rep["ranks"][0]["compute"])
        dist = snap["histograms"]["sim.rank_seconds_dist{account=idle}"]
        assert dist["count"] == 2


class TestRunBridge:
    def test_run_and_fault_series(self):
        w = basket_workload(2)
        pricer = ParallelMCPricer(4000, seed=1,
                                  faults=FaultPlan.single_crash(1),
                                  policy="retry")
        res = pricer.price(w.model, w.payoff, w.expiry, 4)
        snap = metrics_from_run(res).snapshot()
        assert snap["gauges"]["run.p{engine=mc}"] == 4
        assert snap["gauges"]["run.paths_per_sec{engine=mc}"] > 0
        assert snap["counters"]["run.retries{engine=mc}"] == 1
        assert snap["counters"]["run.fault_recoveries{engine=mc}"] == 1
        assert snap["counters"]["run.lost_ranks{engine=mc}"] == 0
