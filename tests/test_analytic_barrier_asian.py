"""Reiner–Rubinstein barriers and discrete geometric Asian closed forms."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analytic import barrier_price, bs_price, geometric_asian_price
from repro.analytic.asian import geometric_asian_moments
from repro.errors import ValidationError

strikes = st.floats(80.0, 120.0)
barriers_up = st.floats(110.0, 160.0)
barriers_down = st.floats(60.0, 95.0)
vols = st.floats(0.1, 0.5)


class TestBarrierParity:
    @given(strikes, barriers_up, vols)
    def test_up_in_out_parity(self, k, h, v):
        common = dict(vol=v, rate=0.05, expiry=1.0)
        for option in ("call", "put"):
            pin = barrier_price(100, k, h, kind="up-and-in", option=option, **common)
            pout = barrier_price(100, k, h, kind="up-and-out", option=option, **common)
            vanilla = bs_price(100, k, v, 0.05, 1.0, option=option)
            assert pin + pout == pytest.approx(vanilla, abs=1e-9)

    @given(strikes, barriers_down, vols)
    def test_down_in_out_parity(self, k, h, v):
        common = dict(vol=v, rate=0.05, expiry=1.0)
        for option in ("call", "put"):
            pin = barrier_price(100, k, h, kind="down-and-in", option=option, **common)
            pout = barrier_price(100, k, h, kind="down-and-out", option=option, **common)
            vanilla = bs_price(100, k, v, 0.05, 1.0, option=option)
            assert pin + pout == pytest.approx(vanilla, abs=1e-9)


class TestBarrierLimits:
    def test_far_barrier_out_equals_vanilla(self):
        # An unreachable knock-out barrier never knocks.
        v = barrier_price(100, 100, 1e5, 0.2, 0.05, 1.0, kind="up-and-out")
        assert v == pytest.approx(bs_price(100, 100, 0.2, 0.05, 1.0), abs=1e-6)

    def test_far_barrier_in_worthless(self):
        v = barrier_price(100, 100, 1e5, 0.2, 0.05, 1.0, kind="up-and-in")
        assert v == pytest.approx(0.0, abs=1e-6)

    def test_breached_out_pays_rebate(self):
        v = barrier_price(130, 100, 120, 0.2, 0.05, 1.0, kind="up-and-out", rebate=7.0)
        assert v == pytest.approx(7.0)

    def test_breached_in_is_vanilla(self):
        v = barrier_price(130, 100, 120, 0.2, 0.05, 1.0, kind="up-and-in")
        assert v == pytest.approx(bs_price(130, 100, 0.2, 0.05, 1.0))

    def test_out_option_below_vanilla(self):
        out = barrier_price(100, 100, 120, 0.2, 0.05, 1.0, kind="up-and-out")
        assert 0.0 <= out <= bs_price(100, 100, 0.2, 0.05, 1.0)

    def test_known_regression_value(self):
        # Haug-style example: down-and-out call S=100 K=100 H=95 σ=25%
        # r=10% T=1 — pinned from this implementation (cross-validated by
        # parity + MC in the integration suite).
        v = barrier_price(100, 100, 95, 0.25, 0.10, 1.0, kind="down-and-out")
        vanilla = bs_price(100, 100, 0.25, 0.10, 1.0)
        # The close-in barrier knocks out roughly half the vanilla value.
        assert 0.25 * vanilla < v < 0.75 * vanilla

    def test_invalid_kind(self):
        with pytest.raises(ValidationError):
            barrier_price(100, 100, 120, 0.2, 0.05, 1.0, kind="diagonal-and-out")


class TestGeometricAsian:
    def test_single_fixing_is_terminal_bs(self):
        # m=1: the "average" is S(T) itself.
        a = geometric_asian_price(100, 100, 0.2, 0.05, 1.0, steps=1)
        assert a == pytest.approx(bs_price(100, 100, 0.2, 0.05, 1.0), abs=1e-10)

    def test_below_vanilla(self):
        # Averaging reduces variance ⇒ cheaper than the vanilla call.
        a = geometric_asian_price(100, 100, 0.2, 0.05, 1.0, steps=12)
        assert a < bs_price(100, 100, 0.2, 0.05, 1.0)

    def test_variance_decreases_with_more_fixings(self):
        _, v12 = geometric_asian_moments(100, 0.2, 0.05, 1.0, 12)
        _, v252 = geometric_asian_moments(100, 0.2, 0.05, 1.0, 252)
        _, v1 = geometric_asian_moments(100, 0.2, 0.05, 1.0, 1)
        assert v252 < v12 < v1

    def test_continuous_limit(self):
        # m → ∞: Var → σ²T/3, mean drift → half the terminal drift.
        mean, std = geometric_asian_moments(100, 0.2, 0.05, 1.0, 100_000)
        assert std**2 == pytest.approx(0.2**2 / 3.0, rel=1e-3)
        drift = 0.05 - 0.02
        assert mean == pytest.approx(math.log(100) + 0.5 * drift, rel=1e-3)

    def test_put_call_parity_on_lognormal_average(self):
        c = geometric_asian_price(100, 90, 0.3, 0.05, 2.0, 24)
        p = geometric_asian_price(100, 90, 0.3, 0.05, 2.0, 24, option="put")
        mean, std = geometric_asian_moments(100, 0.3, 0.05, 2.0, 24)
        df = math.exp(-0.05 * 2.0)
        fwd = math.exp(mean + 0.5 * std * std)
        assert c - p == pytest.approx(df * (fwd - 90), abs=1e-9)

    def test_invalid_option(self):
        with pytest.raises(ValidationError):
            geometric_asian_price(100, 100, 0.2, 0.05, 1.0, 12, option="chooser")
