"""Pickle round-trip contracts.

The fork-process backend ships (technique, model, payoff, generator) tuples
through pickle; any unpicklable object breaks real parallel execution.
These tests pin the contract for every class that crosses the process
boundary, and check behavioural equivalence (same numbers after the trip),
not just successful serialization.
"""

import pickle

import numpy as np
import pytest

from repro.market import (
    HestonModel,
    MertonJumpDiffusion,
    MultiAssetGBM,
    constant_correlation,
)
from repro.mc import (
    Antithetic,
    ControlVariate,
    DirectSampling,
    ImportanceSampling,
    PlainMC,
    QMCSobol,
    Stratified,
)
from repro.payoffs import (
    AsianArithmeticCall,
    BarrierOption,
    BasketCall,
    Call,
    CallOnMax,
    GeometricBasketCall,
    PowerCall,
    SpreadCall,
)
from repro.parallel.shm import shm_supported
from repro.rng import HaltonSequence, Lcg64, Philox4x32, SobolSequence, Xoshiro256StarStar


def roundtrip(obj):
    return pickle.loads(pickle.dumps(obj))


class TestGenerators:
    @pytest.mark.parametrize("gen_cls", [Lcg64, Philox4x32, Xoshiro256StarStar])
    def test_stream_position_preserved(self, gen_cls):
        g = gen_cls(42)
        g.random_raw(123)  # advance mid-stream
        clone = roundtrip(g)
        assert np.array_equal(g.random_raw(50), clone.random_raw(50))

    def test_sobol_position_preserved(self):
        s = SobolSequence(5, scramble=True, seed=3)
        s.next(17)
        clone = roundtrip(s)
        assert np.allclose(s.next(9), clone.next(9))

    def test_halton_position_preserved(self):
        h = HaltonSequence(4, scramble=True, seed=3)
        h.next(11)
        clone = roundtrip(h)
        assert np.allclose(h.next(7), clone.next(7))


class TestModels:
    def test_gbm(self, model_4d):
        clone = roundtrip(model_4d)
        a = model_4d.sample_terminal(Philox4x32(1), 100, 1.0)
        b = clone.sample_terminal(Philox4x32(1), 100, 1.0)
        assert np.array_equal(a, b)

    def test_merton(self):
        m = MertonJumpDiffusion(100, 0.2, 0.05, 1.0, -0.1, 0.15)
        clone = roundtrip(m)
        a = m.sample_terminal(Philox4x32(2), 100, 1.0)
        b = clone.sample_terminal(Philox4x32(2), 100, 1.0)
        assert np.array_equal(a, b)

    def test_heston(self):
        m = HestonModel(100, 0.04, 1.5, 0.06, 0.5, -0.7, 0.03, sampling_steps=20)
        clone = roundtrip(m)
        a = m.sample_terminal(Philox4x32(3), 50, 1.0)
        b = clone.sample_terminal(Philox4x32(3), 50, 1.0)
        assert np.array_equal(a, b)


class TestPayoffs:
    @pytest.mark.parametrize("payoff", [
        Call(100.0),
        BasketCall([0.25] * 4, 100.0),
        GeometricBasketCall([0.5, 0.5], 90.0),
        CallOnMax(100.0),
        SpreadCall(5.0),
        PowerCall(10_000.0, 2.0),
    ])
    def test_terminal_payoffs(self, payoff):
        clone = roundtrip(payoff)
        prices = 80.0 + 40.0 * np.random.default_rng(0).random((50, payoff.dim))
        assert np.array_equal(payoff.terminal(prices), clone.terminal(prices))

    @pytest.mark.parametrize("payoff", [
        AsianArithmeticCall(100.0),
        BarrierOption("up-and-out", "call", 100.0, 130.0),
    ])
    def test_path_payoffs(self, payoff):
        clone = roundtrip(payoff)
        paths = 80.0 + 40.0 * np.random.default_rng(1).random((20, 6, payoff.dim))
        assert np.array_equal(payoff.path(paths), clone.path(paths))


class TestTechniques:
    @pytest.mark.parametrize("technique", [
        PlainMC(),
        Antithetic(),
        Stratified(8),
        QMCSobol(4),
        DirectSampling(),
        ImportanceSampling(np.array([1.0])),
        ControlVariate(Call(100.0), 10.45),
    ])
    def test_partial_equivalence_after_roundtrip(self, technique, model_1d):
        clone = roundtrip(technique)
        kwargs = {}
        n = 800
        a = technique.partial(model_1d, Call(100.0), 1.0, n, Philox4x32(5), **kwargs)
        b = clone.partial(model_1d, Call(100.0), 1.0, n, Philox4x32(5), **kwargs)
        pa = technique.finalize(technique.combine([a]))
        pb = clone.finalize(clone.combine([b]))
        assert pa[0] == pb[0]


class TestServeDataclasses:
    """The serve layer's value objects cross the process boundary too:
    requests travel inside batch tasks, quotes come back, cache entries
    may be shipped to warm a remote cache."""

    def _request(self):
        from repro.serve import PricingRequest
        from repro.workloads.generators import basket_workload

        return PricingRequest(basket_workload(2), engine="mc",
                              n_paths=1_000, seed=7, p=2, name="desk")

    def test_pricing_request_roundtrip_preserves_key(self):
        from repro.serve import request_key

        r = self._request()
        clone = roundtrip(r)
        # Model/payoff equality is behavioral in this repo, so compare the
        # canonical key (covers the full contract description) + settings.
        assert request_key(clone) == request_key(r)
        assert clone.settings() == r.settings()
        assert (clone.engine, clone.name) == (r.engine, r.name)

    def test_batch_roundtrip(self):
        from repro.serve import Batch, request_key

        batch = Batch(3, (self._request(), self._request()))
        clone = roundtrip(batch)
        assert clone.index == 3 and len(clone) == 2
        assert ([request_key(r) for r in clone.requests]
                == [request_key(r) for r in batch.requests])

    def test_cache_entry_and_quote_roundtrip(self):
        from repro.serve import CacheEntry, PriceQuote

        quote = PriceQuote(engine="mc", price=1.5, stderr=0.01, sim_time=0.2)
        entry = CacheEntry("deadbeef", quote)
        clone = roundtrip(entry)
        assert clone == entry
        assert clone.value == quote

    def test_shared_array_ref_handle_is_small(self):
        """The whole point of the shm transport: the pickled *handle* stays
        tiny no matter how large the backing array is."""
        from repro.parallel import ShmSession

        big = np.zeros((512, 512))  # 2 MiB backing payload
        with ShmSession(min_bytes=1024) as session:
            ref = session.share(big)
            blob = pickle.dumps(ref)
            assert len(blob) < 512
            clone = pickle.loads(blob)
            assert np.array_equal(clone.load(), big)


@pytest.mark.skipif(not shm_supported(),
                    reason="POSIX shared memory unavailable")
class TestShmLifecycle:
    """No leaked /dev/shm segments — the transport must clean up even
    though worker processes attach to the segments by name."""

    @staticmethod
    def _dev_shm():
        import os

        return set(os.listdir("/dev/shm")) if os.path.isdir("/dev/shm") else set()

    def test_session_close_unlinks_segments(self):
        from multiprocessing import shared_memory

        from repro.parallel import ShmSession

        before = self._dev_shm()
        session = ShmSession(min_bytes=16)
        session.share(np.arange(100.0))
        names = session.segment_names
        assert names
        session.close()
        session.close()  # idempotent
        assert self._dev_shm() <= before
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_process_map_leaves_no_segments(self):
        from repro.parallel import ProcessBackend
        from repro.payoffs import BasketCall
        from repro.serve import revalue_scenarios

        before = self._dev_shm()
        scen = 80.0 + 40.0 * np.random.default_rng(0).random((2_000, 3))
        with ProcessBackend(2, shm_min_bytes=1024) as backend:
            revalue_scenarios([BasketCall([1 / 3] * 3, 100.0)], scen,
                              backend=backend, chunksize=1)
            names = backend.last_shm_segments
            assert names  # the matrix really went through shared memory
        after = self._dev_shm()
        assert after <= before
        assert not any(n.lstrip("/") in after for n in names)


class TestEndToEnd:
    def test_process_backend_with_every_exotic_piece(self, model_4d):
        """The real integration claim: an exotic technique + multi-asset
        model + composite payoff priced through actual fork workers."""
        from repro.core import ParallelMCPricer
        from repro.parallel import ProcessBackend, SerialBackend

        payoff = BasketCall([0.25] * 4, 100.0)
        serial = ParallelMCPricer(16_000, technique=Antithetic(), seed=9,
                                  backend=SerialBackend())
        backend = ProcessBackend(2)
        try:
            forked = ParallelMCPricer(16_000, technique=Antithetic(), seed=9,
                                      backend=backend)
            a = serial.price(model_4d, payoff, 1.0, 4)
            b = forked.price(model_4d, payoff, 1.0, 4)
            assert a.price == b.price
        finally:
            backend.close()
