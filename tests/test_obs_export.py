"""Trace exporters + the end-to-end observability acceptance checks."""

import csv
import io
import json

import pytest

from repro.errors import ValidationError
from repro.obs import (
    Tracer,
    chrome_trace,
    chrome_trace_json,
    metrics_from_report,
    spans_to_csv,
    summary_table,
    write_chrome_trace,
)
from repro.core import ParallelMCPricer
from repro.parallel import FaultPlan, make_backend
from repro.workloads import basket_workload


@pytest.fixture
def traced():
    tr = Tracer()
    tr.add_span("compute", 0.0, 1.5, rank=0, units=100)
    tr.add_span("comm", 1.5, 2.0, rank=0)
    tr.add_span("compute", 0.0, 2.0, rank=1)
    tr.add_span("mc.paths", 0.0, 2.0)
    tr.instant("retry", rank=1, t=1.0, attempt=1)
    return tr


class TestChromeTrace:
    def test_roundtrips_json_loads(self, traced):
        doc = json.loads(chrome_trace_json(traced))
        assert doc["displayTimeUnit"] == "ms"
        assert isinstance(doc["traceEvents"], list)

    def test_complete_events_have_perfetto_keys(self, traced):
        doc = chrome_trace(traced)
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(xs) == 4
        for e in xs:
            assert {"name", "ph", "ts", "dur", "pid", "tid"} <= set(e)
        # Microsecond units on the trace-event side.
        first = next(e for e in xs if e["name"] == "compute" and e["ts"] == 0)
        assert first["dur"] == pytest.approx(1.5e6)

    def test_one_labeled_track_per_rank(self, traced):
        doc = chrome_trace(traced, process_name="demo")
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta
                 if e["name"] == "thread_name"}
        assert names == {"main", "rank0", "rank1"}
        assert any(e["name"] == "process_name"
                   and e["args"]["name"] == "demo" for e in meta)
        # tids are distinct and consistent between metadata and events.
        tids = {e["args"]["name"]: e["tid"] for e in meta
                if e["name"] == "thread_name"}
        assert len(set(tids.values())) == 3
        assert tids["main"] == 0  # display order puts main first

    def test_instant_events(self, traced):
        doc = chrome_trace(traced)
        (inst,) = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert inst["name"] == "retry"
        assert inst["s"] == "t"
        assert inst["ts"] == pytest.approx(1.0e6)
        assert inst["args"] == {"attempt": 1}

    def test_disabled_tracer_exports_no_span_events(self):
        tr = Tracer(enabled=False)
        tr.add_span("x", 0, 1)
        doc = chrome_trace(tr)
        assert [e["ph"] for e in doc["traceEvents"]] == ["M"]

    def test_write_creates_file(self, traced, tmp_path):
        out = write_chrome_trace(traced, tmp_path / "deep" / "t.trace.json")
        assert json.loads(out.read_text())["traceEvents"]

    def test_type_checked(self):
        with pytest.raises(ValidationError):
            chrome_trace("not a tracer")


class TestCsvExport:
    def test_parses_and_keeps_full_precision_by_default(self, traced):
        rows = list(csv.reader(io.StringIO(spans_to_csv(traced))))
        assert rows[0] == ["track", "name", "t_start [s]", "t_end [s]",
                           "dur [s]", "args"]
        assert len(rows) == 1 + len(traced.spans)
        main_row = next(r for r in rows if r[0] == "main")
        assert main_row[1] == "mc.paths"
        assert float(main_row[4]) == 2.0

    def test_floatfmt_opt_in(self, traced):
        text = spans_to_csv(traced, floatfmt=".1f")
        assert "1.5" in text and "0.5" in text

    def test_args_survive_as_json(self, traced):
        rows = list(csv.reader(io.StringIO(spans_to_csv(traced))))
        tagged = next(r for r in rows[1:] if r[5])
        assert json.loads(tagged[5]) == {"units": 100}


class TestSummaryTable:
    def test_aggregates_per_name(self, traced):
        text = summary_table(traced).render()
        assert "trace summary" in text
        assert "compute" in text and "mc.paths" in text
        # 4 spans, 1 instant, 3 tracks.
        assert "4 span(s)" in text and "1 instant event(s)" in text


def _sq(x):
    return x * x


class TestWorkerSpans:
    @pytest.mark.parametrize("kind", ["serial", "thread", "process"])
    def test_backends_emit_per_worker_task_spans(self, kind):
        tr = Tracer()
        with make_backend(kind, 2, tracer=tr) as be:
            assert be.map(_sq, list(range(6))) == [x * x for x in range(6)]
        tracks = tr.tracks()
        assert tracks[0] == "main"
        assert all(t.startswith("worker") for t in tracks[1:])
        tasks = [s for s in tr.spans if s.name == "task"]
        assert len(tasks) == 6
        assert {s.args["rank_task"] for s in tasks} == set(range(6))
        (outer,) = [s for s in tr.spans if s.name.endswith(".map")]
        assert outer.args["n_tasks"] == 6


class TestAcceptance:
    """ISSUE acceptance: the chaos MC run's trace and metrics line up."""

    def test_mc_chaos_trace_and_metrics(self, tmp_path):
        w = basket_workload(2)
        tr = Tracer()
        pricer = ParallelMCPricer(8000, seed=1, record=True,
                                  faults=FaultPlan.single_crash(2),
                                  policy="retry", tracer=tr)
        res = pricer.price(w.model, w.payoff, w.expiry, 8)

        # One track per rank plus the phase track.
        assert tr.tracks()[:1] == ["main"]
        assert set(tr.tracks()) >= {f"rank{r}" for r in range(8)}
        names = {s.name for s in tr.spans}
        assert {"mc.paths", "mc.reduce", "compute", "comm"} <= names
        # Fault-retry instants visible, placed on the faulted rank.
        kinds = {(e.name, e.track) for e in tr.events}
        assert ("fault", "rank2") in kinds and ("retry", "rank2") in kinds

        # The trace file is Perfetto-loadable JSON.
        doc = json.loads(write_chrome_trace(
            tr, tmp_path / "chaos.trace.json").read_text())
        assert any(e["ph"] == "i" for e in doc["traceEvents"])

        # Metrics snapshot mirrors the cluster report exactly.
        rep = res.meta["cluster"].report()
        snap = metrics_from_report(rep).snapshot()
        assert snap["counters"]["sim.messages"] == rep["messages"] == res.messages
        assert (snap["counters"]["sim.bytes_moved"] == rep["bytes_moved"]
                == res.bytes_moved)

    def test_process_backend_worker_spans_on_mc(self):
        w = basket_workload(2)
        wall = Tracer()
        with make_backend("process", 2, tracer=wall) as be:
            pricer = ParallelMCPricer(4000, seed=1, backend=be)
            pricer.price(w.model, w.payoff, w.expiry, 4)
        tasks = [s for s in wall.spans if s.name == "task"]
        assert len(tasks) == 4
        assert all(s.track.startswith("worker") for s in tasks)
