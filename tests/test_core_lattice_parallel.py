"""Parallel lattice pricer: bit-identity with the sequential sweep and the
latency-bound scaling shape."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import ParallelLatticePricer
from repro.lattice import beg_price
from repro.market import MultiAssetGBM, constant_correlation
from repro.parallel import MachineSpec
from repro.payoffs import Call, CallOnMax, Put


class TestBitIdentity:
    @pytest.mark.parametrize("p", [1, 2, 3, 5, 8, 16, 64])
    def test_2d_matches_sequential_for_any_p(self, model_2d, p):
        seq = beg_price(model_2d, CallOnMax(100.0), 1.0, 60).price
        par = ParallelLatticePricer(60).price(model_2d, CallOnMax(100.0), 1.0, p)
        assert par.price == seq  # bit-identical, not approx

    @pytest.mark.parametrize("p", [1, 3, 7])
    def test_1d_matches_sequential(self, model_1d, p):
        seq = beg_price(model_1d, Call(100.0), 1.0, 200).price
        par = ParallelLatticePricer(200).price(model_1d, Call(100.0), 1.0, p)
        assert par.price == seq

    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_3d_matches_sequential(self, p):
        model = MultiAssetGBM.equicorrelated(3, 100, 0.25, 0.05, 0.3)
        from repro.payoffs import GeometricBasketCall

        payoff = GeometricBasketCall([1 / 3] * 3, 100.0)
        seq = beg_price(model, payoff, 1.0, 25).price
        par = ParallelLatticePricer(25).price(model, payoff, 1.0, p)
        assert par.price == seq

    @given(st.integers(1, 12))
    def test_american_matches_sequential(self, p):
        model = MultiAssetGBM(
            [100.0, 100.0], [0.2, 0.2], 0.05, dividends=[0.1, 0.1],
            correlation=constant_correlation(2, 0.0),
        )
        seq = beg_price(model, CallOnMax(100.0), 1.0, 40, american=True).price
        par = ParallelLatticePricer(40, american=True).price(
            model, CallOnMax(100.0), 1.0, p
        )
        assert par.price == seq

    def test_more_ranks_than_rows_is_fine(self, model_1d):
        # Near the root, levels have fewer rows than ranks: extra ranks idle.
        par = ParallelLatticePricer(10).price(model_1d, Put(100.0), 1.0, 64)
        seq = beg_price(model_1d, Put(100.0), 1.0, 10).price
        assert par.price == seq


class TestScalingShape:
    def test_speedup_saturates(self, model_2d):
        pricer = ParallelLatticePricer(120)
        results = pricer.sweep(model_2d, CallOnMax(100.0), 1.0, [1, 2, 4, 8, 16, 32])
        t1 = results[0].sim_time
        speedups = [t1 / r.sim_time for r in results]
        # Monotone but saturating: far below linear at P=32.
        assert all(b >= a - 1e-12 for a, b in zip(speedups, speedups[1:]))
        assert speedups[-1] < 32 * 0.5

    def test_larger_problems_scale_better(self, model_2d):
        # Efficiency at P=8 grows with step count (isoefficiency behaviour):
        # per-level halo latency amortizes over more per-level work.
        effs = []
        for steps in (32, 128, 512):
            pricer = ParallelLatticePricer(steps)
            rs = pricer.sweep(model_2d, CallOnMax(100.0), 1.0, [1, 8])
            effs.append(rs[0].sim_time / rs[1].sim_time / 8)
        assert effs[0] < effs[1] < effs[2]

    def test_comm_time_scales_with_levels(self, model_2d):
        r_small = ParallelLatticePricer(40).price(model_2d, CallOnMax(100.0), 1.0, 4)
        r_big = ParallelLatticePricer(160).price(model_2d, CallOnMax(100.0), 1.0, 4)
        assert r_big.comm_time > r_small.comm_time

    def test_american_charges_more_work(self, model_2d):
        eu = ParallelLatticePricer(60).price(model_2d, CallOnMax(100.0), 1.0, 4)
        am = ParallelLatticePricer(60, american=True).price(
            model_2d, CallOnMax(100.0), 1.0, 4
        )
        assert am.compute_time > eu.compute_time

    def test_fast_network_improves_lattice_more_than_mc(self, model_2d):
        # The lattice is latency-bound: shrinking α must shrink T(P) a lot.
        slow = ParallelLatticePricer(120, spec=MachineSpec(alpha=500e-6)).price(
            model_2d, CallOnMax(100.0), 1.0, 8
        )
        fast = ParallelLatticePricer(120, spec=MachineSpec(alpha=5e-6)).price(
            model_2d, CallOnMax(100.0), 1.0, 8
        )
        assert fast.sim_time < 0.5 * slow.sim_time
        assert fast.price == slow.price

    def test_meta_diagnostics(self, model_2d):
        r = ParallelLatticePricer(30).price(model_2d, CallOnMax(100.0), 1.0, 4)
        assert r.engine == "lattice"
        assert r.meta["branching"] == 4
        assert r.meta["nodes"] == sum((t + 1) ** 2 for t in range(31))
        assert r.stderr == 0.0
