"""Halton sequences: radical inverse, stratification, scrambling."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.rng import HALTON_MAX_DIM, HaltonSequence
from repro.rng.halton import first_primes, radical_inverse


class TestRadicalInverse:
    def test_base2_is_van_der_corput(self):
        got = radical_inverse(np.arange(8), 2)
        expected = [0.0, 0.5, 0.25, 0.75, 0.125, 0.625, 0.375, 0.875]
        assert np.allclose(got, expected)

    def test_base3_known_prefix(self):
        got = radical_inverse(np.arange(4), 3)
        assert np.allclose(got, [0.0, 1 / 3, 2 / 3, 1 / 9])

    @given(st.integers(2, 13), st.integers(0, 10_000))
    def test_in_unit_interval(self, base, idx):
        v = radical_inverse(np.array([idx]), base)[0]
        assert 0.0 <= v < 1.0

    def test_permutation_validated(self):
        with pytest.raises(ValidationError):
            radical_inverse(np.arange(4), 3, permutation=np.array([0, 0, 2]))

    def test_identity_permutation_is_noop(self):
        idx = np.arange(50)
        a = radical_inverse(idx, 5)
        b = radical_inverse(idx, 5, permutation=np.arange(5))
        assert np.allclose(a, b)

    def test_negative_indices_rejected(self):
        with pytest.raises(ValidationError):
            radical_inverse(np.array([-1]), 2)


class TestFirstPrimes:
    def test_prefix(self):
        assert first_primes(5) == (2, 3, 5, 7, 11)

    def test_bounds(self):
        with pytest.raises(ValidationError):
            first_primes(0)
        with pytest.raises(ValidationError):
            first_primes(HALTON_MAX_DIM + 1)


class TestHaltonSequence:
    def test_coordinates_use_distinct_bases(self):
        pts = HaltonSequence(3).next(10)
        assert not np.allclose(pts[:, 0], pts[:, 1])
        assert not np.allclose(pts[:, 1], pts[:, 2])

    @pytest.mark.parametrize("dim", [1, 3, 8])
    def test_low_discrepancy_means(self, dim):
        pts = HaltonSequence(dim).next(4096)
        assert np.allclose(pts.mean(axis=0), 0.5, atol=0.01)

    def test_base2_coordinate_stratifies(self):
        pts = HaltonSequence(1).next(256)
        hist, _ = np.histogram(pts[:, 0], bins=16, range=(0, 1))
        assert np.all(hist == 16)

    def test_skip_matches_offset(self):
        ref = HaltonSequence(4).next(60)
        s = HaltonSequence(4, skip=25)
        assert np.allclose(s.next(35), ref[25:])

    def test_skip_method(self):
        s = HaltonSequence(2)
        s.skip(7)
        assert s.position == 7

    def test_scramble_deterministic(self):
        a = HaltonSequence(6, scramble=True, seed=1).next(32)
        b = HaltonSequence(6, scramble=True, seed=1).next(32)
        c = HaltonSequence(6, scramble=True, seed=2).next(32)
        assert np.allclose(a, b)
        assert not np.allclose(a, c)

    def test_scramble_preserves_means(self):
        pts = HaltonSequence(8, scramble=True, seed=5).next(4096)
        assert np.allclose(pts.mean(axis=0), 0.5, atol=0.02)

    def test_scramble_decorrelates_high_dims(self):
        # Dimensions 20+ of plain Halton (bases 73, 79) are strongly
        # correlated on short prefixes; scrambling should shrink |ρ|.
        n = 512
        plain = HaltonSequence(22).next(n)
        scram = HaltonSequence(22, scramble=True, seed=9).next(n)
        c_plain = abs(np.corrcoef(plain[:, 20], plain[:, 21])[0, 1])
        c_scram = abs(np.corrcoef(scram[:, 20], scram[:, 21])[0, 1])
        assert c_scram < c_plain

    def test_integrates_smooth_function_better_than_mc(self):
        from repro.rng import Philox4x32

        n, dim = 4096, 5
        h = HaltonSequence(dim, skip=1).next(n)
        qmc_est = np.prod(2.0 * h, axis=1).mean()
        mc = Philox4x32(3).uniforms(n * dim).reshape(n, dim)
        mc_est = np.prod(2.0 * mc, axis=1).mean()
        assert abs(qmc_est - 1.0) < abs(mc_est - 1.0)

    def test_validation(self):
        with pytest.raises(ValidationError):
            HaltonSequence(0)
        with pytest.raises(ValidationError):
            HaltonSequence(HALTON_MAX_DIM + 1)
        with pytest.raises(ValidationError):
            HaltonSequence(2, skip=-1)
        with pytest.raises(ValidationError):
            HaltonSequence(2).next(-1)
