"""Isoefficiency solver and the analytic scalability ranking of the engines."""

import math

import pytest

from repro.errors import ConvergenceError, ValidationError
from repro.parallel import MachineSpec
from repro.perf import isoefficiency_curve, solve_problem_size

SPEC = MachineSpec()


def mc_time(n: int, p: int) -> float:
    """Parallel MC: n/p work units + tree reduce."""
    t = (n / p) * SPEC.flop_time * 50
    if p > 1:
        t += math.ceil(math.log2(p)) * SPEC.message_time(24)
    return t


def lattice_time(n: int, p: int) -> float:
    """2-D lattice: ~n³/p work + n per-level halo latencies."""
    t = (n**3 / p) * SPEC.flop_time * 10
    if p > 1:
        t += n * 2 * SPEC.message_time(8 * n)
    return t


def pde_time(n: int, p: int) -> float:
    """ADI: n² work per step + two (p−1)-round all-to-alls."""
    t = (n * n / p) * SPEC.flop_time * 30
    if p > 1:
        t += 2 * (p - 1) * SPEC.message_time(8.0 * n * n / (p * p))
    return t


class TestSolver:
    def test_p1_returns_minimum(self):
        assert solve_problem_size(mc_time, 1, 0.9) == 1

    def test_boundary_efficiency_achieved(self):
        n = solve_problem_size(mc_time, 16, 0.8)
        t1 = mc_time(n, 1)
        tp = mc_time(n, 16)
        assert t1 / (16 * tp) >= 0.8 - 1e-9

    def test_minimality_within_tolerance(self):
        n = solve_problem_size(mc_time, 16, 0.8, tol=0.001)
        smaller = int(n * 0.9)
        t1 = mc_time(smaller, 1)
        assert t1 / (16 * mc_time(smaller, 16)) < 0.8

    def test_higher_efficiency_needs_more_work(self):
        n50 = solve_problem_size(mc_time, 16, 0.5)
        n90 = solve_problem_size(mc_time, 16, 0.9)
        assert n90 > n50

    def test_unreachable_target_raises(self):
        def capped(n, p):
            return n / p + 1.0  # constant overhead never amortized? it is...

        # Overhead independent of n *is* amortized; craft one that is not:
        def hopeless(n, p):
            return (n / p) * (1.0 + 0.5 * (p > 1)) + 0.0

        with pytest.raises(ConvergenceError):
            solve_problem_size(hopeless, 8, 0.9, n_max=1 << 20)

    def test_target_bounds_validated(self):
        with pytest.raises(ValidationError):
            solve_problem_size(mc_time, 4, 1.0)
        with pytest.raises(ValidationError):
            solve_problem_size(mc_time, 4, 0.0)


class TestEngineScalabilityRanking:
    def test_mc_isoefficiency_is_near_p_log_p(self):
        curve = dict(isoefficiency_curve(mc_time, [2, 4, 8, 16, 32], 0.8))
        # W(P)/(P log P) should be roughly flat.
        ratios = [curve[p] / (p * math.log2(p)) for p in (4, 8, 16, 32)]
        assert max(ratios) / min(ratios) < 2.0

    def test_curves_are_monotone_in_p(self):
        # Note the 0.5 target: the ADI all-to-all moves a constant fraction
        # of the computed data, capping its asymptotic efficiency near 0.65
        # regardless of problem size — itself a correct prediction of the
        # model (the PDE engine is the least scalable of the three).
        for model in (mc_time, lattice_time, pde_time):
            curve = isoefficiency_curve(model, [2, 4, 8, 16], 0.5)
            ws = [w for _, w in curve]
            assert all(b >= a for a, b in zip(ws, ws[1:])), model.__name__

    def test_pde_efficiency_ceiling(self):
        # 0.9 efficiency is unreachable for the transpose-bound ADI model.
        with pytest.raises(ConvergenceError):
            solve_problem_size(pde_time, 8, 0.9, n_max=1 << 24)

    def test_work_growth_ranking(self):
        # Compare in *work* units (paths, lattice nodes ∝ n³, grid points
        # ∝ n²), not in each model's raw size parameter. The transpose-bound
        # PDE needs the steepest work growth to hold efficiency; MC tracks
        # the Θ(P log P) law.
        growth = {}
        for name, model, work_of_n in (
            ("mc", mc_time, lambda n: n),
            ("lattice", lattice_time, lambda n: n**3),
            ("pde", pde_time, lambda n: n**2),
        ):
            w2 = work_of_n(solve_problem_size(model, 2, 0.5))
            w16 = work_of_n(solve_problem_size(model, 16, 0.5))
            growth[name] = w16 / w2
        assert growth["pde"] > growth["mc"]
        assert growth["pde"] > growth["lattice"]
        # Θ(P log P): from P=2 to P=16 the law predicts 8·(4/1) = 32.
        assert growth["mc"] == pytest.approx(32.0, rel=0.3)
