"""Projected SOR: LCP solution properties."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConvergenceError, ValidationError
from repro.pde import psor_solve
from repro.utils.numerics import solve_tridiagonal


def _system(n, seed=0):
    rng = np.random.default_rng(seed)
    lower = -np.abs(rng.normal(size=n)) * 0.3
    upper = -np.abs(rng.normal(size=n)) * 0.3
    diag = np.abs(lower) + np.abs(upper) + 1.0  # M-matrix: PSOR-friendly
    rhs = rng.normal(size=n)
    return lower, diag, upper, rhs


class TestUnconstrainedLimit:
    @pytest.mark.parametrize("n", [3, 17, 101])
    def test_low_obstacle_recovers_linear_solve(self, n):
        lower, diag, upper, rhs = _system(n, seed=n)
        obstacle = np.full(n, -1e9)
        x_psor = psor_solve(lower, diag, upper, rhs, obstacle, tol=1e-12)
        x_exact = solve_tridiagonal(lower.copy(), diag.copy(), upper.copy(), rhs.copy())
        assert np.allclose(x_psor, x_exact, atol=1e-8)


class TestComplementarity:
    @given(st.integers(0, 50))
    def test_kkt_conditions_hold(self, seed):
        n = 40
        lower, diag, upper, rhs = _system(n, seed)
        obstacle = np.sin(np.linspace(0, 3, n))  # nontrivial obstacle
        x = psor_solve(lower, diag, upper, rhs, obstacle, tol=1e-12)
        # Feasibility.
        assert np.all(x >= obstacle - 1e-9)
        # Residual A x − b must be ≥ 0 where x is pinned at the obstacle
        # and ≈ 0 where x is free.
        resid = diag * x - rhs
        resid[1:] += lower[1:] * x[:-1]
        resid[:-1] += upper[:-1] * x[1:]
        free = x > obstacle + 1e-7
        assert np.allclose(resid[free], 0.0, atol=1e-6)
        assert np.all(resid[~free] >= -1e-6)

    def test_obstacle_binding_everywhere(self):
        # Huge obstacle: solution is the obstacle itself.
        n = 10
        lower, diag, upper, rhs = _system(n, 1)
        obstacle = np.full(n, 100.0)
        x = psor_solve(lower, diag, upper, rhs, obstacle)
        assert np.allclose(x, 100.0)


class TestParametersAndFailure:
    def test_omega_bounds(self):
        lower, diag, upper, rhs = _system(5)
        with pytest.raises(ValidationError):
            psor_solve(lower, diag, upper, rhs, rhs, omega=2.0)
        with pytest.raises(ValidationError):
            psor_solve(lower, diag, upper, rhs, rhs, omega=0.0)

    def test_zero_diagonal_rejected(self):
        with pytest.raises(ValidationError):
            psor_solve([0, 0], [1, 0], [0, 0], [1, 1], [0, 0])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            psor_solve([0.0], [1.0, 1.0], [0.0, 0.0], [1.0, 1.0], [0.0, 0.0])

    def test_iteration_budget_exhaustion(self):
        lower, diag, upper, rhs = _system(200, 3)
        with pytest.raises(ConvergenceError) as exc:
            psor_solve(lower, diag, upper, rhs, np.full(200, -1e9),
                       tol=1e-16, max_iter=2)
        assert exc.value.iterations == 2

    def test_warm_start_converges_faster(self):
        lower, diag, upper, rhs = _system(100, 4)
        obstacle = np.zeros(100)
        x = psor_solve(lower, diag, upper, rhs, obstacle, tol=1e-12)
        # Restarting at the solution converges immediately without error.
        x2 = psor_solve(lower, diag, upper, rhs, obstacle, x0=x, tol=1e-12,
                        max_iter=5)
        assert np.allclose(x, x2, atol=1e-9)
