"""Term structures."""

import math

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.market import FlatCurve, ZeroCurve


class TestFlatCurve:
    def test_discount(self):
        c = FlatCurve(0.05)
        assert c.discount(2.0) == pytest.approx(math.exp(-0.1))
        assert c.discount(0.0) == pytest.approx(1.0)

    def test_vectorized_discount(self):
        c = FlatCurve(0.03)
        t = np.array([0.5, 1.0, 2.0])
        assert np.allclose(c.discount(t), np.exp(-0.03 * t))

    def test_forward_rate_equals_rate(self):
        assert FlatCurve(0.04).forward_rate(0.5, 1.5) == pytest.approx(0.04)

    def test_forward_rate_validation(self):
        with pytest.raises(ValidationError):
            FlatCurve(0.04).forward_rate(1.0, 1.0)

    def test_negative_rates_allowed(self):
        # 2026: negative rates are a fact of life.
        c = FlatCurve(-0.01)
        assert c.discount(1.0) > 1.0

    def test_rejects_nan(self):
        with pytest.raises(ValidationError):
            FlatCurve(float("nan"))


class TestZeroCurve:
    def _curve(self):
        return ZeroCurve([0.5, 1.0, 2.0], [0.02, 0.03, 0.04])

    def test_interpolates(self):
        c = self._curve()
        assert c.zero_rate(0.75) == pytest.approx(0.025)

    def test_flat_extrapolation(self):
        c = self._curve()
        assert c.zero_rate(0.1) == pytest.approx(0.02)
        assert c.zero_rate(10.0) == pytest.approx(0.04)

    def test_discount_consistency(self):
        c = self._curve()
        t = 1.5
        assert c.discount(t) == pytest.approx(math.exp(-c.zero_rate(t) * t))

    def test_forward_rate_reconstructs_discounts(self):
        c = self._curve()
        t0, t1 = 0.5, 2.0
        f = c.forward_rate(t0, t1)
        lhs = c.discount(t1)
        rhs = c.discount(t0) * math.exp(-f * (t1 - t0))
        assert lhs == pytest.approx(rhs, rel=1e-12)

    def test_rejects_unsorted_times(self):
        with pytest.raises(ValidationError):
            ZeroCurve([1.0, 0.5], [0.02, 0.03])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValidationError):
            ZeroCurve([1.0], [0.02, 0.03])

    def test_rejects_nonpositive_times(self):
        with pytest.raises(ValidationError):
            ZeroCurve([0.0, 1.0], [0.02, 0.03])
