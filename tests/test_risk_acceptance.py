"""``-m risk`` acceptance tier: the MC risk sweep backtested against the
closed-form oracle.

The book is a strike ladder of geometric-basket calls sharing one
normalized weight vector, so spot-shock VaR/ES have closed forms
(:mod:`repro.risk.analytic`): the revalued portfolio is monotone in the
single variate ``Y = Σ w_i X_i``. The MC sweep draws the model's *true*
``h``-day distribution (:func:`horizon_scenarios`) and full-revalues
through the serving stack with common random numbers.

Band justification — each acceptance band is statistical, not a tuned
constant:

* The empirical ``α``-VaR is an order statistic; its sampling
  distribution spans quantile levels ``α ± z√(α(1−α)/n)``, so the MC
  estimate must land between the analytic VaR evaluated at those two
  bracket levels (z = 3, n = 1000), widened by a CRN-residual pricing
  margin of one portfolio stderr (common random numbers cancel the MC
  pricing bias between base and scenario values; the margin covers the
  shock-dependent residual).
* The empirical ES averages the tail order statistics; its error is
  bounded by ``z · sd(tail)/√|tail|`` plus the same pricing margin.

Everything is seeded: the whole module is bitwise reproducible, and the
``risk`` determinism check in ``repro verify`` replays the same sweeps.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.market.gbm import MultiAssetGBM
from repro.payoffs.basket import GeometricBasketCall
from repro.risk.analytic import (analytic_es, analytic_var, portfolio_value,
                                 shock_moments)
from repro.risk.scenarios import horizon_scenarios
from repro.risk.var import revalue_book, var_es
from repro.serve.batching import PricingRequest
from repro.serve.service import price_request
from repro.workloads.generators import Workload

pytestmark = pytest.mark.risk

WEIGHTS = (0.5, 0.5)
STRIKES = (95.0, 100.0, 105.0)
EXPIRY = 1.0
HORIZON = 10.0 / 252.0
N_SCENARIOS = 1_000
N_PATHS = 4_000
SEED = 11
LEVELS = (0.90, 0.95, 0.99)
Z = 3.0


def _model() -> MultiAssetGBM:
    return MultiAssetGBM.equicorrelated(2, 100.0, 0.25, 0.05, 0.3)


def _book(model):
    return [Workload(f"gbc-{k:g}", model, GeometricBasketCall(WEIGHTS, k),
                     EXPIRY) for k in STRIKES]


@pytest.fixture(scope="module")
def model():
    return _model()


@pytest.fixture(scope="module")
def sweep(model):
    """One seeded full-revaluation sweep, shared by the whole module."""
    book = _book(model)
    scenarios = horizon_scenarios(model, N_SCENARIOS, HORIZON, seed=SEED)
    report = revalue_book(book, scenarios, n_paths=N_PATHS, seed=SEED,
                          levels=LEVELS)
    stderr = sum(price_request(PricingRequest(w, engine="mc",
                                              n_paths=N_PATHS,
                                              seed=SEED)).stderr
                 for w in book)
    return report, stderr


class TestVarBacktest:
    @pytest.mark.parametrize("level", LEVELS)
    def test_mc_var_inside_order_statistic_bracket(self, model, sweep, level):
        report, stderr = sweep
        mc_var = report.levels[level][0]
        delta = Z * math.sqrt(level * (1.0 - level) / N_SCENARIOS)
        lo = analytic_var(model, WEIGHTS, STRIKES, EXPIRY, HORIZON,
                          level - delta)
        hi = analytic_var(model, WEIGHTS, STRIKES, EXPIRY, HORIZON,
                          min(level + delta, 1.0 - 0.5 / N_SCENARIOS))
        assert lo - stderr <= mc_var <= hi + stderr, (
            f"{level:.0%} VaR {mc_var:.4f} outside "
            f"[{lo - stderr:.4f}, {hi + stderr:.4f}]")

    @pytest.mark.parametrize("level", LEVELS)
    def test_mc_es_matches_analytic_within_tail_stderr(self, model, sweep,
                                                       level):
        report, stderr = sweep
        mc_es = report.levels[level][1]
        oracle = analytic_es(model, WEIGHTS, STRIKES, EXPIRY, HORIZON, level)
        losses = np.sort(-np.asarray(report.pnl))
        tail = losses[max(int(math.ceil(level * N_SCENARIOS)), 1) - 1:]
        es_se = (tail.std(ddof=1) / math.sqrt(tail.size)
                 if tail.size > 1 else 0.0)
        band = Z * es_se + stderr
        assert abs(mc_es - oracle) <= band, (
            f"{level:.0%} ES {mc_es:.4f} vs analytic {oracle:.4f} "
            f"(band {band:.4f})")

    def test_es_dominates_var_everywhere(self, sweep):
        report, _ = sweep
        for level in LEVELS:
            var, es = report.levels[level]
            assert es >= var
        # and at a few extra levels over the same P&L sample
        for level in (0.5, 0.75, 0.999):
            var, es = var_es(report.pnl, level)
            assert es >= var

    def test_var_monotone_in_level(self, sweep):
        report, _ = sweep
        vars_ = [report.levels[lv][0] for lv in LEVELS]
        assert vars_ == sorted(vars_)

    def test_base_value_matches_closed_form(self, model, sweep):
        report, stderr = sweep
        oracle = portfolio_value(model, WEIGHTS, STRIKES, EXPIRY)
        assert abs(report.base_value - oracle) <= Z * stderr


class TestAnalyticOracle:
    def test_shock_moments_match_direct_formula(self, model):
        m, s = shock_moments(model, WEIGHTS, HORIZON)
        w = np.asarray(WEIGHTS)
        cov = model.correlation * np.outer(model.vols, model.vols)
        assert m == pytest.approx(float(w @ model.drifts) * HORIZON)
        assert s == pytest.approx(math.sqrt(float(w @ cov @ w) * HORIZON))

    def test_analytic_es_dominates_var(self, model):
        for level in LEVELS:
            es = analytic_es(model, WEIGHTS, STRIKES, EXPIRY, HORIZON, level)
            var = analytic_var(model, WEIGHTS, STRIKES, EXPIRY, HORIZON,
                               level)
            assert es >= var > 0

    def test_analytic_var_monotone_in_level(self, model):
        grid = [analytic_var(model, WEIGHTS, STRIKES, EXPIRY, HORIZON, lv)
                for lv in (0.8, 0.9, 0.95, 0.99)]
        assert grid == sorted(grid)


class TestSeededReplay:
    def test_sweep_replays_bitwise(self, model):
        book = _book(model)
        scenarios = horizon_scenarios(model, 40, HORIZON, seed=SEED)
        digests = {revalue_book(book, scenarios, n_paths=600, seed=SEED,
                                levels=(0.9,)).pnl_digest()
                   for _ in range(2)}
        assert len(digests) == 1

    def test_registered_determinism_check_is_green(self):
        from repro.verify.determinism import DETERMINISM_CHECKS

        results = DETERMINISM_CHECKS["risk"](2_000, 5)
        assert results and all(r.ok for r in results)
