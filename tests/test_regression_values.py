"""Golden regression values.

These pin *exact* outputs of deterministic code paths (analytic formulas,
seeded MC, lattices, the simulated machine) so that accidental numerical
drift — a refactor changing a reduction order, a constant, a direction
number — fails loudly. Tolerances are tight (1e-9 relative) but not
bit-exact, allowing benign platform-level libm differences.

If an INTENTIONAL change shifts one of these (e.g. a new RNG stream
layout), re-pin the constant in the same commit and say why.
"""

import pytest

from repro.analytic import (
    barrier_price,
    bs_price,
    geometric_asian_price,
    geometric_basket_price,
    heston_price,
    kirk_spread_price,
    margrabe_price,
    merton_price,
    rainbow_two_asset_price,
)
from repro.market import MultiAssetGBM, constant_correlation
from repro.lattice import beg_price, binomial_price, leisen_reimer_price
from repro.mc import MonteCarloEngine
from repro.payoffs import BasketCall, Call, CallOnMax, Put
from repro.pde import adi_price, fd_price
from repro.rng import Lcg64, Philox4x32, SobolSequence

GOLD = pytest.approx


class TestAnalyticGold:
    def test_black_scholes(self):
        assert bs_price(100, 100, 0.2, 0.05, 1.0) == GOLD(10.450583572185565, rel=1e-12)

    def test_margrabe(self):
        assert margrabe_price(100, 95, 0.2, 0.3, 0.4, 1.0) == GOLD(
            13.77677734933176, rel=1e-12
        )

    def test_stulz(self):
        assert rainbow_two_asset_price(
            100, 95, 100, 0.2, 0.3, 0.4, 0.05, 1.0, kind="call-on-max"
        ) == GOLD(17.149518068454498, rel=1e-9)

    def test_geometric_basket(self):
        model = MultiAssetGBM.equicorrelated(4, 100, 0.25, 0.05, 0.3)
        assert geometric_basket_price(model, [0.25] * 4, 100.0, 1.0) == GOLD(
            8.392466214385573, rel=1e-12
        )

    def test_geometric_asian(self):
        assert geometric_asian_price(100, 100, 0.2, 0.05, 1.0, 12) == GOLD(
            5.940200221633534, rel=1e-12
        )

    def test_barrier(self):
        assert barrier_price(100, 100, 130, 0.2, 0.05, 1.0,
                             kind="up-and-out") == GOLD(3.3328575677087127, rel=1e-9)

    def test_kirk(self):
        assert kirk_spread_price(100, 96, 5.0, 0.25, 0.2, 0.5, 0.05, 1.0) == GOLD(
            8.666410649162275, rel=1e-9
        )

    def test_merton(self):
        assert merton_price(100, 100, 0.2, 0.05, 1.0, jump_intensity=1.0,
                            jump_mean=-0.1, jump_vol=0.15) == GOLD(
            12.761288593628661, rel=1e-9
        )

    def test_heston(self):
        assert heston_price(100, 100, 1.0, v0=0.04, kappa=1.5, theta=0.06,
                            xi=0.5, rho=-0.7, rate=0.03) == GOLD(
            9.720696033414368, rel=1e-7
        )


class TestRngGold:
    def test_lcg_first_word(self):
        assert int(Lcg64(42).random_raw(1)[0]) == 12870963724712631011

    def test_philox_first_word(self):
        assert int(Philox4x32(42).random_raw(1)[0]) == 16969946314717280182

    def test_sobol_point_five(self):
        pts = SobolSequence(3).next(6)
        assert pts[5].tolist() == GOLD([0.8750000001164153, 0.8750000001164153,
                                        0.12500000011641532], rel=1e-12)


class TestEngineGold:
    def test_binomial(self):
        assert binomial_price(100, Call(100.0), 0.2, 0.05, 1.0, 500).price == GOLD(
            10.446585136446535, rel=1e-10
        )

    def test_leisen_reimer(self):
        assert leisen_reimer_price(100, 100, 0.2, 0.05, 1.0, 101).price == GOLD(
            10.450549336566478, abs=1e-6
        )

    def test_beg_2d(self):
        model = MultiAssetGBM([100, 95], [0.2, 0.3], 0.05,
                              correlation=constant_correlation(2, 0.4))
        assert beg_price(model, CallOnMax(100.0), 1.0, 100).price == GOLD(
            17.134863843570674, rel=1e-9
        )

    def test_fd_crank_nicolson(self):
        assert fd_price(100, Put(100.0), 0.2, 0.05, 1.0, n_space=200,
                        n_time=100).price == GOLD(5.571087615419043, rel=1e-7)

    def test_adi(self):
        model = MultiAssetGBM([100, 95], [0.2, 0.3], 0.05,
                              correlation=constant_correlation(2, 0.4))
        from repro.payoffs import ExchangeOption

        assert adi_price(model, ExchangeOption(), 1.0, n_space=96,
                         n_time=24).price == GOLD(13.747441259629218, rel=1e-7)

    def test_seeded_mc(self):
        model = MultiAssetGBM.equicorrelated(4, 100, 0.25, 0.05, 0.3)
        r = MonteCarloEngine(50_000, seed=123).price(
            model, BasketCall([0.25] * 4, 100.0), 1.0
        )
        assert r.price == GOLD(9.481457068763815, rel=1e-10)


class TestSimulatedMachineGold:
    def test_mc_parallel_timing(self):
        from repro.core import ParallelMCPricer
        from repro.workloads import basket_workload

        w = basket_workload(4)
        r = ParallelMCPricer(200_000, seed=1).price(w.model, w.payoff, w.expiry, 8)
        assert r.sim_time == GOLD(0.01765072, rel=1e-6)
        assert r.messages == 7

    def test_lattice_parallel_timing(self):
        from repro.core import ParallelLatticePricer
        from repro.workloads import rainbow_workload

        w = rainbow_workload()
        r = ParallelLatticePricer(100).price(w.model, w.payoff, w.expiry, 4)
        assert r.messages == 603  # 2·(P−1) halo messages per level + final bcast
