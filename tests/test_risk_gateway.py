"""The risk↔gateway bridge: seeded sweeps as lane-tagged traffic.

Covers the shocked-contract book for the load generator, the
deterministic sweep schedule, the virtual-time drive (nonzero cache
hits, a ``kind="risk"`` ledger record per run, bitwise replay), the
asyncio :class:`ShardedGateway` actually serving sweep requests, and the
``repro risk`` / ``repro gateway --book risk`` CLI entry points.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.cli import main
from repro.errors import ValidationError
from repro.gateway import GatewayRequest, ShardedGateway
from repro.gateway.loadgen import LoadgenConfig, build_book
from repro.obs import RunLedger, read_ledger
from repro.risk.bridge import (risk_book, run_risk_sweep, sweep_requests,
                               sweep_schedule)
from repro.risk.scenarios import stress_scenarios
from repro.serve.service import PriceQuote, price_request
from repro.verify.determinism import float_bits
from repro.workloads.generators import strike_strip


class TestRiskBook:
    def test_shapes_and_identity_prefix(self):
        book = risk_book(10, seed=3)
        assert len(book) == 10
        base = strike_strip(4, dim=2)
        # scenario 0 is the identity: the first 4 contracts are the
        # unshocked ladder, bitwise.
        for got, want in zip(book[:4], base):
            assert got.payoff.strike == want.payoff.strike
            assert got.model.spots.tobytes() == want.model.spots.tobytes()
        # later groups are shocked copies of the same ladder
        assert book[4].model.spots.tobytes() != base[0].model.spots.tobytes()
        assert all(w.name.startswith("risk-") for w in book)

    def test_loadgen_accepts_risk_book(self):
        cfg = LoadgenConfig(book="risk", n_contracts=8, seed=5)
        book = build_book(cfg)
        assert len(book) == 8
        with pytest.raises(ValidationError):
            LoadgenConfig(book="hedge")

    def test_deterministic_in_seed(self):
        a, b = risk_book(12, seed=9), risk_book(12, seed=9)
        assert [w.name for w in a] == [w.name for w in b]
        assert all(x.model.spots.tobytes() == y.model.spots.tobytes()
                   for x, y in zip(a, b))


class TestSweepSchedule:
    def _tagged(self, n_contracts=3, n_scenarios=2):
        book = strike_strip(n_contracts, dim=2)
        scenarios = stress_scenarios(2, n_scenarios, seed=1)
        return book, scenarios, sweep_requests(book, scenarios, n_paths=400)

    def test_lanes_and_ordering(self):
        book, scenarios, tagged = self._tagged()
        n = len(book)
        assert [lane for lane, _ in tagged[:n]] == ["interactive"] * n
        assert all(lane == "bulk" for lane, _ in tagged[n:])
        assert len(tagged) == n * (len(scenarios) + 1)
        # common random numbers: every request shares one seed
        assert len({r.seed for _, r in tagged}) == 1

    def test_schedule_spacing_and_repeats(self):
        _, _, tagged = self._tagged()
        schedule = sweep_schedule(tagged, rate=100.0, repeats=2)
        assert len(schedule) == 2 * len(tagged)
        arrivals = [t for t, _ in schedule]
        assert arrivals == sorted(arrivals)
        assert arrivals[1] - arrivals[0] == pytest.approx(0.01)
        # bulk deadlines are looser than interactive ones
        deadlines = {g.lane: g.deadline_s for _, g in schedule}
        assert deadlines["bulk"] > deadlines["interactive"]

    def test_empty_book_rejected(self):
        with pytest.raises(ValidationError):
            sweep_requests([], stress_scenarios(2, 1))


class TestRunRiskSweep:
    def test_hits_record_and_bitwise_replay(self, tmp_path):
        book = strike_strip(3, dim=2)
        scenarios = stress_scenarios(2, 4, seed=2)
        path = tmp_path / "sweep.jsonl"

        def one(ledger=None):
            return run_risk_sweep(book, scenarios, n_shards=2, n_paths=400,
                                  seed=2, priced=True, ledger=ledger)

        result = one(RunLedger(path))
        assert result.completed > 0
        assert sum(result.cache_hits) > 0   # repeated pass is cache-hot
        records = list(read_ledger(path))
        kinds = [r.kind for r in records]
        assert kinds.count("risk") == 1 and "gateway" in kinds
        risk = next(r for r in records if r.kind == "risk")
        assert risk.extra["scenarios_per_s"] > 0
        assert 0 < risk.extra["hit_rate"] <= 1
        assert risk.extra["n_scenarios"] == 4
        replay = one()
        assert replay.price_stream_digest() == result.price_stream_digest()
        assert replay.decision_log_digest() == result.decision_log_digest()


class TestAsyncGatewayServesSweep:
    def test_quotes_bitwise_match_direct_pricing(self):
        book = strike_strip(2, dim=2)
        scenarios = stress_scenarios(2, 2, seed=4)
        tagged = sweep_requests(book, scenarios, n_paths=400)

        async def run():
            async with ShardedGateway(n_shards=2) as gw:
                greqs = [GatewayRequest(request=r, lane=lane, deadline_s=60.0)
                         for lane, r in tagged]
                return await gw.price_many(greqs)

        replies = asyncio.run(run())
        assert all(isinstance(q, PriceQuote) for q in replies)
        for (_, req), quote in zip(tagged, replies):
            assert float_bits(quote.price) == \
                float_bits(price_request(req).price)


class TestCli:
    def test_repro_risk_smoke(self, tmp_path, capsys):
        path = tmp_path / "risk.jsonl"
        rc = main(["risk", "--scenarios", "4", "--paths", "300",
                   "--generator", "axes", "--ledger", str(path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "VaR / ES" in out and "cache-hot" in out
        assert any(r.kind == "risk" for r in read_ledger(path))

    def test_repro_risk_rejects_bad_levels(self, capsys):
        assert main(["risk", "--levels", "ninety"]) == 2

    def test_repro_gateway_book_risk(self, tmp_path, capsys):
        path = tmp_path / "gw.jsonl"
        rc = main(["gateway", "--book", "risk", "--contracts", "8",
                   "--paths", "300", "--duration", "0.5", "--shards", "2",
                   "--ledger", str(path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "risk     :" in out
        records = list(read_ledger(path))
        assert [r.kind for r in records].count("risk") == 1
        risk = next(r for r in records if r.kind == "risk")
        assert risk.extra["hit_rate"] > 0   # repeated-book traffic forced
