"""Merton jump diffusion: Poisson sampler, martingale property, series."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analytic import bs_price, merton_price
from repro.errors import ValidationError
from repro.market import MertonJumpDiffusion, sample_poisson
from repro.mc import DirectSampling, MonteCarloEngine
from repro.payoffs import AsianGeometricCall, Call, Put
from repro.rng import Philox4x32


class TestPoissonSampler:
    @pytest.mark.parametrize("mean", [0.1, 1.0, 5.0, 20.0])
    def test_moments(self, mean):
        x = sample_poisson(Philox4x32(int(mean * 10)), 200_000, mean)
        assert x.min() >= 0
        assert x.mean() == pytest.approx(mean, rel=0.03)
        assert x.var() == pytest.approx(mean, rel=0.05)

    def test_zero_mean(self):
        assert np.all(sample_poisson(Philox4x32(0), 100, 0.0) == 0)

    def test_deterministic(self):
        a = sample_poisson(Philox4x32(7), 1000, 2.0)
        b = sample_poisson(Philox4x32(7), 1000, 2.0)
        assert np.array_equal(a, b)

    def test_huge_mean_rejected(self):
        with pytest.raises(ValidationError):
            sample_poisson(Philox4x32(0), 10, 500.0)

    def test_distribution_matches_pmf(self):
        mean = 2.0
        x = sample_poisson(Philox4x32(3), 300_000, mean)
        for k in range(5):
            pmf = math.exp(-mean) * mean**k / math.factorial(k)
            assert (x == k).mean() == pytest.approx(pmf, abs=0.005)


class TestModel:
    def _model(self, lam=1.0):
        return MertonJumpDiffusion(100, 0.2, 0.05, jump_intensity=lam,
                                   jump_mean=-0.1, jump_vol=0.15)

    def test_kappa(self):
        m = self._model()
        assert m.kappa == pytest.approx(math.exp(-0.1 + 0.5 * 0.15**2) - 1.0)

    def test_martingale_property(self):
        m = self._model()
        st_arr = m.sample_terminal(Philox4x32(1), 400_000, 1.0)
        assert st_arr.mean() == pytest.approx(m.terminal_mean(1.0), rel=0.005)

    def test_zero_intensity_reduces_to_gbm(self):
        m = MertonJumpDiffusion(100, 0.2, 0.05, jump_intensity=0.0,
                                jump_mean=0.0, jump_vol=0.0)
        r = MonteCarloEngine(200_000, technique=DirectSampling(), seed=2).price(
            m, Call(100.0), 1.0
        )
        assert r.within(bs_price(100, 100, 0.2, 0.05, 1.0), z=4)

    def test_jumps_fatten_tails(self):
        gbm_like = MertonJumpDiffusion(100, 0.2, 0.05, 0.0, 0.0, 0.0)
        jumpy = self._model(lam=2.0)
        a = np.log(gbm_like.sample_terminal(Philox4x32(3), 200_000, 1.0))
        b = np.log(jumpy.sample_terminal(Philox4x32(3), 200_000, 1.0))
        kurt_a = float(np.mean((a - a.mean()) ** 4) / a.var() ** 2)
        kurt_b = float(np.mean((b - b.mean()) ** 4) / b.var() ** 2)
        assert kurt_b > kurt_a + 0.3

    def test_validation(self):
        with pytest.raises(ValidationError):
            MertonJumpDiffusion(0, 0.2, 0.05, 1.0, 0.0, 0.1)
        with pytest.raises(ValidationError):
            MertonJumpDiffusion(100, 0.2, 0.05, -1.0, 0.0, 0.1)

    def test_shape(self):
        out = self._model().sample_terminal(Philox4x32(0), 50, 1.0)
        assert out.shape == (50, 1)
        assert np.all(out > 0)


class TestMertonSeries:
    def test_zero_intensity_is_black_scholes(self):
        v = merton_price(100, 100, 0.2, 0.05, 1.0, jump_intensity=0.0,
                         jump_mean=0.0, jump_vol=0.0)
        assert v == pytest.approx(bs_price(100, 100, 0.2, 0.05, 1.0), abs=1e-12)

    def test_jumps_raise_option_value(self):
        plain = bs_price(100, 100, 0.2, 0.05, 1.0)
        jumpy = merton_price(100, 100, 0.2, 0.05, 1.0, jump_intensity=1.0,
                             jump_mean=-0.1, jump_vol=0.15)
        assert jumpy > plain  # extra variance at fixed forward

    @given(st.floats(0.1, 3.0), st.floats(-0.3, 0.2), st.floats(0.01, 0.4))
    def test_put_call_parity(self, lam, mu_j, sig_j):
        kwargs = dict(jump_intensity=lam, jump_mean=mu_j, jump_vol=sig_j)
        c = merton_price(100, 95, 0.2, 0.05, 1.0, **kwargs)
        p = merton_price(100, 95, 0.2, 0.05, 1.0, option="put", **kwargs)
        # Forward unchanged by jumps (martingale compensation).
        assert c - p == pytest.approx(100 - 95 * math.exp(-0.05), abs=1e-8)

    def test_mc_matches_series(self):
        m = MertonJumpDiffusion(100, 0.2, 0.05, 1.0, -0.1, 0.15)
        r = MonteCarloEngine(300_000, technique=DirectSampling(), seed=5).price(
            m, Call(100.0), 1.0
        )
        exact = merton_price(100, 100, 0.2, 0.05, 1.0, jump_intensity=1.0,
                             jump_mean=-0.1, jump_vol=0.15)
        assert r.within(exact, z=4)

    def test_mc_matches_series_put(self):
        m = MertonJumpDiffusion(100, 0.2, 0.05, 0.5, 0.05, 0.2)
        r = MonteCarloEngine(300_000, technique=DirectSampling(), seed=6).price(
            m, Put(110.0), 1.0
        )
        exact = merton_price(100, 110, 0.2, 0.05, 1.0, option="put",
                             jump_intensity=0.5, jump_mean=0.05, jump_vol=0.2)
        assert r.within(exact, z=4)


class TestDirectSampling:
    def test_requires_sampler_protocol(self):
        class NoSampler:
            rate = 0.05
            dim = 1

        with pytest.raises(ValidationError, match="sample_terminal"):
            DirectSampling().partial(NoSampler(), Call(100.0), 1.0, 10,
                                     Philox4x32(0))

    def test_rejects_path_dependent(self):
        m = MertonJumpDiffusion(100, 0.2, 0.05, 1.0, -0.1, 0.15)
        with pytest.raises(ValidationError):
            DirectSampling().partial(m, AsianGeometricCall(100.0), 1.0, 10,
                                     Philox4x32(0))

    def test_parallel_composes(self):
        # DirectSampling through the parallel pricer: backend-invariant.
        from repro.core import ParallelMCPricer

        m = MertonJumpDiffusion(100, 0.2, 0.05, 1.0, -0.1, 0.15)
        pricer = ParallelMCPricer(40_000, technique=DirectSampling(), seed=3)
        r1 = pricer.price(m, Call(100.0), 1.0, 1)
        r4 = pricer.price(m, Call(100.0), 1.0, 4)
        exact = merton_price(100, 100, 0.2, 0.05, 1.0, jump_intensity=1.0,
                             jump_mean=-0.1, jump_vol=0.15)
        assert abs(r1.price - exact) < 5 * r1.stderr
        assert abs(r4.price - exact) < 5 * r4.stderr
