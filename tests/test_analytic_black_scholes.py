"""Black–Scholes closed forms: reference values, parity, Greeks, implied vol."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analytic import bs_greeks, bs_implied_vol, bs_price
from repro.errors import ConvergenceError, ValidationError

spots = st.floats(min_value=20.0, max_value=500.0)
strikes = st.floats(min_value=20.0, max_value=500.0)
vols = st.floats(min_value=0.05, max_value=1.0)
rates = st.floats(min_value=-0.02, max_value=0.15)
expiries = st.floats(min_value=0.05, max_value=5.0)


class TestPrice:
    def test_hull_reference_value(self):
        # Hull, "Options, Futures and Other Derivatives": S=42, K=40,
        # r=10%, σ=20%, T=0.5 ⇒ call 4.76, put 0.81.
        call = bs_price(42, 40, 0.2, 0.10, 0.5)
        put = bs_price(42, 40, 0.2, 0.10, 0.5, option="put")
        assert call == pytest.approx(4.759422, abs=1e-5)
        assert put == pytest.approx(0.808599, abs=1e-5)

    def test_atm_approximation(self):
        # ATM forward: C ≈ 0.4 σ√T S for small rates.
        c = bs_price(100, 100, 0.2, 0.0, 1.0)
        assert c == pytest.approx(0.4 * 0.2 * 100, rel=0.01)

    @given(spots, strikes, vols, rates, expiries)
    def test_put_call_parity(self, s, k, v, r, t):
        c = bs_price(s, k, v, r, t)
        p = bs_price(s, k, v, r, t, option="put")
        assert c - p == pytest.approx(s - k * math.exp(-r * t), abs=1e-8)

    @given(spots, strikes, vols, rates, expiries)
    def test_no_arbitrage_bounds(self, s, k, v, r, t):
        c = bs_price(s, k, v, r, t)
        assert max(s - k * math.exp(-r * t), 0.0) - 1e-9 <= c <= s + 1e-9

    @given(spots, strikes, vols, rates, expiries)
    def test_monotone_in_vol(self, s, k, v, r, t):
        assert bs_price(s, k, v + 0.05, r, t) >= bs_price(s, k, v, r, t) - 1e-12

    def test_expired_option_returns_intrinsic(self):
        assert bs_price(110, 100, 0.2, 0.05, 0.0) == pytest.approx(10.0)
        assert bs_price(90, 100, 0.2, 0.05, 0.0, option="put") == pytest.approx(10.0)

    def test_dividend_lowers_call(self):
        plain = bs_price(100, 100, 0.2, 0.05, 1.0)
        with_div = bs_price(100, 100, 0.2, 0.05, 1.0, dividend=0.03)
        assert with_div < plain

    def test_invalid_option_type(self):
        with pytest.raises(ValidationError):
            bs_price(100, 100, 0.2, 0.05, 1.0, option="collar")


class TestGreeks:
    def test_finite_difference_consistency(self):
        s, k, v, r, t = 100.0, 95.0, 0.25, 0.03, 0.75
        g = bs_greeks(s, k, v, r, t)
        h = 1e-4
        fd_delta = (bs_price(s + h, k, v, r, t) - bs_price(s - h, k, v, r, t)) / (2 * h)
        fd_gamma = (
            bs_price(s + h, k, v, r, t) - 2 * g.price + bs_price(s - h, k, v, r, t)
        ) / (h * h)
        fd_vega = (bs_price(s, k, v + h, r, t) - bs_price(s, k, v - h, r, t)) / (2 * h)
        fd_rho = (bs_price(s, k, v, r + h, t) - bs_price(s, k, v, r - h, t)) / (2 * h)
        fd_theta = -(bs_price(s, k, v, r, t + h) - bs_price(s, k, v, r, t - h)) / (2 * h)
        assert g.delta == pytest.approx(fd_delta, abs=1e-6)
        assert g.gamma == pytest.approx(fd_gamma, abs=1e-4)
        assert g.vega == pytest.approx(fd_vega, abs=1e-4)
        assert g.rho == pytest.approx(fd_rho, abs=1e-4)
        assert g.theta == pytest.approx(fd_theta, abs=1e-4)

    @given(spots, strikes, vols, rates, expiries)
    def test_call_delta_bounds(self, s, k, v, r, t):
        g = bs_greeks(s, k, v, r, t)
        assert -1e-12 <= g.delta <= 1.0 + 1e-12
        assert g.gamma >= 0.0
        assert g.vega >= 0.0

    def test_put_delta_negative(self):
        g = bs_greeks(100, 100, 0.2, 0.05, 1.0, option="put")
        assert -1.0 <= g.delta <= 0.0

    def test_delta_parity(self):
        gc = bs_greeks(100, 100, 0.2, 0.05, 1.0)
        gp = bs_greeks(100, 100, 0.2, 0.05, 1.0, option="put")
        assert gc.delta - gp.delta == pytest.approx(1.0, abs=1e-10)
        assert gc.gamma == pytest.approx(gp.gamma, abs=1e-12)
        assert gc.vega == pytest.approx(gp.vega, abs=1e-10)


class TestImpliedVol:
    @given(spots, strikes, st.floats(0.08, 0.9), rates, st.floats(0.1, 3.0))
    def test_roundtrip(self, s, k, v, r, t):
        price = bs_price(s, k, v, r, t)
        if price < 1e-8:  # numerically dead options can't be inverted
            return
        iv = bs_implied_vol(price, s, k, r, t)
        # The roundtrip is always well-conditioned in *price* space.
        assert bs_price(s, k, iv, r, t) == pytest.approx(price, abs=1e-8)
        # Vol itself is only identifiable when vega is non-negligible
        # (deep ITM/OTM low-vol options price at intrinsic for any σ).
        vega = bs_greeks(s, k, v, r, t).vega
        if vega > 1e-3:
            assert iv == pytest.approx(v, abs=2e-3)

    def test_put_roundtrip(self):
        price = bs_price(100, 110, 0.3, 0.02, 1.5, option="put")
        iv = bs_implied_vol(price, 100, 110, 0.02, 1.5, option="put")
        assert iv == pytest.approx(0.3, abs=1e-8)

    def test_rejects_arbitrage_violations(self):
        with pytest.raises(ConvergenceError):
            bs_implied_vol(200.0, 100, 100, 0.05, 1.0)  # above the spot
        with pytest.raises(ConvergenceError):
            bs_implied_vol(-1.0, 100, 100, 0.05, 1.0)
