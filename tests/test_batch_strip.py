"""Strip-equivalence tier: fused batch pricing must be *bitwise* single.

The contract under test (see ``repro.batch.kernels``): a fused strip run
shares only the **inputs** of each contract's arithmetic — the normal
block, the terminal-price matrix / path tensor, the lattice mesh — while
every per-contract operation runs in the single-run order. IEEE-754
arithmetic cannot observe input sharing, so every assertion here is on
equality of floats (``==``, i.e. bit identity for finite doubles), never
a tolerance. A tolerance would hide exactly the bugs this tier exists to
catch: reordered reductions, a shared buffer mutated by one contract,
technique state leaking across the strip.
"""

import numpy as np
import pytest

from repro.analytic import bs_price
from repro.batch import BatchPlan, ContractStrip, batch_key, plan_batches
from repro.batch.kernels import beg_strip_prices, strip_estimate, strip_partial
from repro.core import ParallelLatticePricer, ParallelMCPricer
from repro.engine.lattice import LatticeEngine
from repro.engine.mc import MCEngine
from repro.engine.registry import default_registry
from repro.engine.runner import run_engine, run_strip
from repro.errors import ValidationError
from repro.lattice import beg_price
from repro.market.gbm import MultiAssetGBM
from repro.mc.qmc import QMCSobol
from repro.mc.variance_reduction import Antithetic, ControlVariate, PlainMC
from repro.payoffs import AsianGeometricCall, Call, CallOnMax, Forward, Put
from repro.rng import Philox4x32
from repro.serve import PriceCache, PricingRequest, PricingService
from repro.workloads import rainbow_workload, strike_strip

N_PATHS = 4_000
EXPIRY = 1.0


@pytest.fixture(scope="module")
def model1():
    return MultiAssetGBM.single(100.0, 0.2, 0.05)


@pytest.fixture(scope="module")
def payoffs1():
    return [Call(90.0), Call(100.0), Call(110.0), Put(100.0)]


def _technique(name):
    if name == "plain":
        return PlainMC()
    if name == "antithetic":
        return Antithetic()
    if name == "qmc":
        return QMCSobol(8, seed=5)
    # Fallback path: no fused form — per-contract runs on identically
    # seeded generator copies.
    mean = bs_price(100.0, 100.0, 0.2, 0.05, EXPIRY, option="call")
    return ControlVariate(Call(100.0), mean)


# ---------------------------------------------------------------------------
# Engine layer: run_strip vs run_engine
# ---------------------------------------------------------------------------


class TestMCStripEquivalence:
    @pytest.mark.parametrize("tech", ["plain", "antithetic", "qmc", "cv"])
    @pytest.mark.parametrize("p", [1, 3])
    def test_mc_strip_bitwise(self, model1, payoffs1, tech, p):
        if tech in ("antithetic", "qmc") and p == 3:
            p = 2  # these techniques need even per-rank path counts
        pricer = ParallelMCPricer(N_PATHS, seed=11, technique=_technique(tech))
        singles = [run_engine(MCEngine(pricer), model1, py, EXPIRY, p)
                   for py in payoffs1]
        fused = run_strip(MCEngine(pricer), model1, payoffs1, EXPIRY, p)
        assert [r.price for r in fused] == [r.price for r in singles]
        assert [r.stderr for r in fused] == [r.stderr for r in singles]

    def test_path_dependent_strip_bitwise(self, model1):
        payoffs = [AsianGeometricCall(k) for k in (90.0, 100.0, 110.0)]
        pricer = ParallelMCPricer(N_PATHS, seed=3, steps=12)
        singles = [run_engine(MCEngine(pricer), model1, py, EXPIRY, 3)
                   for py in payoffs]
        fused = run_strip(MCEngine(pricer), model1, payoffs, EXPIRY, 3)
        assert [r.price for r in fused] == [r.price for r in singles]

    def test_strip_meta_indexes_contracts(self, model1, payoffs1):
        pricer = ParallelMCPricer(N_PATHS, seed=11)
        fused = run_strip(MCEngine(pricer), model1, payoffs1, EXPIRY, 2)
        assert [r.meta["strip"]["index"] for r in fused] == [0, 1, 2, 3]
        assert all(r.meta["strip"]["contracts"] == 4 for r in fused)

    def test_mixed_path_dependence_rejected(self, model1):
        pricer = ParallelMCPricer(N_PATHS, seed=1, steps=12)
        with pytest.raises(ValidationError, match="homogeneous"):
            run_strip(MCEngine(pricer), model1,
                      [Call(100.0), AsianGeometricCall(100.0)], EXPIRY, 2)

    def test_strip_shares_one_draw(self, model1, payoffs1):
        """The fused run must actually amortize: one rank's fused work
        units grow by the per-path payoff cost only, not by a full extra
        simulation per contract (the accounting mirror of sharing z)."""
        pricer = ParallelMCPricer(N_PATHS, seed=11)
        single = run_engine(MCEngine(pricer), model1, payoffs1[0], EXPIRY, 2)
        fused = run_strip(MCEngine(pricer), model1, payoffs1, EXPIRY, 2)
        assert fused[0].compute_time < 4 * single.compute_time


class TestLatticeStripEquivalence:
    @pytest.mark.parametrize("p", [1, 3])
    @pytest.mark.parametrize("american", [False, True])
    def test_lattice_1d_strip_bitwise(self, model1, payoffs1, p, american):
        pricer = ParallelLatticePricer(48, american=american)
        singles = [run_engine(LatticeEngine(pricer), model1, py, EXPIRY, p)
                   for py in payoffs1]
        fused = run_strip(LatticeEngine(pricer), model1, payoffs1, EXPIRY, p)
        assert [r.price for r in fused] == [r.price for r in singles]

    def test_lattice_2d_strip_bitwise(self):
        w = rainbow_workload()
        payoffs = [CallOnMax(k) for k in (90.0, 100.0, 110.0)]
        pricer = ParallelLatticePricer(24)
        singles = [run_engine(LatticeEngine(pricer), w.model, py, w.expiry, 2)
                   for py in payoffs]
        fused = run_strip(LatticeEngine(pricer), w.model, payoffs, w.expiry, 2)
        assert [r.price for r in fused] == [r.price for r in singles]

    def test_lattice_rejects_path_dependent_strip(self, model1):
        pricer = ParallelLatticePricer(24)
        with pytest.raises(ValidationError):
            run_strip(LatticeEngine(pricer), model1,
                      [AsianGeometricCall(100.0), AsianGeometricCall(90.0)],
                      EXPIRY, 2)


class TestRunStripValidation:
    def test_non_batchable_engine_rejected(self, model1, payoffs1):
        from repro.core import ParallelPDEPricer
        from repro.engine.pde import PDEEngine

        pricer = ParallelPDEPricer(n_space=24, n_time=6)
        with pytest.raises(ValidationError, match="not batchable"):
            run_strip(PDEEngine(pricer), model1, payoffs1, EXPIRY, 2)

    def test_dim_mismatch_rejected(self, model1):
        pricer = ParallelMCPricer(N_PATHS)
        with pytest.raises(ValidationError):
            run_strip(MCEngine(pricer), model1,
                      [Call(100.0), CallOnMax(100.0)], EXPIRY, 2)


# ---------------------------------------------------------------------------
# Kernel layer: strip_partial / strip_estimate / beg_strip_prices
# ---------------------------------------------------------------------------


class TestStripKernels:
    def test_strip_estimate_matches_estimate_multibatch(self, model1):
        payoffs = [Call(95.0), Put(105.0)]
        fused = strip_estimate(PlainMC(), model1, payoffs, EXPIRY, 5_000,
                               Philox4x32(9), batch_size=1_024)
        for py, got in zip(payoffs, fused):
            want = PlainMC().estimate(model1, py, EXPIRY, 5_000,
                                      Philox4x32(9), batch_size=1_024)
            assert got == want

    def test_qmc_strip_estimate_matches_estimate(self, model1):
        payoffs = [Call(95.0), Put(105.0)]
        tech = QMCSobol(8, seed=5)
        fused = strip_estimate(tech, model1, payoffs, EXPIRY, 4_096,
                               Philox4x32(0), batch_size=512)
        for py, got in zip(payoffs, fused):
            want = tech.estimate(model1, py, EXPIRY, 4_096, Philox4x32(0),
                                 batch_size=512)
            assert got == want

    def test_fallback_advances_master_generator(self, model1):
        """Contract 0 runs on the master generator, so after a fused
        partial the stream sits exactly where a single run left it — the
        alignment multi-batch estimate loops depend on."""
        mean = bs_price(100.0, 100.0, 0.2, 0.05, EXPIRY, option="call")
        tech = ControlVariate(Forward(), mean)
        g_fused, g_single = Philox4x32(4), Philox4x32(4)
        strip_partial(tech, model1, [Call(100.0), Put(100.0)], EXPIRY, 1_000,
                      g_fused)
        tech.partial(model1, Call(100.0), EXPIRY, 1_000, g_single)
        assert g_fused.normals(4).tolist() == g_single.normals(4).tolist()

    def test_beg_strip_matches_beg_price(self):
        w = rainbow_workload()
        payoffs = [CallOnMax(k) for k in (90.0, 100.0, 110.0)]
        for american in (False, True):
            fused = beg_strip_prices(w.model, payoffs, w.expiry, 16,
                                     american=american)
            singles = [beg_price(w.model, py, w.expiry, 16,
                                 american=american).price for py in payoffs]
            assert fused == singles

    def test_empty_strip_rejected(self, model1):
        with pytest.raises(ValidationError):
            strip_partial(PlainMC(), model1, [], EXPIRY, 100, Philox4x32(0))
        with pytest.raises(ValidationError):
            beg_strip_prices(model1, [], EXPIRY, 8)


# ---------------------------------------------------------------------------
# Planning layer: batch_key / ContractStrip / plan_batches
# ---------------------------------------------------------------------------


def _strip_requests(n=4, *, seed=0, n_paths=N_PATHS, engine="mc"):
    return [PricingRequest(w, engine=engine, n_paths=n_paths, seed=seed,
                           p=2, name=w.name)
            for w in strike_strip(n)]


class TestPlanBatches:
    def test_shared_stream_groups_into_one_strip(self):
        plan = plan_batches(_strip_requests(5))
        assert len(plan.strips) == 1 and len(plan.strips[0]) == 5
        assert plan.singles == ()
        assert plan.fused_contracts == 5

    def test_different_settings_split_strips(self):
        reqs = _strip_requests(3, seed=0) + _strip_requests(3, seed=1)
        plan = plan_batches(reqs)
        assert len(plan.strips) == 2
        assert {len(s) for s in plan.strips} == {3}

    def test_min_strip_returns_undersized_groups_to_singles(self):
        reqs = _strip_requests(2)
        plan = plan_batches(reqs, min_strip=3)
        assert plan.strips == ()
        assert list(plan.singles) == reqs

    def test_non_batchable_family_stays_single(self):
        from repro.workloads import spread_workload

        w = spread_workload()
        reqs = [PricingRequest(w, engine="pde", grid=24, steps=6, p=2)
                for _ in range(3)]
        plan = plan_batches(reqs + _strip_requests(3))
        assert len(plan.strips) == 1
        assert [r.engine for r in plan.singles] == ["pde"] * 3
        # tasks(): strips first, then singles — a stable map order.
        tasks = plan.tasks()
        assert isinstance(tasks[0], ContractStrip)
        assert len(tasks) == 4

    def test_rejects_non_request_items(self):
        with pytest.raises(ValidationError, match="PricingRequest"):
            plan_batches(["not-a-request"])

    def test_plan_is_frozen(self):
        plan = plan_batches(_strip_requests(3))
        assert isinstance(plan, BatchPlan)
        with pytest.raises(AttributeError):
            plan.strips = ()


class TestContractStrip:
    def test_mixed_keys_rejected(self):
        reqs = _strip_requests(2, seed=0) + _strip_requests(2, seed=1)
        with pytest.raises(ValidationError):
            ContractStrip.from_requests(reqs)

    def test_keys_preserve_request_identity(self):
        from repro.serve.batching import request_key

        reqs = _strip_requests(4)
        strip = ContractStrip.from_requests(reqs)
        assert strip.keys() == [request_key(r) for r in reqs]
        assert len(set(strip.keys())) == 4  # strikes differ -> keys differ
        assert len({batch_key(r) for r in reqs}) == 1

    def test_column_extracts_payoff_attribute(self):
        strip = ContractStrip.from_requests(_strip_requests(4))
        strikes = strip.column("strike")
        assert isinstance(strikes, np.ndarray)
        assert strikes.tolist() == sorted(strikes.tolist())
        with pytest.raises(ValidationError):
            strip.column("no_such_attr")


class TestRegistryBatchable:
    def test_batchable_families(self):
        names = default_registry().names(batchable=True)
        assert set(names) == {"mc", "qmc", "lattice"}

    def test_flag_surfaces_in_capabilities(self):
        reg = default_registry()
        assert "batchable" in reg.get("mc").capabilities.flags()
        assert "batchable" not in reg.get("pde").capabilities.flags()


# ---------------------------------------------------------------------------
# Serving layer: batched service vs single path
# ---------------------------------------------------------------------------


class TestServeBatched:
    def test_batched_service_bitwise_and_one_map(self):
        reqs = _strip_requests(6, n_paths=1_500)
        with PricingService(max_batch=len(reqs), cache=None) as svc:
            single = svc.price_many(reqs)
        with PricingService(max_batch=len(reqs), cache=None,
                            batched=True) as svc:
            batched = svc.price_many(reqs)
            assert svc.map_calls == 1
        assert [(q.price, q.stderr) for q in batched] == \
               [(q.price, q.stderr) for q in single]

    def test_batched_cache_fanout_and_hot_replay(self):
        reqs = _strip_requests(4, n_paths=1_500)
        stream = reqs + reqs[:2]  # in-batch duplicates
        cache = PriceCache(32)
        with PricingService(max_batch=len(stream), cache=cache,
                            batched=True) as svc:
            quotes = svc.price_many(stream)
            assert svc.map_calls == 1
            assert quotes[0] is quotes[4] and quotes[1] is quotes[5]
            svc.price_many(reqs)  # 100% hit replay
            assert svc.map_calls == 1  # cache answered; no new map

    def test_mixed_book_strips_and_singles_one_map(self):
        from repro.workloads import spread_workload

        w = spread_workload()
        reqs = _strip_requests(3, n_paths=1_500) + [
            PricingRequest(w, engine="pde", grid=24, steps=6, p=2)]
        with PricingService(max_batch=len(reqs), cache=None) as svc:
            single = svc.price_many(reqs)
        with PricingService(max_batch=len(reqs), cache=None,
                            batched=True) as svc:
            batched = svc.price_many(reqs)
            assert svc.map_calls == 1
        assert [(q.price, q.stderr, q.engine) for q in batched] == \
               [(q.price, q.stderr, q.engine) for q in single]

    def test_min_strip_disables_fusion_for_small_groups(self):
        from repro.obs import MetricsRegistry

        reqs = _strip_requests(2, n_paths=1_500)
        metrics = MetricsRegistry()
        with PricingService(max_batch=len(reqs), cache=None, batched=True,
                            min_strip=3, metrics=metrics) as svc:
            svc.price_many(reqs)
        assert metrics.counter("serve.strips").value == 0
