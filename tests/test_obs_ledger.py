"""Run ledger: record round-trips, schema stability, runner/serve wiring."""

import json

import pytest

from repro.errors import ValidationError
from repro.core import ParallelMCPricer
from repro.obs import (
    LEDGER_SCHEMA_VERSION,
    RunLedger,
    RunRecord,
    config_digest,
    new_run_id,
    read_ledger,
    set_active_ledger,
)
from repro.parallel import ThreadBackend
from repro.parallel.faults import FaultPlan
from repro.workloads import basket_workload


def _record(**over) -> RunRecord:
    doc = dict(run_id="abc123def456", kind="engine", engine="mc",
               config="0011223344ff", backend="thread", workers=2, p=4,
               stages={"plan": 0.001, "execute": 0.5},
               wall_s=0.51, sim_s=0.2, faults={"injected": 1, "retries": 1},
               extra={"price": 10.5}, git="deadbee")
    doc.update(over)
    return RunRecord(**doc)


class TestRunRecord:
    def test_round_trip_preserves_every_field(self):
        rec = _record()
        clone = RunRecord.from_dict(json.loads(rec.to_json()))
        assert clone == rec
        assert clone.to_json() == rec.to_json()

    def test_canonical_json_is_sorted_and_compact(self):
        text = _record().to_json()
        doc = json.loads(text)
        assert list(doc) == sorted(doc)
        assert ": " not in text and ", " not in text
        assert doc["schema"] == LEDGER_SCHEMA_VERSION

    def test_schema_stability_golden_shape(self):
        # The v1 wire shape is frozen: adding/renaming a field must bump
        # LEDGER_SCHEMA_VERSION (and extend this set).
        assert set(json.loads(_record().to_json())) == {
            "schema", "run_id", "kind", "engine", "config", "backend",
            "workers", "p", "stages", "wall_s", "sim_s", "faults",
            "extra", "git",
        }

    def test_newer_schema_is_rejected(self):
        doc = json.loads(_record().to_json())
        doc["schema"] = LEDGER_SCHEMA_VERSION + 1
        with pytest.raises(ValidationError, match="newer"):
            RunRecord.from_dict(doc)

    def test_missing_schema_and_malformed_doc_raise(self):
        with pytest.raises(ValidationError):
            RunRecord.from_dict({"run_id": "x"})
        with pytest.raises(ValidationError):
            RunRecord.from_dict([1, 2])
        doc = json.loads(_record().to_json())
        del doc["engine"]
        with pytest.raises(ValidationError, match="malformed"):
            RunRecord.from_dict(doc)


class TestLedgerFile:
    def test_append_and_read_back(self, tmp_path):
        ledger = RunLedger(tmp_path / "sub" / "runs.jsonl")
        for i in range(3):
            ledger.append(_record(run_id=f"{i:012d}"))
        assert ledger.appended == 3
        recs = ledger.records()
        assert [r.run_id for r in recs] == ["000000000000", "000000000001",
                                           "000000000002"]
        assert len(ledger) == 3

    def test_read_missing_and_corrupt_lines(self, tmp_path):
        with pytest.raises(ValidationError, match="not found"):
            list(read_ledger(tmp_path / "nope.jsonl"))
        bad = tmp_path / "bad.jsonl"
        bad.write_text(_record().to_json() + "\nnot json\n")
        with pytest.raises(ValidationError, match="not valid JSON"):
            list(read_ledger(bad))

    def test_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        path.write_text("\n" + _record().to_json() + "\n\n")
        assert len(list(read_ledger(path))) == 1


class TestHelpers:
    def test_new_run_id_shape_and_uniqueness(self):
        ids = {new_run_id() for _ in range(64)}
        assert len(ids) == 64
        assert all(len(i) == 12 for i in ids)
        assert all(c in "0123456789abcdef" for i in ids for c in i)

    def test_config_digest_ignores_machinery_and_order(self):
        class Cfg:
            pass

        a, b = Cfg(), Cfg()
        a.n_paths, a.seed, a.backend = 1000, 7, ThreadBackend(2)
        b.seed, b.n_paths = 7, 1000  # different insertion order, no backend
        a.backend.close()
        assert config_digest(a) == config_digest(b)
        b.seed = 8
        assert config_digest(a) != config_digest(b)

    def test_config_digest_accepts_mappings(self):
        assert config_digest({"a": 1}) != config_digest({"a": 2})
        assert len(config_digest({"a": 1})) == 12


class TestRunnerIntegration:
    def test_pipeline_run_appends_stage_timed_record(self, tmp_path):
        w = basket_workload(2)
        pricer = ParallelMCPricer(4000, seed=1)
        pricer.ledger = RunLedger(tmp_path / "runs.jsonl")
        res = pricer.price(w.model, w.payoff, w.expiry, 4)
        (rec,) = pricer.ledger.records()
        assert rec.kind == "engine" and rec.engine == "mc"
        assert rec.backend == "serial" and rec.p == 4
        assert set(rec.stages) == {"plan", "partition", "execute",
                                   "reduce", "report"}
        assert all(t >= 0.0 for t in rec.stages.values())
        assert rec.wall_s == res.wall_time
        assert rec.extra["price"] == res.price
        assert len(rec.run_id) == 12

    def test_fault_tallies_and_run_id_correlation(self, tmp_path):
        w = basket_workload(2)
        pricer = ParallelMCPricer(4000, seed=1,
                                  faults=FaultPlan.single_crash(1),
                                  policy="retry")
        pricer.ledger = RunLedger(tmp_path / "runs.jsonl")
        res = pricer.price(w.model, w.payoff, w.expiry, 4)
        (rec,) = pricer.ledger.records()
        assert rec.faults == {"injected": 1, "retries": 1,
                              "recovered": 1, "lost": 0}
        # The RunReport carries the same correlation id as the ledger row.
        assert res.meta["fault_report"].run_id == rec.run_id

    def test_no_ledger_means_no_writes(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_LEDGER", raising=False)
        set_active_ledger(None)
        w = basket_workload(2)
        ParallelMCPricer(2000, seed=1).price(w.model, w.payoff, w.expiry, 2)
        assert list(tmp_path.iterdir()) == []

    def test_ambient_ledger_via_set_active(self, tmp_path):
        ledger = set_active_ledger(tmp_path / "ambient.jsonl")
        try:
            w = basket_workload(2)
            ParallelMCPricer(2000, seed=1).price(w.model, w.payoff,
                                                 w.expiry, 2)
            assert len(ledger.records()) == 1
        finally:
            set_active_ledger(None)

    def test_run_id_stays_out_of_canonical_report(self, tmp_path):
        # Byte-reproducibility contract: the correlation id never enters
        # RunReport's canonical serialization, so replayed chaos runs
        # still compare byte-for-byte.
        w = basket_workload(2)

        def report_json(with_ledger: bool):
            pricer = ParallelMCPricer(2000, seed=1,
                                      faults=FaultPlan.single_crash(0),
                                      policy="retry")
            if with_ledger:
                pricer.ledger = RunLedger(tmp_path / "r.jsonl")
            res = pricer.price(w.model, w.payoff, w.expiry, 2)
            return res.meta["fault_report"].to_json()

        assert report_json(True) == report_json(False)
