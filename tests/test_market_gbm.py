"""MultiAssetGBM: construction, exact moments, sampling laws."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.market import MultiAssetGBM, constant_correlation
from repro.rng import Philox4x32


class TestConstruction:
    def test_scalar_broadcast(self):
        m = MultiAssetGBM([100, 90, 80], 0.2, 0.05)
        assert m.dim == 3
        assert np.allclose(m.vols, 0.2)
        assert np.allclose(m.correlation, np.eye(3))

    def test_single_factory(self):
        m = MultiAssetGBM.single(100, 0.2, 0.05, dividend=0.01)
        assert m.dim == 1
        assert m.dividends[0] == pytest.approx(0.01)

    def test_equicorrelated_factory(self):
        m = MultiAssetGBM.equicorrelated(5, 100, 0.3, 0.02, 0.25)
        assert m.dim == 5
        assert m.correlation[0, 4] == pytest.approx(0.25)

    def test_rejects_nonpositive_spot(self):
        with pytest.raises(ValidationError):
            MultiAssetGBM([100, -1], 0.2, 0.05)

    def test_rejects_nonpositive_vol(self):
        with pytest.raises(ValidationError):
            MultiAssetGBM(100, 0.0, 0.05)

    def test_rejects_wrong_correlation_shape(self):
        with pytest.raises(ValidationError):
            MultiAssetGBM([100, 90], 0.2, 0.05, correlation=np.eye(3))

    def test_immutable(self):
        m = MultiAssetGBM.single(100, 0.2, 0.05)
        with pytest.raises(Exception):
            m.rate = 0.1

    def test_with_spots_and_vols_copies(self):
        m = MultiAssetGBM.single(100, 0.2, 0.05)
        m2 = m.with_spots([110.0])
        m3 = m.with_vols([0.3])
        assert m.spots[0] == 100.0 and m2.spots[0] == 110.0
        assert m.vols[0] == 0.2 and m3.vols[0] == 0.3

    def test_drifts(self):
        m = MultiAssetGBM.single(100, 0.2, 0.05, dividend=0.01)
        assert m.drifts[0] == pytest.approx(0.05 - 0.01 - 0.02)


class TestMoments:
    def test_terminal_mean_forward(self, model_1d):
        assert model_1d.terminal_mean(2.0)[0] == pytest.approx(100.0 * np.exp(0.1))

    def test_log_moments(self, model_2d):
        mean, cov = model_2d.terminal_log_moments(1.0)
        assert mean.shape == (2,)
        assert cov.shape == (2, 2)
        assert cov[0, 1] == pytest.approx(0.4 * 0.2 * 0.3)

    def test_martingale_property_sampled(self, model_4d):
        # E[e^{-rT} S_i(T)] = S_i(0) e^{-q_i T}: the discounted asset is a
        # martingale under the risk-neutral measure.
        gen = Philox4x32(31)
        s_term = model_4d.sample_terminal(gen, 400_000, 1.0)
        disc = np.exp(-model_4d.rate * 1.0)
        est = disc * s_term.mean(axis=0)
        assert np.allclose(est, model_4d.spots, rtol=0.01)

    def test_sampled_log_covariance(self, model_2d):
        gen = Philox4x32(33)
        s_term = model_2d.sample_terminal(gen, 300_000, 1.0)
        logs = np.log(s_term)
        _, cov_exact = model_2d.terminal_log_moments(1.0)
        cov_est = np.cov(logs.T)
        assert np.allclose(cov_est, cov_exact, atol=5e-4)


class TestPaths:
    def test_shapes(self, model_2d):
        paths = model_2d.sample_paths(Philox4x32(1), 50, 1.0, 12)
        assert paths.shape == (50, 13, 2)
        assert np.allclose(paths[:, 0, :], model_2d.spots)

    def test_paths_positive(self, model_4d):
        paths = model_4d.sample_paths(Philox4x32(2), 200, 2.0, 8)
        assert np.all(paths > 0)

    def test_terminal_slice_distribution_matches_direct(self, model_1d):
        # The path terminal and the one-shot terminal sampler share the
        # exact lognormal law (different draws, same distribution).
        n = 200_000
        t_direct = model_1d.sample_terminal(Philox4x32(3), n, 1.0)[:, 0]
        t_path = model_1d.sample_paths(Philox4x32(4), n // 10, 1.0, 4)[:, -1, 0]
        assert abs(np.log(t_direct).mean() - np.log(t_path).mean()) < 0.01
        assert abs(np.log(t_direct).std() - np.log(t_path).std()) < 0.01

    def test_correlation_of_increments(self, model_2d):
        paths = model_2d.sample_paths(Philox4x32(5), 100_000, 1.0, 2)
        r1 = np.diff(np.log(paths[:, :, 0]), axis=1)
        r2 = np.diff(np.log(paths[:, :, 1]), axis=1)
        c = np.corrcoef(r1.ravel(), r2.ravel())[0, 1]
        assert abs(c - 0.4) < 0.02

    def test_normals_shape_validation(self, model_2d):
        with pytest.raises(ValidationError):
            model_2d.paths_from_normals(np.zeros((10, 3, 1)), 1.0, 3)

    def test_correlate_shape_validation(self, model_2d):
        with pytest.raises(ValidationError):
            model_2d.correlate(np.zeros((10, 3)))


class TestDeterminism:
    @given(st.integers(0, 1000))
    def test_same_seed_same_prices(self, seed):
        m = MultiAssetGBM.equicorrelated(3, 100, 0.2, 0.05, 0.2)
        a = m.sample_terminal(Philox4x32(seed), 100, 1.0)
        b = m.sample_terminal(Philox4x32(seed), 100, 1.0)
        assert np.array_equal(a, b)
