"""Argument-validation helpers."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.utils.validation import (
    check_1d_lengths,
    check_correlation_matrix,
    check_in_range,
    check_non_negative,
    check_positive,
    check_positive_int,
    check_probability,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 1.5) == 1.5

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan"), float("inf")])
    def test_rejects(self, bad):
        with pytest.raises(ValidationError, match="x"):
            check_positive("x", bad)

    def test_coerces_to_float(self):
        out = check_positive("x", np.float32(2.0))
        assert isinstance(out, float)


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative("x", 0.0) == 0.0

    @pytest.mark.parametrize("bad", [-1e-9, float("nan")])
    def test_rejects(self, bad):
        with pytest.raises(ValidationError):
            check_non_negative("x", bad)


class TestCheckProbability:
    @pytest.mark.parametrize("ok", [0.0, 0.5, 1.0])
    def test_accepts(self, ok):
        assert check_probability("p", ok) == ok

    @pytest.mark.parametrize("bad", [-0.01, 1.01, float("nan")])
    def test_rejects(self, bad):
        with pytest.raises(ValidationError):
            check_probability("p", bad)


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert check_in_range("x", 1.0, 0.0, 1.0) == 1.0

    def test_exclusive_bounds_reject_endpoint(self):
        with pytest.raises(ValidationError):
            check_in_range("x", 1.0, 0.0, 1.0, inclusive=False)

    def test_error_message_names_parameter(self):
        with pytest.raises(ValidationError, match="rho"):
            check_in_range("rho", 2.0, -1.0, 1.0)


class TestCheckPositiveInt:
    def test_accepts_numpy_integer(self):
        assert check_positive_int("n", np.int64(5)) == 5

    @pytest.mark.parametrize("bad", [0, -3, 1.5, True, "7"])
    def test_rejects(self, bad):
        with pytest.raises(ValidationError):
            check_positive_int("n", bad)


class TestCorrelationMatrix:
    def test_accepts_identity(self):
        out = check_correlation_matrix("c", np.eye(3))
        assert out.shape == (3, 3)

    def test_rejects_nonsquare(self):
        with pytest.raises(ValidationError, match="square"):
            check_correlation_matrix("c", np.ones((2, 3)))

    def test_rejects_asymmetric(self):
        m = np.array([[1.0, 0.5], [0.2, 1.0]])
        with pytest.raises(ValidationError, match="symmetric"):
            check_correlation_matrix("c", m)

    def test_rejects_bad_diagonal(self):
        m = np.array([[2.0, 0.0], [0.0, 1.0]])
        with pytest.raises(ValidationError, match="diagonal"):
            check_correlation_matrix("c", m)

    def test_rejects_out_of_range_entries(self):
        m = np.array([[1.0, 1.2], [1.2, 1.0]])
        with pytest.raises(ValidationError):
            check_correlation_matrix("c", m)

    def test_rejects_indefinite(self):
        # rho_12 = rho_13 = 0.9, rho_23 = -0.9 is not PSD.
        m = np.array([[1.0, 0.9, 0.9], [0.9, 1.0, -0.9], [0.9, -0.9, 1.0]])
        with pytest.raises(ValidationError, match="positive semi-definite"):
            check_correlation_matrix("c", m)

    def test_psd_check_can_be_disabled(self):
        m = np.array([[1.0, 0.9, 0.9], [0.9, 1.0, -0.9], [0.9, -0.9, 1.0]])
        out = check_correlation_matrix("c", m, require_psd=False)
        assert out.shape == (3, 3)

    @given(st.floats(min_value=-0.49, max_value=0.99))
    def test_equicorrelation_3d_psd_band(self, rho):
        m = np.full((3, 3), rho)
        np.fill_diagonal(m, 1.0)
        out = check_correlation_matrix("c", m)
        assert np.allclose(np.diag(out), 1.0)


class TestCheck1DLengths:
    def test_broadcasts_scalars(self):
        out = check_1d_lengths(3, vols=0.2)
        assert out["vols"].shape == (3,)
        assert np.allclose(out["vols"], 0.2)

    def test_rejects_wrong_length(self):
        with pytest.raises(ValidationError, match="vols"):
            check_1d_lengths(3, vols=[0.1, 0.2])

    def test_rejects_non_finite(self):
        with pytest.raises(ValidationError):
            check_1d_lengths(2, spots=[1.0, float("nan")])

    def test_multiple_arrays(self):
        out = check_1d_lengths(2, a=[1, 2], b=3.0)
        assert set(out) == {"a", "b"}
