"""Simulated cluster: clock semantics, collectives vs analytic costs."""

import math

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.parallel import (
    MachineSpec,
    SimulatedCluster,
    allreduce_time,
    alltoall_time,
    bcast_time,
    linear_reduce_time,
    tree_reduce_time,
)
from repro.parallel.collectives import barrier_time, halo_exchange_time


class TestMachineSpec:
    def test_message_time(self):
        spec = MachineSpec(flop_time=1e-8, alpha=1e-5, beta=1e-9)
        assert spec.message_time(1000) == pytest.approx(1e-5 + 1e-6)

    def test_validation(self):
        with pytest.raises(ValidationError):
            MachineSpec(flop_time=0.0)
        with pytest.raises(ValidationError):
            MachineSpec(alpha=-1.0)
        with pytest.raises(ValidationError):
            MachineSpec().message_time(-5)


class TestCompute:
    def test_clock_advances(self):
        c = SimulatedCluster(2, MachineSpec(flop_time=1e-6))
        c.compute(0, 1000)
        assert c.clocks[0] == pytest.approx(1e-3)
        assert c.clocks[1] == 0.0
        assert c.elapsed() == pytest.approx(1e-3)

    def test_compute_all(self):
        c = SimulatedCluster(3, MachineSpec(flop_time=1e-6))
        c.compute_all([100, 200, 300])
        assert c.elapsed() == pytest.approx(3e-4)
        assert c.compute_time == pytest.approx(3e-4)

    def test_negative_work_rejected(self):
        with pytest.raises(ValidationError):
            SimulatedCluster(1).compute(0, -1)

    def test_rank_bounds(self):
        with pytest.raises(ValidationError):
            SimulatedCluster(2).compute(2, 1)


class TestSend:
    def test_rendezvous_synchronizes_pair(self):
        spec = MachineSpec(flop_time=1e-6, alpha=1e-5, beta=1e-9)
        c = SimulatedCluster(2, spec)
        c.compute(0, 100)  # rank 0 at 1e-4, rank 1 at 0
        c.send(0, 1, 800)
        expected = 1e-4 + spec.message_time(800)
        assert c.clocks[0] == pytest.approx(expected)
        assert c.clocks[1] == pytest.approx(expected)
        assert c.messages == 1
        assert c.bytes_moved == 800

    def test_idle_accounted_to_early_rank(self):
        c = SimulatedCluster(2, MachineSpec(flop_time=1e-6))
        c.compute(0, 1000)
        c.send(0, 1, 8)
        assert c.accounts[1].idle == pytest.approx(1e-3)
        assert c.accounts[0].idle == 0.0

    def test_self_send_free(self):
        c = SimulatedCluster(2)
        c.send(1, 1, 1000)
        assert c.elapsed() == 0.0
        assert c.messages == 0


class TestCollectivesMatchAnalyticModels:
    """The event-driven simulation and the closed-form cost models must
    agree when ranks start synchronized — the consistency contract between
    the two layers of the performance model."""

    @pytest.mark.parametrize("p", [1, 2, 3, 4, 7, 8, 16, 33])
    def test_tree_reduce(self, p):
        spec = MachineSpec()
        c = SimulatedCluster(p, spec)
        c.reduce(24, root=0, topology="tree")
        assert c.elapsed() == pytest.approx(tree_reduce_time(p, 24, spec), rel=1e-12)

    @pytest.mark.parametrize("p", [1, 2, 5, 16])
    def test_linear_reduce(self, p):
        spec = MachineSpec()
        c = SimulatedCluster(p, spec)
        c.reduce(24, root=0, topology="linear")
        assert c.elapsed() == pytest.approx(linear_reduce_time(p, 24, spec), rel=1e-12)

    @pytest.mark.parametrize("p", [1, 2, 4, 9, 32])
    def test_bcast(self, p):
        spec = MachineSpec()
        c = SimulatedCluster(p, spec)
        c.bcast(64, root=0)
        assert c.elapsed() == pytest.approx(bcast_time(p, 64, spec), rel=1e-12)

    @pytest.mark.parametrize("p", [2, 8])
    def test_allreduce(self, p):
        spec = MachineSpec()
        c = SimulatedCluster(p, spec)
        c.allreduce(24)
        assert c.elapsed() == pytest.approx(allreduce_time(p, 24, spec), rel=1e-12)

    @pytest.mark.parametrize("p", [1, 2, 6, 16])
    def test_alltoall(self, p):
        spec = MachineSpec()
        c = SimulatedCluster(p, spec)
        c.alltoall(1000)
        assert c.elapsed() == pytest.approx(alltoall_time(p, 1000, spec), rel=1e-12)

    @pytest.mark.parametrize("p", [1, 2, 8, 17])
    def test_barrier(self, p):
        spec = MachineSpec()
        c = SimulatedCluster(p, spec)
        c.barrier()
        assert c.elapsed() == pytest.approx(barrier_time(p, spec), rel=1e-12)

    @pytest.mark.parametrize("p", [1, 2, 8])
    def test_halo(self, p):
        spec = MachineSpec()
        c = SimulatedCluster(p, spec)
        c.halo_exchange(512)
        assert c.elapsed() == pytest.approx(halo_exchange_time(p, 512, spec), rel=1e-12)


class TestTopologyComparison:
    def test_tree_beats_linear_at_scale(self):
        spec = MachineSpec()
        assert tree_reduce_time(32, 24, spec) < linear_reduce_time(32, 24, spec)
        # log₂ 32 = 5 rounds vs 31 messages.
        ratio = linear_reduce_time(32, 24, spec) / tree_reduce_time(32, 24, spec)
        assert ratio == pytest.approx(31 / 5, rel=1e-9)

    def test_equal_at_two_ranks(self):
        spec = MachineSpec()
        assert tree_reduce_time(2, 8, spec) == linear_reduce_time(2, 8, spec)


class TestRootRelabeling:
    def test_reduce_to_nonzero_root(self):
        spec = MachineSpec()
        c = SimulatedCluster(4, spec)
        c.compute(2, 500)
        c.reduce(24, root=2, topology="tree")
        # Root 2's clock is the reduce finish time.
        assert c.clocks[2] == c.elapsed()

    def test_invalid_topology(self):
        with pytest.raises(ValidationError):
            SimulatedCluster(2).reduce(8, topology="ring")


class TestReport:
    def test_report_fields(self):
        c = SimulatedCluster(2)
        c.compute(0, 100)
        c.reduce(24)
        rep = c.report()
        assert set(rep) == {
            "p", "elapsed", "compute_time", "comm_time", "idle_time",
            "fault_time", "messages", "bytes_moved", "ranks",
        }
        assert rep["elapsed"] >= rep["compute_time"]
        assert rep["fault_time"] == 0.0  # no fault plan attached

    def test_per_rank_breakdown(self):
        c = SimulatedCluster(2)
        c.compute(0, 100)
        c.reduce(24)
        rep = c.report()
        ranks = rep["ranks"]
        assert len(ranks) == 2
        assert all(set(r) == {"compute", "comm", "idle", "fault"}
                   for r in ranks)
        # Only rank 0 computed; rank 1 idled waiting for it in the reduce.
        assert ranks[0]["compute"] > 0.0
        assert ranks[1]["compute"] == 0.0
        assert ranks[1]["idle"] > 0.0
        # The aggregate fields are the per-rank maxima of these accounts.
        for key, total in (("compute", "compute_time"), ("comm", "comm_time"),
                           ("idle", "idle_time"), ("fault", "fault_time")):
            assert max(r[key] for r in ranks) == pytest.approx(rep[total])

    def test_single_rank_never_communicates(self):
        c = SimulatedCluster(1)
        c.compute(0, 1000)
        c.barrier()
        c.reduce(24)
        c.bcast(24)
        c.alltoall(100)
        c.halo_exchange(8)
        assert c.comm_time == 0.0
        assert c.messages == 0


class TestFaultsOnCluster:
    """Fault-plan consumption: straggler stretch, the fault account."""

    def test_straggler_stretches_compute(self):
        from repro.parallel import FaultEvent, FaultKind, FaultPlan

        plan = FaultPlan(events=(FaultEvent(1, FaultKind.STRAGGLER, slowdown=2.5),))
        base = SimulatedCluster(2)
        slow = SimulatedCluster(2, faults=plan)
        for c in (base, slow):
            c.compute(0, 1000)
            c.compute(1, 1000)
        assert slow.clocks[0] == base.clocks[0]
        assert slow.clocks[1] == pytest.approx(2.5 * base.clocks[1])
        assert slow.elapsed() > base.elapsed()

    def test_empty_plan_is_free(self):
        from repro.parallel import FaultPlan

        base = SimulatedCluster(2)
        with_plan = SimulatedCluster(2, faults=FaultPlan.none())
        for c in (base, with_plan):
            c.compute(0, 500)
            c.reduce(24)
        assert with_plan.elapsed() == base.elapsed()
        assert with_plan.report() == base.report()

    def test_fault_delay_kind_accounted(self):
        c = SimulatedCluster(2, record=True)
        c.delay(0, 0.25, kind="fault")
        assert c.fault_time == 0.25
        assert c.report()["fault_time"] == 0.25
        assert (0, 0.0, 0.25, "fault") in c.trace
        # elapsed advances with the faulted rank's clock
        assert c.elapsed() == 0.25
