"""ASCII Gantt rendering of cluster traces."""

import pytest

from repro.errors import ValidationError
from repro.parallel import MachineSpec, SimulatedCluster
from repro.perf import render_gantt


class TestTraceRecording:
    def test_disabled_by_default(self):
        c = SimulatedCluster(2)
        c.compute(0, 100)
        assert c.trace == []

    def test_compute_event_recorded(self):
        c = SimulatedCluster(2, record=True)
        c.compute(1, 1000)
        assert c.trace == [(1, 0.0, pytest.approx(1e-5), "compute")]

    def test_send_records_idle_and_comm(self):
        c = SimulatedCluster(2, MachineSpec(flop_time=1e-6), record=True)
        c.compute(0, 1000)  # rank 0 busy until 1e-3
        c.send(0, 1, 8)
        kinds = [(r, k) for r, _, _, k in c.trace]
        assert (1, "idle") in kinds  # rank 1 waited for rank 0
        assert (0, "comm") in kinds and (1, "comm") in kinds

    def test_trace_times_consistent_with_clocks(self):
        c = SimulatedCluster(4, record=True)
        c.compute_all([100, 200, 300, 400])
        c.reduce(24)
        c.barrier()
        for rank, t0, t1, _ in c.trace:
            assert 0.0 <= t0 < t1 <= c.elapsed() + 1e-15


class TestRendering:
    def test_row_per_rank_and_legend(self):
        c = SimulatedCluster(3, record=True)
        c.compute_all([500, 500, 500])
        out = render_gantt(c, width=40)
        lines = out.splitlines()
        assert len(lines) == 5  # 3 ranks + scale + legend
        assert all(line.startswith("rank") for line in lines[:3])
        assert "# compute" in lines[-1]

    def test_compute_renders_as_hash(self):
        c = SimulatedCluster(1, record=True)
        c.compute(0, 1000)
        out = render_gantt(c, width=10, show_scale=False)
        assert "##########" in out

    def test_mixed_activities_visible(self):
        c = SimulatedCluster(2, MachineSpec(flop_time=1e-6, alpha=1e-3),
                             record=True)
        c.compute(0, 1000)  # 1 ms compute
        c.send(0, 1, 8)     # ≥1 ms comm
        out = render_gantt(c, width=20, show_scale=False)
        row0 = out.splitlines()[0]
        assert "#" in row0 and "~" in row0
        row1 = out.splitlines()[1]
        assert "." in row1  # rank 1 idled while rank 0 computed

    def test_requires_recording(self):
        c = SimulatedCluster(2)
        with pytest.raises(ValidationError, match="record=True"):
            render_gantt(c)

    def test_empty_trace_renders_blank(self):
        c = SimulatedCluster(2, record=True)
        out = render_gantt(c, width=8)
        assert "|        |" in out

    def test_width_validated(self):
        c = SimulatedCluster(1, record=True)
        with pytest.raises(ValidationError):
            render_gantt(c, width=0)


class TestEngineSignatures:
    def test_mc_is_compute_dominated(self):
        from repro.core import ParallelMCPricer
        from repro.workloads import basket_workload

        w = basket_workload(4)
        r = ParallelMCPricer(100_000, seed=1, record=True).price(
            w.model, w.payoff, w.expiry, 4
        )
        out = render_gantt(r.meta["cluster"], width=60, show_scale=False)
        assert out.count("#") > 0.9 * out.count("#") + out.count("~")  # mostly #
        assert out.count("#") >= 200  # 4 rows × ≥50 compute columns

    def test_pde_alternates_compute_and_comm(self):
        from repro.core import ParallelPDEPricer
        from repro.workloads import spread_workload

        w = spread_workload()
        r = ParallelPDEPricer(n_space=64, n_time=6, record=True).price(
            w.model, w.payoff, w.expiry, 4
        )
        out = render_gantt(r.meta["cluster"], width=60, show_scale=False)
        row0 = out.splitlines()[0]
        # Both phases visible, multiple alternations.
        assert row0.count("#") > 5 and row0.count("~") > 5
        transitions = sum(
            1 for a, b in zip(row0, row0[1:]) if a == "#" and b == "~"
        )
        assert transitions >= 3
