"""Monte Carlo Greeks against the analytic BSM sensitivities."""

import numpy as np
import pytest

from repro.analytic import bs_greeks
from repro.errors import ValidationError
from repro.market import MultiAssetGBM
from repro.mc import mc_delta_pathwise, mc_greeks_bump
from repro.payoffs import BasketCall, BasketPut, Call, CallOnMax, Put


class TestPathwiseDelta:
    def test_call_delta(self, model_1d):
        d, se = mc_delta_pathwise(model_1d, Call(100.0), 1.0, 300_000, seed=1)
        exact = bs_greeks(100, 100, 0.2, 0.05, 1.0).delta
        assert abs(d[0] - exact) < 4 * se[0] + 1e-3

    def test_put_delta_negative(self, model_1d):
        d, se = mc_delta_pathwise(model_1d, Put(100.0), 1.0, 300_000, seed=2)
        exact = bs_greeks(100, 100, 0.2, 0.05, 1.0, option="put").delta
        assert d[0] < 0
        assert abs(d[0] - exact) < 4 * se[0] + 1e-3

    def test_basket_deltas_sum_sensibly(self, model_4d):
        w = [0.25] * 4
        d, se = mc_delta_pathwise(model_4d, BasketCall(w, 100.0), 1.0, 200_000, seed=3)
        assert d.shape == (4,)
        # Symmetric market ⇒ symmetric deltas.
        assert np.allclose(d, d.mean(), atol=4 * se.max() + 1e-3)
        assert np.all(d > 0)

    def test_basket_put_deltas_negative(self, model_4d):
        d, _ = mc_delta_pathwise(model_4d, BasketPut([0.25] * 4, 100.0), 1.0,
                                 100_000, seed=4)
        assert np.all(d < 0)

    def test_unsupported_payoff_raises(self, model_2d):
        with pytest.raises(ValidationError, match="pathwise"):
            mc_delta_pathwise(model_2d, CallOnMax(100.0), 1.0, 1000)


class TestBumpGreeks:
    def test_matches_analytic_for_call(self, model_1d):
        g = mc_greeks_bump(model_1d, Call(100.0), 1.0, 150_000, seed=5)
        exact = bs_greeks(100, 100, 0.2, 0.05, 1.0)
        assert g.delta[0] == pytest.approx(exact.delta, abs=0.01)
        assert g.gamma[0] == pytest.approx(exact.gamma, abs=0.004)
        assert g.vega[0] == pytest.approx(exact.vega, rel=0.05)

    def test_common_random_numbers_make_differences_smooth(self, model_1d):
        # With CRN the bump estimator is far tighter than the naive
        # independent-samples version would be; delta noise under repeated
        # seeds stays tiny.
        deltas = [
            mc_greeks_bump(model_1d, Call(100.0), 1.0, 30_000, seed=s).delta[0]
            for s in (1, 2, 3)
        ]
        assert np.std(deltas) < 0.01

    def test_multi_asset_shapes(self, model_4d):
        g = mc_greeks_bump(model_4d, BasketCall([0.25] * 4, 100.0), 1.0, 40_000, seed=6)
        assert g.delta.shape == (4,)
        assert g.gamma.shape == (4,)
        assert g.vega.shape == (4,)

    def test_symmetric_market_symmetric_greeks(self, model_4d):
        g = mc_greeks_bump(model_4d, BasketCall([0.25] * 4, 100.0), 1.0, 60_000, seed=7)
        assert np.allclose(g.delta, g.delta.mean(), atol=0.01)
        assert np.allclose(g.vega, g.vega.mean(), atol=0.6)

    def test_rejects_bad_bumps(self, model_1d):
        with pytest.raises(ValidationError):
            mc_greeks_bump(model_1d, Call(100.0), 1.0, 1000, rel_bump=0.0)

    def test_pathwise_and_bump_agree(self, model_4d):
        payoff = BasketCall([0.25] * 4, 100.0)
        pw, se = mc_delta_pathwise(model_4d, payoff, 1.0, 200_000, seed=8)
        bump = mc_greeks_bump(model_4d, payoff, 1.0, 100_000, seed=8)
        assert np.allclose(pw, bump.delta, atol=0.02)
