"""Data-carrying collectives: values follow the costed message schedule."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.mc import SampleStats
from repro.parallel import MachineSpec, SimulatedCluster


class TestReduceData:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 7, 16])
    @pytest.mark.parametrize("topology", ["tree", "linear"])
    def test_integer_sum_any_p(self, p, topology):
        c = SimulatedCluster(p)
        payloads = list(range(1, p + 1))
        out = c.reduce_data(payloads, lambda a, b: a + b, 8, topology=topology)
        assert out == p * (p + 1) // 2

    def test_costs_match_cost_only_reduce(self):
        spec = MachineSpec()
        for topology in ("tree", "linear"):
            a = SimulatedCluster(8, spec)
            a.reduce(24, topology=topology)
            b = SimulatedCluster(8, spec)
            b.reduce_data([0] * 8, lambda x, y: x + y, 24, topology=topology)
            assert b.elapsed() == pytest.approx(a.elapsed(), rel=1e-12)
            assert b.messages == a.messages

    def test_sample_stats_merge_through_tree(self):
        rng = np.random.default_rng(0)
        parts = [SampleStats.from_values(rng.normal(size=100)) for _ in range(6)]
        c = SimulatedCluster(6)
        merged = c.reduce_data(parts, lambda a, b: a.merge(b), 24)
        whole = SampleStats()
        for pstat in parts:
            whole = whole.merge(pstat)
        assert merged.n == whole.n
        assert merged.total == pytest.approx(whole.total, rel=1e-12)

    def test_nonzero_root(self):
        c = SimulatedCluster(5)
        out = c.reduce_data([1, 2, 3, 4, 5], lambda a, b: a + b, 8, root=3)
        assert out == 15
        assert c.clocks[3] == c.elapsed()

    def test_noncommutative_combine_order_is_deterministic(self):
        # String concatenation exposes the combination order; rerunning
        # produces the identical result.
        c1 = SimulatedCluster(4)
        c2 = SimulatedCluster(4)
        payloads = ["a", "b", "c", "d"]
        out1 = c1.reduce_data(list(payloads), lambda a, b: a + b, 8)
        out2 = c2.reduce_data(list(payloads), lambda a, b: a + b, 8)
        assert out1 == out2
        assert sorted(out1) == payloads  # every element exactly once

    def test_payload_count_validated(self):
        with pytest.raises(ValidationError):
            SimulatedCluster(3).reduce_data([1, 2], lambda a, b: a + b, 8)

    def test_topology_validated(self):
        with pytest.raises(ValidationError):
            SimulatedCluster(2).reduce_data([1, 2], lambda a, b: a + b, 8,
                                            topology="mesh")


class TestBcastData:
    def test_every_rank_receives_value(self):
        c = SimulatedCluster(4)
        out = c.bcast_data({"x": 1}, 16)
        assert len(out) == 4
        assert all(v == {"x": 1} for v in out)

    def test_costs_match_bcast(self):
        spec = MachineSpec()
        a = SimulatedCluster(8, spec)
        a.bcast(16)
        b = SimulatedCluster(8, spec)
        b.bcast_data(0, 16)
        assert b.elapsed() == pytest.approx(a.elapsed(), rel=1e-12)


class TestDelay:
    def test_advances_one_clock(self):
        c = SimulatedCluster(3)
        c.delay(1, 0.5)
        assert c.clocks[1] == pytest.approx(0.5)
        assert c.clocks[0] == 0.0
        assert c.comm_time == pytest.approx(0.5)

    def test_account_kinds(self):
        c = SimulatedCluster(1)
        c.delay(0, 0.1, kind="compute")
        assert c.compute_time == pytest.approx(0.1)
        with pytest.raises(ValidationError):
            c.delay(0, 0.1, kind="gpu")

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            SimulatedCluster(1).delay(0, -1.0)


class TestReductionPermutationInvariance:
    """Reduction results must not depend on which rank holds which shard —
    the property that lets the resilience layer re-map work after faults
    without changing the answer."""

    @pytest.mark.parametrize("p", range(1, 17))
    @pytest.mark.parametrize("topology", ["tree", "linear"])
    def test_integer_sum_invariant_under_rank_permutation(self, p, topology):
        rng = np.random.default_rng(p)
        payloads = rng.integers(-1000, 1000, size=p).tolist()
        base = SimulatedCluster(p).reduce_data(
            list(payloads), lambda a, b: a + b, 8, topology=topology)
        for _ in range(3):
            perm = rng.permutation(p)
            shuffled = [payloads[i] for i in perm]
            out = SimulatedCluster(p).reduce_data(
                shuffled, lambda a, b: a + b, 8, topology=topology)
            assert out == base  # exact: integer addition is associative

    @pytest.mark.parametrize("p", range(2, 17, 3))
    def test_sample_stats_invariant_under_rank_permutation(self, p):
        rng = np.random.default_rng(p)
        parts = [SampleStats.from_values(rng.normal(size=50 + r))
                 for r in range(p)]
        base = SimulatedCluster(p).reduce_data(
            list(parts), lambda a, b: a.merge(b), 24)
        perm = rng.permutation(p)
        out = SimulatedCluster(p).reduce_data(
            [parts[i] for i in perm], lambda a, b: a.merge(b), 24)
        # float merge order differs ⇒ approximate, but tight
        assert out.n == base.n
        assert out.total == pytest.approx(base.total, rel=1e-12)
        assert out.mean == pytest.approx(base.mean, rel=1e-12)
        assert out.variance == pytest.approx(base.variance, rel=1e-9)

    @pytest.mark.parametrize("p", range(1, 17))
    def test_tree_and_linear_topologies_agree_exactly_on_ints(self, p):
        payloads = list(range(p))
        tree = SimulatedCluster(p).reduce_data(
            list(payloads), lambda a, b: a + b, 8, topology="tree")
        linear = SimulatedCluster(p).reduce_data(
            list(payloads), lambda a, b: a + b, 8, topology="linear")
        assert tree == linear == p * (p - 1) // 2
