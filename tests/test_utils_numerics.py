"""Numerical kernels: normal functions, Thomas solver, PSD repair."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import ValidationError
from repro.utils.numerics import (
    geometric_mean,
    nearest_psd,
    norm_cdf,
    norm_pdf,
    norm_ppf,
    norm_ppf_reference,
    relative_error,
    rmse,
    solve_tridiagonal,
)


class TestNormalFunctions:
    def test_cdf_known_values(self):
        assert norm_cdf(0.0) == pytest.approx(0.5)
        assert norm_cdf(1.959963984540054) == pytest.approx(0.975, abs=1e-9)
        assert norm_cdf(-8.0) == pytest.approx(0.0, abs=1e-14)

    def test_pdf_peak_and_symmetry(self):
        assert norm_pdf(0.0) == pytest.approx(1.0 / math.sqrt(2 * math.pi))
        x = np.linspace(-3, 3, 13)
        assert np.allclose(norm_pdf(x), norm_pdf(-x))

    def test_ppf_inverts_cdf(self):
        for p in (0.001, 0.1, 0.5, 0.9, 0.999):
            assert norm_cdf(norm_ppf(p)) == pytest.approx(p, abs=1e-12)

    def test_ppf_reference_matches_production(self):
        # The self-contained BSM/Acklam oracle vs the scipy fast path.
        p = np.concatenate([
            np.linspace(1e-10, 1e-3, 20),
            np.linspace(0.01, 0.99, 99),
            1.0 - np.linspace(1e-10, 1e-3, 20),
        ])
        # Bulk agreement is ~1e-15; the extreme upper tail (p → 1) loses a
        # few digits to 1−p cancellation in the Halley refinement.
        assert np.allclose(norm_ppf(p), norm_ppf_reference(p), atol=1e-8, rtol=0)
        bulk = (p > 1e-4) & (p < 1.0 - 1e-4)
        assert np.allclose(norm_ppf(p[bulk]), norm_ppf_reference(p[bulk]), atol=1e-12, rtol=0)

    def test_ppf_tails(self):
        assert norm_ppf(0.0) == -math.inf
        assert norm_ppf(1.0) == math.inf

    def test_ppf_rejects_outside_unit_interval(self):
        with pytest.raises(ValidationError):
            norm_ppf(1.5)
        with pytest.raises(ValidationError):
            norm_ppf(-0.1)

    @given(st.floats(min_value=1e-9, max_value=1 - 1e-9))
    def test_ppf_monotone_and_consistent(self, p):
        x = norm_ppf(p)
        assert norm_cdf(x) == pytest.approx(p, abs=1e-9)


class TestTridiagonal:
    def _random_system(self, n, seed):
        rng = np.random.default_rng(seed)
        lower = rng.normal(size=n)
        upper = rng.normal(size=n)
        # Diagonal dominance guarantees a stable factorization.
        diag = np.abs(lower) + np.abs(upper) + 1.0 + rng.random(n)
        rhs = rng.normal(size=n)
        return lower, diag, upper, rhs

    @pytest.mark.parametrize("n", [1, 2, 3, 10, 200])
    def test_matches_dense_solve(self, n):
        lower, diag, upper, rhs = self._random_system(n, seed=n)
        x = solve_tridiagonal(lower, diag, upper, rhs)
        dense = np.diag(diag)
        for i in range(1, n):
            dense[i, i - 1] = lower[i]
            dense[i - 1, i] = upper[i - 1]
        assert np.allclose(dense @ x, rhs, atol=1e-9)

    def test_multiple_rhs(self):
        lower, diag, upper, _ = self._random_system(50, seed=7)
        rng = np.random.default_rng(1)
        rhs = rng.normal(size=(50, 4))
        x = solve_tridiagonal(lower, diag, upper, rhs)
        for k in range(4):
            xk = solve_tridiagonal(lower, diag, upper, rhs[:, k])
            assert np.allclose(x[:, k], xk)

    def test_identity_system(self):
        n = 5
        rhs = np.arange(1.0, n + 1)
        x = solve_tridiagonal(np.zeros(n), np.ones(n), np.zeros(n), rhs)
        assert np.allclose(x, rhs)

    def test_rejects_zero_diagonal(self):
        with pytest.raises(ValidationError):
            solve_tridiagonal([0, 1], [1, 0], [1, 0], [1, 1])

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ValidationError):
            solve_tridiagonal([0.0], [1.0, 1.0], [0.0, 0.0], [1.0, 1.0])

    def test_empty_system(self):
        out = solve_tridiagonal([], [], [], [])
        assert out.size == 0

    @given(
        hnp.arrays(np.float64, st.integers(2, 30),
                   elements=st.floats(-2, 2, allow_nan=False)),
    )
    def test_solution_residual_property(self, lower):
        n = lower.shape[0]
        rng = np.random.default_rng(42)
        upper = rng.normal(size=n)
        diag = np.abs(lower) + np.abs(upper) + 1.5
        rhs = rng.normal(size=n)
        x = solve_tridiagonal(lower, diag, upper, rhs)
        resid = diag * x
        resid[1:] += lower[1:] * x[:-1]
        resid[:-1] += upper[:-1] * x[1:]
        assert np.allclose(resid, rhs, atol=1e-8)


class TestNearestPsd:
    def test_already_psd_unchanged(self):
        m = np.array([[1.0, 0.5], [0.5, 1.0]])
        out = nearest_psd(m)
        assert np.allclose(out, m, atol=1e-12)

    def test_repairs_indefinite(self):
        m = np.array([[1.0, 0.9, 0.9], [0.9, 1.0, -0.9], [0.9, -0.9, 1.0]])
        out = nearest_psd(m)
        assert np.linalg.eigvalsh(out).min() >= -1e-10
        assert np.allclose(np.diag(out), 1.0)
        assert np.allclose(out, out.T)

    def test_rejects_nonsquare(self):
        with pytest.raises(ValidationError):
            nearest_psd(np.ones((2, 3)))

    @given(st.integers(2, 6), st.integers(0, 1000))
    def test_output_always_psd_correlation(self, dim, seed):
        rng = np.random.default_rng(seed)
        raw = rng.uniform(-1, 1, size=(dim, dim))
        sym = 0.5 * (raw + raw.T)
        np.fill_diagonal(sym, 1.0)
        out = nearest_psd(sym)
        assert np.linalg.eigvalsh(out).min() >= -1e-9
        assert np.allclose(np.diag(out), 1.0)
        assert np.all(np.abs(out) <= 1.0 + 1e-9)


class TestSmallMetrics:
    def test_relative_error(self):
        assert relative_error(101.0, 100.0) == pytest.approx(0.01)
        assert relative_error(0.0, 0.0) == 0.0

    def test_rmse(self):
        assert rmse([1.0, 2.0], [1.0, 4.0]) == pytest.approx(math.sqrt(2.0))

    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ValidationError):
            geometric_mean([1.0, 0.0])

    def test_geometric_mean_rejects_empty(self):
        with pytest.raises(ValidationError):
            geometric_mean([])
