"""Sampling profiler: collapsed stacks, label attribution, lifecycle."""

import sys
import time

import pytest

from repro.errors import ValidationError
from repro.obs import SamplingProfiler, collapse_frames


def _burn(seconds: float) -> None:
    t0 = time.perf_counter()
    while time.perf_counter() - t0 < seconds:
        sum(i * i for i in range(64))


class TestCollapse:
    def test_root_to_leaf_order(self):
        def inner():
            return collapse_frames(sys._getframe())

        def outer():
            return inner()

        stack = outer()
        parts = stack.split(";")
        assert parts[-1].endswith(":inner")
        assert parts[-2].endswith(":outer")
        assert all(";" not in p for p in parts)

    def test_depth_truncation_keeps_leaves(self):
        def recurse(n):
            if n == 0:
                return collapse_frames(sys._getframe())
            return recurse(n - 1)

        stack = recurse(200)
        parts = stack.split(";")
        assert len(parts) == 64
        assert parts[-1].endswith(":recurse")  # leaf end survives


class TestLabels:
    def test_record_prefixes_active_label(self):
        prof = SamplingProfiler()
        prof._record("m:f")
        with prof.profile("stage"):
            prof._record("m:f")
            with prof.profile("sub"):
                prof._record("m:f")
        prof.stop()
        assert prof.samples == {"m:f": 1, "stage;m:f": 1,
                                "stage;sub;m:f": 1}
        assert prof.n_samples == 3

    def test_empty_label_rejected(self):
        with pytest.raises(ValidationError):
            with SamplingProfiler().profile(""):
                pass

    def test_profile_autostarts_and_label_restored(self):
        prof = SamplingProfiler(0.001)
        assert not prof.running
        with prof.profile("hot"):
            assert prof.running
            _burn(0.05)
        assert prof._label is None
        prof.stop()
        assert not prof.running
        labeled = sum(c for s, c in prof.samples.items()
                      if s.startswith("hot;"))
        assert labeled > 0


class TestExport:
    def test_collapsed_format_and_ordering(self):
        prof = SamplingProfiler()
        prof._record("a:x")
        prof._record("a:x")
        prof._record("b:y")
        text = prof.collapsed()
        assert text.splitlines() == ["a:x 2", "b:y 1"]
        assert prof.top(1) == [("a:x", 2)]
        prof.clear()
        assert prof.collapsed() == "" and prof.n_samples == 0

    def test_write_collapsed(self, tmp_path):
        prof = SamplingProfiler()
        prof._record("a:x")
        path = prof.write_collapsed(tmp_path / "out.collapsed")
        assert path.read_text() == "a:x 1\n"

    def test_interval_validation(self):
        with pytest.raises(ValidationError):
            SamplingProfiler(0.0)


class TestLifecycle:
    def test_start_stop_idempotent_and_context_manager(self):
        prof = SamplingProfiler(0.001)
        prof.start()
        thread = prof._thread
        assert prof.start()._thread is thread  # second start is a no-op
        prof.stop()
        prof.stop()
        with SamplingProfiler(0.001) as p2:
            _burn(0.02)
        assert not p2.running
        assert p2.n_samples >= 0  # sampling is best-effort under the GIL

    def test_runner_attachment_labels_execute_stage(self):
        from repro.core import ParallelMCPricer
        from repro.workloads import basket_workload

        w = basket_workload(2)
        pricer = ParallelMCPricer(60_000, seed=1)
        prof = SamplingProfiler(0.001)
        pricer.profiler = prof
        for _ in range(3):
            pricer.price(w.model, w.payoff, w.expiry, 4)
        prof.stop()
        assert prof.n_samples > 0
        labeled = [s for s in prof.samples if s.startswith("mc.execute;")]
        assert labeled, f"no mc.execute-labeled stacks in {prof.samples}"
