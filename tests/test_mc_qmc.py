"""Randomized QMC: Brownian bridge correctness, convergence advantage."""

import math

import numpy as np
import pytest

from repro.analytic import bs_price, geometric_asian_price, geometric_basket_price
from repro.errors import ValidationError
from repro.market import MultiAssetGBM
from repro.mc import MonteCarloEngine, PlainMC, QMCSobol
from repro.mc.qmc import BrownianBridge
from repro.payoffs import AsianGeometricCall, BasketCall, Call, GeometricBasketCall
from repro.rng import Philox4x32


class TestBrownianBridge:
    def test_increment_covariance_is_brownian(self):
        # Bridge-built increments must be iid N(0, Δt) with zero cross-cov.
        m, n = 8, 60_000
        bb = BrownianBridge(m)
        rng = np.random.default_rng(0)
        z = rng.normal(size=(n, m))
        incr = bb.build(z, horizon=2.0)
        dt = 2.0 / m
        cov = np.cov(incr.T)
        assert np.allclose(np.diag(cov), dt, rtol=0.05)
        off = cov[~np.eye(m, dtype=bool)]
        assert np.max(np.abs(off)) < 0.05 * dt * 5

    def test_terminal_value_driven_by_first_coordinate(self):
        # Coordinate 0 fixes W(T): with all other z zero, W(T) = √T·z₀.
        m = 8
        bb = BrownianBridge(m)
        z = np.zeros((1, m))
        z[0, 0] = 1.5
        incr = bb.build(z, horizon=4.0)
        assert incr.sum() == pytest.approx(1.5 * 2.0, abs=1e-12)

    def test_single_step(self):
        bb = BrownianBridge(1)
        incr = bb.build(np.array([[2.0]]), horizon=1.0)
        assert incr[0, 0] == pytest.approx(2.0)

    def test_wrong_width_rejected(self):
        with pytest.raises(ValidationError):
            BrownianBridge(4).build(np.zeros((3, 5)), 1.0)


class TestQMCAccuracy:
    def test_terminal_payoff_much_tighter_than_mc(self, model_1d):
        exact = bs_price(100, 100, 0.2, 0.05, 1.0)
        n = 32_768
        plain = MonteCarloEngine(n, technique=PlainMC(), seed=1).price(
            model_1d, Call(100.0), 1.0
        )
        qmc = MonteCarloEngine(n, technique=QMCSobol(8), seed=1).price(
            model_1d, Call(100.0), 1.0
        )
        assert abs(qmc.price - exact) < abs(plain.price - exact) + 3 * plain.stderr
        assert qmc.stderr < 0.15 * plain.stderr
        assert abs(qmc.price - exact) < 6 * qmc.stderr + 1e-3

    def test_multiasset_basket(self, model_4d):
        w = [0.25] * 4
        exact = geometric_basket_price(model_4d, w, 100.0, 1.0)
        r = MonteCarloEngine(32_768, technique=QMCSobol(8)).price(
            model_4d, GeometricBasketCall(w, 100.0), 1.0
        )
        assert abs(r.price - exact) < max(6 * r.stderr, 5e-3)

    def test_path_dependent_with_bridge(self, model_1d):
        exact = geometric_asian_price(100, 100, 0.2, 0.05, 1.0, 12)
        r = MonteCarloEngine(16_384, steps=12, technique=QMCSobol(8)).price(
            model_1d, AsianGeometricCall(100.0), 1.0
        )
        assert abs(r.price - exact) < max(6 * r.stderr, 5e-3)

    def test_bridge_beats_no_bridge_in_high_dim(self, model_1d):
        # 64 monitoring dates blow past the Sobol table; the bridge keeps
        # the important coordinates quasi-random, so it should not be worse.
        exact = geometric_asian_price(100, 100, 0.2, 0.05, 1.0, 64)
        with_bridge = MonteCarloEngine(8192, steps=64,
                                       technique=QMCSobol(8, bridge=True)).price(
            model_1d, AsianGeometricCall(100.0), 1.0
        )
        without = MonteCarloEngine(8192, steps=64,
                                   technique=QMCSobol(8, bridge=False)).price(
            model_1d, AsianGeometricCall(100.0), 1.0
        )
        assert abs(with_bridge.price - exact) <= abs(without.price - exact) + 3 * without.stderr

    def test_convergence_rate_faster_than_half(self, model_1d):
        # Fit error ≈ C·N^{-q}: q should comfortably exceed the MC 0.5.
        exact = bs_price(100, 100, 0.2, 0.05, 1.0)
        ns = [1024, 4096, 16384, 65536]
        errs = []
        for n in ns:
            r = MonteCarloEngine(n, technique=QMCSobol(8, seed=5)).price(
                model_1d, Call(100.0), 1.0
            )
            errs.append(max(abs(r.price - exact), 1e-12))
        slope = np.polyfit(np.log(ns), np.log(errs), 1)[0]
        assert slope < -0.6, f"QMC slope {slope} not better than MC's -0.5"


class TestQMCContracts:
    def test_deterministic(self, model_1d):
        a = MonteCarloEngine(8192, technique=QMCSobol(8, seed=3)).price(
            model_1d, Call(100.0), 1.0
        )
        b = MonteCarloEngine(8192, technique=QMCSobol(8, seed=3)).price(
            model_1d, Call(100.0), 1.0
        )
        assert a.price == b.price

    def test_skip_partitioning_is_exact(self, model_1d):
        # partial(skip=k) must tile the same point set as one big partial.
        tech = QMCSobol(4, seed=9)
        whole = tech.partial(model_1d, Call(100.0), 1.0, 4096, Philox4x32(0))
        parts = [
            tech.partial(model_1d, Call(100.0), 1.0, 1024, Philox4x32(0),
                         skip=i * 256)
            for i in range(4)
        ]
        merged = tech.combine(parts)
        pw, _, nw = tech.finalize(whole)
        pm, _, nm = tech.finalize(merged)
        assert nw == nm
        assert pm == pytest.approx(pw, rel=1e-12)

    def test_replicate_divisibility_enforced(self, model_1d):
        with pytest.raises(ValidationError, match="multiple"):
            MonteCarloEngine(1001, technique=QMCSobol(8)).price(
                model_1d, Call(100.0), 1.0
            )

    def test_needs_two_replicates(self):
        with pytest.raises(ValidationError):
            QMCSobol(1)

    def test_stderr_honest(self, model_4d):
        # The replicate-spread error bar should cover the true error most
        # of the time; check a single configuration at generous z.
        w = [0.25] * 4
        exact = geometric_basket_price(model_4d, w, 100.0, 1.0)
        r = MonteCarloEngine(16_384, technique=QMCSobol(16, seed=11)).price(
            model_4d, GeometricBasketCall(w, 100.0), 1.0
        )
        assert abs(r.price - exact) < 8 * r.stderr + 1e-4
