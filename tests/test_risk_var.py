"""Properties of the sort-based VaR/ES estimators and the revaluation
sweep plumbing.

The estimator invariants here are *exact* (not statistical), because the
estimators are order statistics: ``ES ≥ VaR`` everywhere, permutation
invariance, and monotonicity of VaR both in the confidence level and
under a uniform extra down-shock of the book. The sweep tests pin the
cache hit/miss *structure* of a bumped-book revaluation — every axis
ladder leads with the identity scenario, so hits and misses split in
exactly known counts through the shared :class:`PriceCache`.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.obs.metrics import MetricsRegistry
from repro.risk.scenarios import SWEEP_AXES, Scenario, axis_sweep
from repro.risk.var import (RiskConfig, RiskReport, hedged_pnl, revalue_book,
                            run_risk, var_es)
from repro.workloads.generators import strike_strip

pnls = st.lists(st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False), min_size=1, max_size=60)
levels = st.floats(min_value=0.01, max_value=0.99, allow_nan=False)


class TestVarEsInvariants:
    @given(pnl=pnls, level=levels)
    def test_es_dominates_var(self, pnl, level):
        var, es = var_es(pnl, level)
        assert es >= var

    @given(pnl=pnls, level=levels, seed=st.integers(0, 2**31 - 1))
    def test_permutation_invariance(self, pnl, level, seed):
        shuffled = list(pnl)
        np.random.default_rng(seed).shuffle(shuffled)
        assert var_es(shuffled, level) == var_es(pnl, level)

    @given(pnl=pnls, lo=levels, hi=levels)
    def test_var_monotone_in_level(self, pnl, lo, hi):
        lo, hi = min(lo, hi), max(lo, hi)
        assert var_es(pnl, lo)[0] <= var_es(pnl, hi)[0]

    @given(pnl=pnls, level=levels,
           shock=st.floats(min_value=0.0, max_value=1e5, allow_nan=False))
    def test_var_monotone_under_uniform_down_shock(self, pnl, level, shock):
        """An extra uniform loss on every scenario can only raise VaR/ES."""
        worse = [x - shock for x in pnl]
        var, es = var_es(pnl, level)
        var_w, es_w = var_es(worse, level)
        assert var_w >= var and es_w >= es

    def test_validation(self):
        with pytest.raises(ValidationError):
            var_es([1.0], 0.0)
        with pytest.raises(ValidationError):
            var_es([1.0], 1.0)
        with pytest.raises(ValidationError):
            var_es([], 0.95)


class TestSweepMonotonicity:
    def test_down_scaled_spots_raise_var_exactly(self):
        """Scaling every scenario's spot factors down revalues each call
        book lower *pathwise* (common random numbers), so VaR and ES rise
        for every level — an exact, not statistical, comparison."""
        book = strike_strip(2, dim=2)
        base = [Scenario(label=f"s{i}", spot_factors=(f, f))
                for i, f in enumerate((1.04, 0.99, 0.95, 1.01, 0.92))]
        worse = [Scenario(label=s.label,
                          spot_factors=tuple(0.97 * f
                                             for f in s.spot_factors))
                 for s in base]
        kw = dict(n_paths=400, seed=9, levels=(0.6, 0.9))
        rep_a = revalue_book(book, base, **kw)
        rep_b = revalue_book(book, worse, **kw)
        for lv in kw["levels"]:
            assert rep_b.levels[lv][0] >= rep_a.levels[lv][0]
            assert rep_b.levels[lv][1] >= rep_a.levels[lv][1]


class TestHedgedPnl:
    def _report(self, values, base):
        return RiskReport(base_value=base, values=tuple(values),
                          levels={}, n_contracts=1, scenarios_digest="x",
                          engine="mc", seed=0)

    def test_matches_manual_arithmetic(self):
        report = self._report([11.0, 8.0, 9.5], base=10.0)
        scenarios = [Scenario(label=f"s{i}", spot_factors=fs)
                     for i, fs in enumerate(((1.1, 1.0), (0.9, 0.95),
                                             (1.0, 1.02)))]
        deltas, spots = np.array([0.5, 0.25]), np.array([100.0, 80.0])
        got = hedged_pnl(report, deltas, spots, scenarios)
        for g, pnl, s in zip(got, report.pnl, scenarios):
            hedge = sum(d * sp * (f - 1.0) for d, sp, f in
                        zip(deltas, spots, s.spot_factors))
            assert g == pytest.approx(pnl - hedge)

    def test_hedge_shrinks_spot_driven_tails(self):
        cfg = RiskConfig(n_scenarios=12, n_paths=400, seed=4, hedge=True,
                         levels=(0.9,), generator="horizon")
        report = run_risk(cfg)
        assert report.hedged is not None and report.deltas is not None
        raw = var_es(report.pnl, 0.9)
        hedged = var_es(report.hedged, 0.9)
        # Pure spot shocks, delta-hedged: the tail must shrink.
        assert hedged[0] < raw[0]

    def test_validation(self):
        report = self._report([1.0, 2.0], base=0.0)
        scenarios = [Scenario(label="a"), Scenario(label="b")]
        with pytest.raises(ValidationError):
            hedged_pnl(report, np.ones(2), np.ones(2), scenarios[:1])
        with pytest.raises(ValidationError):
            hedged_pnl(report, np.ones(3), np.ones(2), scenarios)


class TestConfigAndOracleValidation:
    def test_risk_config_validation(self):
        with pytest.raises(ValidationError):
            RiskConfig(generator="bootstrap")
        with pytest.raises(ValidationError):
            RiskConfig(n_scenarios=0)
        with pytest.raises(ValidationError):
            RiskConfig(horizon=0.0)

    def test_build_scenarios_covers_every_generator(self):
        from repro.risk.var import build_scenarios

        model = strike_strip(1, dim=2)[0].model
        for gen, n in (("stress", 6), ("horizon", 6), ("historical", 7),
                       ("axes", 15)):
            cfg = RiskConfig(generator=gen, n_scenarios=6)
            assert len(build_scenarios(cfg, model)) == n

    def test_analytic_oracle_validation(self):
        from repro.risk.analytic import (analytic_es, analytic_var,
                                         shock_moments)

        model = strike_strip(1, dim=2)[0].model
        with pytest.raises(ValidationError):
            analytic_var(model, (0.5, 0.5), (100.0,), 1.0, 0.04, 1.0)
        with pytest.raises(ValidationError):
            analytic_es(model, (0.5, 0.5), (100.0,), 1.0, 0.04, 0.0)
        with pytest.raises(ValidationError):
            shock_moments(model, (0.5, 0.5, 0.5), 0.04)
        with pytest.raises(ValidationError):
            shock_moments(model, (-1.0, 2.0), 0.04)


class TestRevalueBook:
    def test_validation(self):
        book = strike_strip(2, dim=2)
        with pytest.raises(ValidationError):
            revalue_book([], [Scenario(label="s")])
        with pytest.raises(ValidationError):
            revalue_book(book, [])
        with pytest.raises(ValidationError):
            revalue_book(book, [Scenario(label="s")], levels=(1.5,))

    def test_ledger_record_shape(self, tmp_path):
        from repro.obs import RunLedger, read_ledger

        path = tmp_path / "risk.jsonl"
        revalue_book(strike_strip(2, dim=2),
                     [Scenario(label="s", spot_factors=(0.95,))],
                     n_paths=300, seed=1, levels=(0.9,),
                     ledger=RunLedger(path))
        records = list(read_ledger(path))
        risk = [r for r in records if r.kind == "risk"]
        assert len(risk) == 1
        extra = risk[0].extra
        assert extra["n_scenarios"] == 1 and extra["n_contracts"] == 2
        assert {"var", "es", "hit_rate", "pnl_digest",
                "scenarios"} <= set(extra)
        # the service's own per-batch serve records ride along
        assert any(r.kind == "serve" for r in records)


class TestCacheStructure:
    def test_axis_sweep_hit_miss_split_is_exact(self):
        """Axis ladders lead with the identity scenario: after the base
        pass primes the cache, each of the three axis-base scenarios is
        pure hits and every bumped point is pure misses."""
        n = 3
        book = strike_strip(n, dim=2)
        sweep = axis_sweep()          # 3 axes x (base + 4 magnitudes)
        metrics = MetricsRegistry()
        report = revalue_book(book, sweep, n_paths=300, seed=2,
                              levels=(0.9,), metrics=metrics)
        n_axes, n_bumped = len(SWEEP_AXES), len(sweep) - len(SWEEP_AXES)
        assert report.cache_hits == n_axes * n
        assert report.cache_misses == (1 + n_bumped) * n
        assert metrics.sum_counters("serve.cache_hits") == n_axes * n
        assert metrics.sum_counters("serve.cache_misses") == (1 + n_bumped) * n
        assert report.hit_rate == pytest.approx(
            n_axes / (1 + n_axes + n_bumped))

    def test_repeated_sweep_through_shared_service_is_all_hits(self):
        from repro.serve import PriceCache, PricingService

        book = strike_strip(2, dim=2)
        sweep = axis_sweep(magnitudes=(-0.05, 0.05), axes=("spot",))
        cache = PriceCache(64)
        with PricingService(cache=cache, max_batch=len(book)) as service:
            first = revalue_book(book, sweep, n_paths=300, seed=2,
                                 levels=(0.9,), service=service)
            second = revalue_book(book, sweep, n_paths=300, seed=2,
                                  levels=(0.9,), service=service)
        assert second.cache_misses == 0
        assert second.cache_hits == len(book) * (len(sweep) + 1)
        assert first.pnl_digest() == second.pnl_digest()

    def test_per_axis_metrics_counters(self):
        metrics = MetricsRegistry()
        report = revalue_book(strike_strip(2, dim=2),
                              axis_sweep(magnitudes=(0.05,)),
                              n_paths=300, seed=2, levels=(0.9,),
                              metrics=metrics)
        assert metrics.counter("risk.scenarios").value == report.n_scenarios
        assert metrics.counter("risk.contracts").value == \
            2 * report.n_scenarios
        hist = metrics.histogram("risk.revalue_s")
        assert hist.count == report.n_scenarios
