"""Lcg64: determinism, jump-ahead algebra, leapfrog composition."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.rng import Lcg64


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = Lcg64(42).random_raw(256)
        b = Lcg64(42).random_raw(256)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = Lcg64(1).random_raw(64)
        b = Lcg64(2).random_raw(64)
        assert not np.array_equal(a, b)

    def test_stream_continuity_across_calls(self):
        g = Lcg64(7)
        whole = Lcg64(7).random_raw(300)
        pieces = np.concatenate([g.random_raw(100), g.random_raw(37), g.random_raw(163)])
        assert np.array_equal(whole, pieces)

    def test_clone_preserves_position(self):
        g = Lcg64(5)
        g.random_raw(123)
        c = g.clone()
        assert np.array_equal(g.random_raw(50), c.random_raw(50))


class TestJump:
    @given(st.integers(0, 5000), st.integers(0, 5000))
    def test_jump_equals_consumption(self, k1, k2):
        a = Lcg64(9)
        a.jump(k1)
        a.jump(k2)
        b = Lcg64(9)
        b.jump(k1 + k2)
        assert a.state == b.state

    def test_jump_matches_draws(self):
        g = Lcg64(11)
        seq = g.random_raw(500)
        h = Lcg64(11)
        h.jump(250)
        assert np.array_equal(h.random_raw(250), seq[250:])

    def test_jump_zero_is_identity(self):
        g = Lcg64(3)
        s = g.state
        g.jump(0)
        assert g.state == s

    def test_negative_jump_rejected(self):
        with pytest.raises(ValidationError):
            Lcg64(1).jump(-1)

    def test_random_raw_advances_state_by_n(self):
        g = Lcg64(13)
        h = g.clone()
        g.random_raw(777)
        h.jump(777)
        assert g.state == h.state


class TestLeapfrog:
    @pytest.mark.parametrize("stride", [2, 3, 4, 7])
    def test_leapfrog_interleaves_exactly(self, stride):
        full = Lcg64(21).random_raw(stride * 40)
        for rank in range(stride):
            lane = Lcg64(21).leapfrog(rank, stride).random_raw(40)
            assert np.array_equal(lane, full[rank::stride])

    def test_leapfrog_rejects_bad_rank(self):
        with pytest.raises(ValidationError):
            Lcg64(0).leapfrog(4, 4)

    def test_leapfrog_rejects_bad_stride(self):
        with pytest.raises(ValidationError):
            Lcg64(0).leapfrog(0, 0)


class TestSpawn:
    def test_children_are_disjoint_prefixes(self):
        children = Lcg64(33).spawn(4)
        draws = [c.random_raw(1000) for c in children]
        for i in range(4):
            for j in range(i + 1, 4):
                assert not np.intersect1d(draws[i], draws[j]).size


class TestStatistics:
    def test_uniform_moments(self):
        u = Lcg64(101).uniforms(200_000)
        assert abs(u.mean() - 0.5) < 0.005
        assert abs(u.var() - 1.0 / 12.0) < 0.002
        assert u.min() >= 0.0 and u.max() < 1.0

    def test_uniforms_open_excludes_zero(self):
        u = Lcg64(5).uniforms_open(100_000)
        assert u.min() > 0.0

    def test_no_serial_correlation(self):
        u = Lcg64(77).uniforms(100_000)
        c = np.corrcoef(u[:-1], u[1:])[0, 1]
        assert abs(c) < 0.01

    def test_integers_range_and_uniformity(self):
        x = Lcg64(3).integers(60_000, 6)
        assert x.min() >= 0 and x.max() <= 5
        counts = np.bincount(x, minlength=6)
        assert counts.min() > 60_000 / 6 * 0.9

    def test_integers_high_one(self):
        assert np.all(Lcg64(1).integers(10, 1) == 0)

    def test_integers_rejects_nonpositive_high(self):
        with pytest.raises(ValidationError):
            Lcg64(1).integers(5, 0)


class TestEdgeCases:
    def test_zero_draws(self):
        assert Lcg64(0).random_raw(0).size == 0

    def test_negative_draws_rejected(self):
        with pytest.raises(ValidationError):
            Lcg64(0).uniforms(-1)

    def test_seed_zero_is_not_degenerate(self):
        u = Lcg64(0).uniforms(1000)
        assert u.std() > 0.2
