"""Span tracer: recording semantics, the disabled fast path, nesting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.obs import NULL_TRACER, Tracer, track_sort_key
from repro.parallel import SimulatedCluster


class TickClock:
    """Deterministic clock: every read advances one tick."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        self.now += 1.0
        return self.now


class TestRecording:
    def test_span_context_manager_records_interval(self):
        tr = Tracer(clock=TickClock())
        with tr.span("work", rank=3, size=7):
            pass
        (s,) = tr.spans
        assert s.name == "work"
        assert s.track == "rank3"
        assert s.args == {"size": 7}
        assert (s.t0, s.t1) == (1.0, 2.0)
        assert s.duration == 1.0

    def test_add_span_explicit_timestamps(self):
        tr = Tracer()
        tr.add_span("phase", 0.5, 2.0, level=3)
        (s,) = tr.spans
        assert s.track == "main"
        assert (s.t0, s.t1) == (0.5, 2.0)
        assert s.args == {"level": 3}

    def test_add_span_rejects_negative_duration(self):
        tr = Tracer()
        with pytest.raises(ValidationError):
            tr.add_span("bad", 2.0, 1.0)

    def test_instant_uses_clock_or_explicit_t(self):
        tr = Tracer(clock=TickClock())
        tr.instant("fault", rank=1, kind="crash")
        tr.instant("retry", rank=1, t=10.0)
        assert [e.t for e in tr.events] == [1.0, 10.0]
        assert tr.events[0].args == {"kind": "crash"}
        assert all(e.track == "rank1" for e in tr.events)

    def test_len_counts_spans_and_events(self):
        tr = Tracer()
        tr.add_span("a", 0.0, 1.0)
        tr.instant("b", t=0.5)
        assert len(tr) == 2
        tr.clear()
        assert len(tr) == 0
        tr.add_span("c", 0.0, 1.0)  # usable after clear
        assert len(tr) == 1


class TestDisabled:
    def test_disabled_tracer_is_falsy_and_records_nothing(self):
        tr = Tracer(enabled=False)
        assert not tr
        with tr.span("work", rank=0):
            pass
        tr.add_span("phase", 0.0, 1.0)
        tr.instant("fault", rank=0)
        assert len(tr) == 0
        assert tr.spans == [] and tr.events == []

    def test_enabled_tracer_is_truthy(self):
        assert Tracer()
        assert not NULL_TRACER

    def test_disabled_span_is_shared_noop(self):
        tr = Tracer(enabled=False)
        assert tr.span("a") is tr.span("b")


class TestTracks:
    def test_rank_and_explicit_tracks(self):
        tr = Tracer()
        tr.add_span("a", 0, 1, track="worker2")
        tr.add_span("b", 0, 1, rank=10)
        tr.add_span("c", 0, 1, rank=2)
        tr.add_span("d", 0, 1)
        assert tr.tracks() == ["main", "rank2", "rank10", "worker2"]

    def test_sort_key_orders_numeric_suffixes(self):
        tracks = ["worker10", "rank2", "zeta", "main", "worker2", "rank10"]
        assert sorted(tracks, key=track_sort_key) == [
            "main", "rank2", "rank10", "worker2", "worker10", "zeta",
        ]


def _check_well_nested(spans):
    """Per track, any two spans must be disjoint or properly nested."""
    by_track = {}
    for s in spans:
        by_track.setdefault(s.track, []).append(s)
    for track_spans in by_track.values():
        stack = []
        for s in sorted(track_spans, key=lambda s: (s.t0, -s.t1)):
            while stack and stack[-1].t1 <= s.t0:
                stack.pop()
            if stack:
                assert s.t1 <= stack[-1].t1, (
                    f"span {s.name} [{s.t0},{s.t1}] overlaps "
                    f"{stack[-1].name} [{stack[-1].t0},{stack[-1].t1}]"
                )
            stack.append(s)


# A span tree as nested lists: [] is a leaf, [t1, t2, ...] nests children.
_TREES = st.recursive(st.just([]),
                      lambda inner: st.lists(inner, max_size=3),
                      max_leaves=12)


class TestNestingProperty:
    @given(tree=_TREES, rank=st.integers(0, 3))
    @settings(max_examples=60, deadline=None)
    def test_context_manager_spans_are_well_nested_and_monotonic(
            self, tree, rank):
        tr = Tracer(clock=TickClock())

        def walk(node):
            with tr.span("node", rank=rank, fanout=len(node)):
                for child in node:
                    walk(child)

        walk(tree)
        assert all(s.t1 >= s.t0 for s in tr.spans)
        _check_well_nested(tr.spans)
        # Every node of the tree produced exactly one span.
        def count(node):
            return 1 + sum(count(c) for c in node)
        assert len(tr.spans) == count(tree)


class TestClusterIntegration:
    def test_cluster_emits_per_rank_spans_on_simulated_timeline(self):
        tr = Tracer()
        c = SimulatedCluster(3, tracer=tr)
        c.compute(0, 1000)
        c.compute(1, 500)
        c.reduce(24)
        assert set(tr.tracks()) <= {"rank0", "rank1", "rank2"}
        kinds = {s.name for s in tr.spans}
        assert "compute" in kinds and "comm" in kinds
        # Simulated timestamps, not wall clock: bounded by the makespan.
        assert all(0.0 <= s.t0 <= s.t1 <= c.elapsed() for s in tr.spans)
        _check_well_nested(tr.spans)

    def test_cluster_without_tracer_records_nothing(self):
        c = SimulatedCluster(2)
        c.compute(0, 100)
        assert c.tracer is None
