"""Property suite for the seeded scenario generators.

The contracts under test:

* **Byte reproducibility** — every generator is a pure function of its
  arguments: same seed ⇒ identical :func:`shock_bytes`, and the stress
  stream is prefix-stable (scenario ``i`` never depends on ``n``).
* **PSD safety** — a correlation-shocked scenario always constructs a
  valid market: the shifted matrix comes back symmetric and PSD, and
  already-valid matrices pass through :func:`repair_correlation`
  bitwise untouched.
* **Identity** — a zero-magnitude scenario reproduces the base book
  bitwise, down to the request cache key (which is what gives risk
  sweeps their exact cache hit/miss structure).
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.market.correlation import is_positive_semidefinite
from repro.market.gbm import MultiAssetGBM
from repro.risk.scenarios import (SWEEP_AXES, Scenario, axis_sweep,
                                  base_scenario, historical_scenarios,
                                  horizon_scenarios, repair_correlation,
                                  scenario_digest, shock_bytes,
                                  stress_scenarios)
from repro.verify.determinism import float_bits

seeds = st.integers(min_value=0, max_value=2**31 - 1)
dims = st.integers(min_value=1, max_value=5)


class TestByteReproducibility:
    @given(seed=seeds, dim=dims, n=st.integers(min_value=1, max_value=12))
    def test_same_seed_same_bytes(self, seed, dim, n):
        a = stress_scenarios(dim, n, seed=seed)
        b = stress_scenarios(dim, n, seed=seed)
        assert shock_bytes(a) == shock_bytes(b)
        assert scenario_digest(a) == scenario_digest(b)

    @given(seed=seeds, dim=dims, n=st.integers(min_value=2, max_value=12),
           k=st.integers(min_value=1, max_value=12))
    def test_prefix_stability(self, seed, dim, n, k):
        """Scenario ``i`` is a pure function of ``(seed, dim, i)``: asking
        for fewer scenarios yields an exact prefix."""
        k = min(k, n)
        full = stress_scenarios(dim, n, seed=seed)
        short = stress_scenarios(dim, k, seed=seed)
        assert shock_bytes(full[:k]) == shock_bytes(short)

    @given(seed=seeds, dim=dims)
    def test_distinct_seeds_distinct_bytes(self, seed, dim):
        a = stress_scenarios(dim, 4, seed=seed)
        b = stress_scenarios(dim, 4, seed=seed + 1)
        assert shock_bytes(a) != shock_bytes(b)

    @given(seed=seeds, n=st.integers(min_value=1, max_value=8))
    def test_horizon_scenarios_deterministic(self, seed, n):
        model = MultiAssetGBM.equicorrelated(2, 100.0, 0.25, 0.05, 0.3)
        a = horizon_scenarios(model, n, 10 / 252, seed=seed)
        b = horizon_scenarios(model, n, 10 / 252, seed=seed)
        assert shock_bytes(a) == shock_bytes(b)
        for s in a:
            assert len(s.spot_factors) == model.dim
            assert s.vol_factors == (1.0,) and s.rate_shift == 0.0

    def test_historical_is_fixed_and_broadcast(self):
        a, b = historical_scenarios(), historical_scenarios(dim=7)
        assert shock_bytes(a) == shock_bytes(b)
        assert len(a) == 7
        m = MultiAssetGBM.equicorrelated(3, 100.0, 0.2, 0.05, 0.3)
        for s in a:
            s.apply(m)  # broadcasts to any dim without error


class TestPsdSafety:
    @given(shift=st.floats(min_value=-2.0, max_value=2.0,
                           allow_nan=False),
           dim=st.integers(min_value=2, max_value=5),
           rho=st.floats(min_value=-0.2, max_value=0.9, allow_nan=False))
    def test_corr_shock_yields_valid_market(self, shift, dim, rho):
        model = MultiAssetGBM.equicorrelated(dim, 100.0, 0.2, 0.05,
                                             max(rho, -1.0 / (dim - 1) + 1e-3))
        shocked = Scenario(label="c", corr_shift=shift).apply(model)
        corr = shocked.correlation
        assert np.array_equal(corr, corr.T)
        assert is_positive_semidefinite(corr)
        assert np.allclose(np.diag(corr), 1.0)

    def test_repair_passthrough_is_bitwise(self):
        model = MultiAssetGBM.equicorrelated(4, 100.0, 0.2, 0.05, 0.35)
        repaired = repair_correlation(model.correlation)
        assert repaired.tobytes() == np.asarray(model.correlation).tobytes()

    def test_repair_fixes_broken_matrix(self):
        broken = np.array([[1.0, 0.99, -0.99],
                           [0.99, 1.0, 0.99],
                           [-0.99, 0.99, 1.0]])
        assert not is_positive_semidefinite(broken)
        fixed = repair_correlation(broken)
        assert is_positive_semidefinite(fixed)
        assert np.allclose(np.diag(fixed), 1.0)

    def test_repair_rejects_non_square(self):
        with pytest.raises(ValidationError):
            repair_correlation(np.ones((2, 3)))


class TestIdentityScenario:
    def test_base_scenario_reproduces_model_bitwise(self, model_2d):
        applied = base_scenario().apply(model_2d)
        assert applied.spots.tobytes() == model_2d.spots.tobytes()
        assert applied.vols.tobytes() == model_2d.vols.tobytes()
        assert float_bits(applied.rate) == float_bits(model_2d.rate)
        assert (np.asarray(applied.correlation).tobytes()
                == np.asarray(model_2d.correlation).tobytes())

    def test_base_scenario_reproduces_prices_and_cache_key(self):
        from repro.serve.batching import PricingRequest, request_key
        from repro.serve.service import price_request
        from repro.workloads.generators import Workload, strike_strip

        w = strike_strip(1, dim=2)[0]
        shocked = Workload(w.name, base_scenario().apply(w.model), w.payoff,
                           w.expiry)
        a = PricingRequest(w, engine="mc", n_paths=500, seed=3, name=w.name)
        b = PricingRequest(shocked, engine="mc", n_paths=500, seed=3,
                           name=w.name)
        assert request_key(a) == request_key(b)
        assert float_bits(price_request(a).price) == \
            float_bits(price_request(b).price)

    def test_is_base_flags(self):
        assert base_scenario().is_base
        assert not Scenario(label="s", spot_factors=(0.9,)).is_base
        assert not Scenario(label="r", rate_shift=0.01).is_base

    def test_key_ignores_display_metadata(self):
        a = Scenario(label="a", spot_factors=(0.9,), axis="spot")
        b = Scenario(label="b", spot_factors=(0.9,), axis="joint")
        assert a.key == b.key
        assert a.key != Scenario(label="a", spot_factors=(0.8,)).key


class TestShapesAndValidation:
    def test_stress_draw_block_is_fixed(self):
        for dim in (1, 3):
            for s in stress_scenarios(dim, 3, seed=1):
                assert len(s.spot_factors) == dim
                assert len(s.vol_factors) == dim
                assert all(f > 0 for f in s.spot_factors)
                assert abs(s.corr_shift) <= 0.5

    def test_axis_sweep_structure(self):
        sweep = axis_sweep()
        assert len(sweep) == len(SWEEP_AXES) * 5
        per_axis = {a: [s for s in sweep if s.axis == a] for a in SWEEP_AXES}
        for axis, block in per_axis.items():
            assert block[0].is_base
            assert all(not s.is_base for s in block[1:])
        # rate magnitudes shift the short rate by m/10
        rates = [s.rate_shift for s in per_axis["rate"][1:]]
        assert rates == [pytest.approx(m / 10)
                         for m in (-0.10, -0.05, 0.05, 0.10)]

    def test_axis_sweep_rejects_bad_input(self):
        with pytest.raises(ValidationError):
            axis_sweep(axes=("spot", "smile"))
        with pytest.raises(ValidationError):
            axis_sweep(magnitudes=(-1.5,))

    def test_scenario_validation(self):
        with pytest.raises(ValidationError):
            Scenario(label="x", spot_factors=())
        with pytest.raises(ValidationError):
            Scenario(label="x", spot_factors=(-0.5,))
        with pytest.raises(ValidationError):
            Scenario(label="x", rate_shift=math.inf)
        with pytest.raises(ValidationError):
            Scenario(label="x", corr_shift=3.0)
        with pytest.raises(ValidationError):
            Scenario(label="x", spot_factors=(1.1, 0.9)).apply(
                MultiAssetGBM.single(100.0, 0.2, 0.05))

    def test_generator_argument_validation(self, model_2d):
        with pytest.raises(ValidationError):
            stress_scenarios(0, 4)
        with pytest.raises(ValidationError):
            stress_scenarios(2, 0)
        with pytest.raises(ValidationError):
            horizon_scenarios(model_2d, 4, 0.0)
