"""Cross-engine integration: every engine family prices the same contracts
to the same values, sequentially and in parallel — the end-to-end claim of
the reproduction."""

import numpy as np
import pytest

from repro.analytic import (
    bs_price,
    geometric_basket_price,
    margrabe_price,
    rainbow_two_asset_price,
)
from repro.core import ParallelLatticePricer, ParallelMCPricer, ParallelPDEPricer
from repro.lattice import beg_price, binomial_price
from repro.market import MultiAssetGBM, constant_correlation
from repro.mc import MonteCarloEngine, QMCSobol, lsm_price
from repro.payoffs import (
    Call,
    CallOnMax,
    ExchangeOption,
    GeometricBasketCall,
    Put,
)
from repro.pde import adi_price, fd_price
from repro.perf import ScalingExperiment, ScalingSeries
from repro.workloads import rainbow_workload


class TestThreeEnginesOneContract:
    """The T1 accuracy claim: MC, lattice and PDE all converge to the same
    closed-form value on shared contracts."""

    def test_vanilla_call_all_engines(self, model_1d):
        exact = bs_price(100, 100, 0.2, 0.05, 1.0)
        mc = MonteCarloEngine(200_000, technique=QMCSobol(8), seed=1).price(
            model_1d, Call(100.0), 1.0
        ).price
        tree = binomial_price(100, Call(100.0), 0.2, 0.05, 1.0, 1000).price
        pde = fd_price(100, Call(100.0), 0.2, 0.05, 1.0, n_space=400,
                       n_time=400).price
        for name, price in (("mc", mc), ("lattice", tree), ("pde", pde)):
            assert price == pytest.approx(exact, abs=0.02), name

    def test_two_asset_rainbow_all_engines(self, model_2d):
        exact = rainbow_two_asset_price(100, 95, 100, 0.2, 0.3, 0.4, 0.05, 1.0,
                                        kind="call-on-max")
        mc = MonteCarloEngine(400_000, seed=2).price(model_2d, CallOnMax(100.0),
                                                     1.0)
        tree = beg_price(model_2d, CallOnMax(100.0), 1.0, 250).price
        pde = adi_price(model_2d, CallOnMax(100.0), 1.0, n_space=200,
                        n_time=100).price
        assert mc.within(exact, z=4)
        assert tree == pytest.approx(exact, abs=0.04)
        assert pde == pytest.approx(exact, abs=0.04)

    def test_exchange_option_all_engines(self, model_2d):
        exact = margrabe_price(100, 95, 0.2, 0.3, 0.4, 1.0)
        mc = MonteCarloEngine(400_000, seed=3).price(model_2d, ExchangeOption(), 1.0)
        tree = beg_price(model_2d, ExchangeOption(), 1.0, 250).price
        pde = adi_price(model_2d, ExchangeOption(), 1.0, n_space=200,
                        n_time=100).price
        assert mc.within(exact, z=4)
        assert tree == pytest.approx(exact, abs=0.04)
        assert pde == pytest.approx(exact, abs=0.04)

    def test_american_put_three_ways(self, model_1d):
        tree = binomial_price(100, Put(100.0), 0.2, 0.05, 1.0, 2000,
                              american=True).price
        pde = fd_price(100, Put(100.0), 0.2, 0.05, 1.0, american=True,
                       n_space=400, n_time=200).price
        lsm = lsm_price(model_1d, Put(100.0), 1.0, 50, 100_000, seed=4)
        assert pde == pytest.approx(tree, abs=0.01)
        assert lsm.price == pytest.approx(tree, abs=6 * lsm.stderr + 0.04)


class TestParallelEqualsSequentialEverywhere:
    """Parallelization must never change the numbers — only T(P)."""

    def test_all_three_parallel_engines_on_rainbow(self):
        w = rainbow_workload()
        # Lattice: bit-identical.
        seq_tree = beg_price(w.model, w.payoff, w.expiry, 80).price
        par_tree = ParallelLatticePricer(80).price(w.model, w.payoff, w.expiry, 8)
        assert par_tree.price == seq_tree
        # PDE: bit-identical.
        seq_pde = adi_price(w.model, w.payoff, w.expiry, n_space=96,
                            n_time=24).price
        par_pde = ParallelPDEPricer(n_space=96, n_time=24).price(
            w.model, w.payoff, w.expiry, 8
        )
        assert par_pde.price == pytest.approx(seq_pde, abs=1e-12)
        # MC: same estimator across P with QMC point-set splitting.
        pricer = ParallelMCPricer(32_000, technique=QMCSobol(8), seed=5)
        p1 = pricer.price(w.model, w.payoff, w.expiry, 1)
        p8 = pricer.price(w.model, w.payoff, w.expiry, 8)
        assert p8.price == pytest.approx(p1.price, rel=1e-12)

    def test_paper_shape_mc_beats_lattice_in_scaling(self):
        """The headline comparison: MC speedup ≫ lattice speedup at P=32
        on comparable serial-time workloads."""
        w = rainbow_workload()
        mc = ParallelMCPricer(100_000, seed=1)
        lat = ParallelLatticePricer(100)
        mc_series = ScalingSeries.from_results(
            mc.sweep(w.model, w.payoff, w.expiry, [1, 32])
        )
        lat_series = ScalingSeries.from_results(
            lat.sweep(w.model, w.payoff, w.expiry, [1, 32])
        )
        assert mc_series.speedups[-1] > 3 * lat_series.speedups[-1]

    def test_dimension_crossover_lattice_blows_up(self):
        """F6 shape: lattice work grows exponentially in d at fixed accuracy,
        MC only linearly."""
        from repro.core import WorkModel

        wm = WorkModel()
        lattice_work = []
        mc_work = []
        for d in (1, 2, 3):
            steps = 40
            nodes = sum((t + 1) ** d for t in range(steps + 1))
            lattice_work.append(nodes * wm.lattice_node_units(d))
            mc_work.append(100_000 * wm.mc_path_units(d, None))
        assert lattice_work[2] / lattice_work[0] > 100
        assert mc_work[2] / mc_work[0] < 4


class TestScalingExperimentHarness:
    def test_report_runs_end_to_end(self, model_4d):
        from repro.payoffs import BasketCall

        exp = ScalingExperiment(
            ParallelMCPricer(20_000, seed=1),
            model_4d,
            BasketCall([0.25] * 4, 100.0),
            1.0,
            label="integration",
        )
        out = exp.report([1, 2, 4])
        assert "integration" in out
        assert "Amdahl fit" in out
        assert "Karp-Flatt" in out

    def test_empty_plist_rejected(self, model_1d):
        from repro.errors import ValidationError

        exp = ScalingExperiment(ParallelMCPricer(1000), model_1d, Call(100.0), 1.0)
        with pytest.raises(ValidationError):
            exp.run([])


class TestPublicApi:
    def test_top_level_imports(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_quickstart_snippet_runs(self):
        from repro import BasketCall, MultiAssetGBM, ParallelMCPricer

        model = MultiAssetGBM.equicorrelated(4, spot=100, vol=0.25, rate=0.05,
                                             rho=0.3)
        payoff = BasketCall([0.25] * 4, strike=100.0)
        pricer = ParallelMCPricer(n_paths=20_000, seed=42)
        prices = [pricer.price(model, payoff, expiry=1.0, p=p).price
                  for p in (1, 2, 4)]
        assert all(np.isfinite(p) and p > 0 for p in prices)
