"""Variance-reduction techniques: correctness first, then actual reduction."""

import numpy as np
import pytest

from repro.analytic import bs_price, geometric_asian_price, geometric_basket_price
from repro.errors import ValidationError
from repro.market import MultiAssetGBM
from repro.mc import (
    Antithetic,
    ControlVariate,
    MonteCarloEngine,
    PlainMC,
    Stratified,
)
from repro.payoffs import (
    AsianArithmeticCall,
    AsianGeometricCall,
    BasketCall,
    Call,
    Forward,
    GeometricBasketCall,
)
from repro.rng import Philox4x32

N = 100_000


def _price(model, payoff, technique, seed=0, n=N, steps=None):
    return MonteCarloEngine(n, technique=technique, seed=seed, steps=steps).price(
        model, payoff, 1.0
    )


class TestAntithetic:
    def test_unbiased(self, model_1d):
        r = _price(model_1d, Call(100.0), Antithetic(), seed=1)
        assert r.within(bs_price(100, 100, 0.2, 0.05, 1.0))

    def test_reduces_variance_for_monotone_payoff(self, model_1d):
        plain = _price(model_1d, Call(100.0), PlainMC(), seed=2)
        anti = _price(model_1d, Call(100.0), Antithetic(), seed=2)
        assert anti.stderr < plain.stderr

    def test_exact_for_linear_payoff(self, model_1d):
        # A forward is odd in z around the median path: the pair mean is a
        # function of |z| only through exp, still reduces hugely.
        plain = _price(model_1d, Forward(100.0), PlainMC(), seed=3)
        anti = _price(model_1d, Forward(100.0), Antithetic(), seed=3)
        assert anti.stderr < 0.35 * plain.stderr

    def test_requires_even_paths(self, model_1d):
        with pytest.raises(ValidationError, match="even"):
            Antithetic().partial(model_1d, Call(100.0), 1.0, 101, Philox4x32(0))

    def test_reports_path_count(self, model_1d):
        r = _price(model_1d, Call(100.0), Antithetic(), n=20_000)
        assert r.n_paths == 20_000


class TestControlVariate:
    def test_geometric_controls_arithmetic_basket(self, model_4d):
        w = [0.25] * 4
        exact_g = geometric_basket_price(model_4d, w, 100.0, 1.0)
        cv = ControlVariate(GeometricBasketCall(w, 100.0), exact_g)
        plain = _price(model_4d, BasketCall(w, 100.0), PlainMC(), seed=4)
        ctrl = _price(model_4d, BasketCall(w, 100.0), cv, seed=4)
        assert ctrl.stderr < 0.2 * plain.stderr
        assert abs(ctrl.price - plain.price) < 4 * plain.stderr

    def test_geometric_controls_arithmetic_asian(self, model_1d):
        exact_g = geometric_asian_price(100, 100, 0.2, 0.05, 1.0, 12)
        cv = ControlVariate(AsianGeometricCall(100.0), exact_g)
        plain = _price(model_1d, AsianArithmeticCall(100.0), PlainMC(), seed=5, steps=12)
        ctrl = _price(model_1d, AsianArithmeticCall(100.0), cv, seed=5, steps=12)
        assert ctrl.stderr < 0.2 * plain.stderr

    def test_self_control_is_exact(self, model_1d):
        # Controlling a payoff with itself collapses the variance entirely.
        exact = bs_price(100, 100, 0.2, 0.05, 1.0)
        cv = ControlVariate(Call(100.0), exact)
        r = _price(model_1d, Call(100.0), cv, seed=6, n=10_000)
        assert r.price == pytest.approx(exact, abs=1e-9)
        assert r.stderr == pytest.approx(0.0, abs=1e-9)

    def test_forward_control(self, model_1d):
        # E[e^{-rT}(S_T − K)] = S₀ − K e^{-rT}: a cheap universal control.
        exact = 100.0 - 100.0 * np.exp(-0.05)
        cv = ControlVariate(Forward(100.0), exact)
        plain = _price(model_1d, Call(100.0), PlainMC(), seed=7)
        ctrl = _price(model_1d, Call(100.0), cv, seed=7)
        assert ctrl.stderr < plain.stderr
        assert ctrl.within(bs_price(100, 100, 0.2, 0.05, 1.0))

    def test_dim_mismatch_rejected(self, model_2d):
        cv = ControlVariate(Call(100.0), 10.0)
        with pytest.raises(ValidationError):
            cv.partial(model_2d, BasketCall([0.5, 0.5], 100.0), 1.0, 100, Philox4x32(0))

    def test_control_must_be_payoff(self):
        with pytest.raises(ValidationError):
            ControlVariate("not a payoff", 1.0)


class TestStratified:
    def test_unbiased(self, model_1d):
        r = _price(model_1d, Call(100.0), Stratified(16), seed=8, n=96_000)
        assert r.within(bs_price(100, 100, 0.2, 0.05, 1.0), z=5)

    def test_reduces_variance_single_asset(self, model_1d):
        plain = _price(model_1d, Call(100.0), PlainMC(), seed=9, n=96_000)
        strat = _price(model_1d, Call(100.0), Stratified(32), seed=9, n=96_000)
        assert strat.stderr < 0.6 * plain.stderr

    def test_divisibility_enforced(self, model_1d):
        with pytest.raises(ValidationError, match="multiple"):
            Stratified(16).partial(model_1d, Call(100.0), 1.0, 1000, Philox4x32(0))

    def test_path_dependent_rejected(self, model_1d):
        with pytest.raises(ValidationError):
            Stratified(4).partial(model_1d, AsianGeometricCall(100.0), 1.0, 400,
                                  Philox4x32(0), steps=12)

    def test_multi_asset_supported(self, model_4d):
        r = _price(model_4d, BasketCall([0.25] * 4, 100.0), Stratified(8), seed=10,
                   n=80_000)
        plain = _price(model_4d, BasketCall([0.25] * 4, 100.0), PlainMC(), seed=10,
                       n=80_000)
        assert abs(r.price - plain.price) < 5 * plain.stderr


class TestPartialMergeContract:
    """Each technique's (partial, combine, finalize) must be order-independent
    and equal to one-shot accumulation — the property the tree reduction
    relies on."""

    @pytest.mark.parametrize("technique", [PlainMC(), Antithetic()])
    def test_split_equals_whole(self, model_1d, technique):
        gen_a = Philox4x32(21)
        whole = technique.partial(model_1d, Call(100.0), 1.0, 4000, gen_a.clone())
        gen_b = gen_a.clone()
        parts = [
            technique.partial(model_1d, Call(100.0), 1.0, 1000, gen_b)
            for _ in range(4)
        ]
        merged = technique.combine(parts)
        w_price, w_se, w_n = technique.finalize(whole)
        m_price, m_se, m_n = technique.finalize(merged)
        assert w_n == m_n
        assert m_price == pytest.approx(w_price, rel=1e-12)
        assert m_se == pytest.approx(w_se, rel=1e-9)

    def test_combine_order_invariance(self, model_1d):
        tech = PlainMC()
        gen = Philox4x32(22)
        parts = [tech.partial(model_1d, Call(100.0), 1.0, 500, gen) for _ in range(3)]
        a = tech.finalize(tech.combine(parts))
        b = tech.finalize(tech.combine(parts[::-1]))
        assert a[0] == pytest.approx(b[0], rel=1e-12)
