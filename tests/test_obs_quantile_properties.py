"""Property tests for the quantile histogram (hypothesis).

The estimator's contracts, independent of any concrete data set:

* **monotonicity** — q ≤ q' implies quantile(q) ≤ quantile(q');
* **range** — every quantile lies in [min, max] of the observed data;
* **permutation invariance** — observation order never matters;
* **merge associativity/commutativity** — sharded observation (workers,
  MPI ranks) then merging gives the same bucket state and quantiles as
  observing everything in one histogram;
* **bucket accuracy** — estimates land within one log-bucket width
  (2^(1/4) ≈ 19%) of the true empirical quantile for positive data.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.obs import Histogram

#: Positive latencies spanning the bucket table's useful range.
latencies = st.floats(min_value=1e-9, max_value=1e9,
                      allow_nan=False, allow_infinity=False)
samples = st.lists(latencies, min_size=1, max_size=200)
quantile_qs = st.floats(min_value=0.0, max_value=1.0)


def _fill(values) -> Histogram:
    h = Histogram()
    for v in values:
        h.observe(v)
    return h


@given(samples, quantile_qs, quantile_qs)
def test_quantiles_are_monotone(values, q1, q2):
    h = _fill(values)
    lo, hi = sorted((q1, q2))
    assert h.quantile(lo) <= h.quantile(hi) + 1e-12


@given(samples, quantile_qs)
def test_quantiles_stay_within_observed_range(values, q):
    h = _fill(values)
    est = h.quantile(q)
    assert min(values) <= est <= max(values) or math.isclose(
        est, min(values)) or math.isclose(est, max(values))


@given(samples, st.randoms(use_true_random=False))
def test_permutation_invariance(values, rnd):
    shuffled = list(values)
    rnd.shuffle(shuffled)
    a, b = _fill(values), _fill(shuffled)
    assert a.buckets == b.buckets
    assert a.count == b.count and a.min == b.min and a.max == b.max
    for q in (0.0, 0.5, 0.9, 0.99, 1.0):
        assert a.quantile(q) == b.quantile(q)


@given(st.lists(latencies, min_size=0, max_size=60),
       st.lists(latencies, min_size=0, max_size=60),
       st.lists(latencies, min_size=1, max_size=60))
def test_merge_matches_pooled_and_is_associative(xs, ys, zs):
    pooled = _fill(xs + ys + zs)
    left = _fill(xs).merge(_fill(ys)).merge(_fill(zs))      # (x+y)+z
    right = _fill(xs).merge(_fill(ys).merge(_fill(zs)))     # x+(y+z)
    swapped = _fill(zs).merge(_fill(ys)).merge(_fill(xs))   # commuted
    for h in (left, right, swapped):
        assert h.buckets == pooled.buckets
        assert h.count == pooled.count
        assert h.min == pooled.min and h.max == pooled.max
        for q in (0.5, 0.9, 0.99, 0.999):
            assert h.quantile(q) == pooled.quantile(q)


@settings(max_examples=50)
@given(st.lists(st.floats(min_value=1e-3, max_value=1e3,
                          allow_nan=False, allow_infinity=False),
                min_size=5, max_size=200))
def test_bucket_resolution_bound_vs_empirical_quantile(values):
    h = _fill(values)
    ordered = sorted(values)
    n = len(ordered)
    for q in (0.5, 0.9):
        # A target rank exactly on an order-statistic boundary makes either
        # neighbour a valid empirical quantile — bound against both.
        lo_rank = max(math.ceil(q * n) - 1, 0)
        hi_rank = min(int(q * n), n - 1)
        est = h.quantile(q)
        # One bucket spans a 2^(1/4) ratio; allow two bucket widths of
        # slack for interpolation at cumulative-rank boundaries.
        assert est <= ordered[hi_rank] * 2 ** 0.5 + 1e-12
        assert est >= ordered[lo_rank] / 2 ** 0.5 - 1e-12


@given(st.lists(st.floats(min_value=-10.0, max_value=10.0,
                          allow_nan=False), min_size=1, max_size=100))
def test_nonpositive_values_never_break_the_estimator(values):
    h = _fill(values)
    assert h.count == len(values)
    for q in (0.0, 0.5, 1.0):
        est = h.quantile(q)
        assert math.isfinite(est)
        assert min(values) <= est <= max(values)
