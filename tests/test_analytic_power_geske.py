"""Power options and Geske compound options."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analytic import (
    bs_price,
    compound_call_price,
    critical_spot,
    power_option_price,
)
from repro.errors import ValidationError
from repro.market import MultiAssetGBM
from repro.payoffs import PowerCall, PowerPut
from repro.rng import Philox4x32


class TestPowerAnalytic:
    def test_power_one_is_vanilla(self):
        v = power_option_price(100, 100, 1.0, 0.2, 0.05, 1.0)
        assert v == pytest.approx(bs_price(100, 100, 0.2, 0.05, 1.0), abs=1e-12)

    @given(st.floats(0.5, 3.0))
    def test_put_call_parity(self, p):
        k = 100.0**p
        c = power_option_price(100, k, p, 0.2, 0.05, 1.0)
        v = power_option_price(100, k, p, 0.2, 0.05, 1.0, option="put")
        m = math.log(100) + (0.05 - 0.02) * 1.0
        fwd_p = math.exp(p * m + 0.5 * (p * 0.2) ** 2)
        assert c - v == pytest.approx(math.exp(-0.05) * (fwd_p - k), rel=1e-9)

    def test_mc_agreement(self):
        model = MultiAssetGBM.single(100, 0.2, 0.05)
        exact = power_option_price(100, 10500.0, 2.0, 0.2, 0.05, 1.0)
        s_term = model.sample_terminal(Philox4x32(5), 400_000, 1.0)
        mc = math.exp(-0.05) * PowerCall(10500.0, 2.0).terminal(s_term).mean()
        assert mc == pytest.approx(exact, rel=0.01)

    def test_mc_put_agreement(self):
        model = MultiAssetGBM.single(100, 0.2, 0.05)
        exact = power_option_price(100, 9.0, 0.5, 0.2, 0.05, 1.0, option="put")
        s_term = model.sample_terminal(Philox4x32(6), 400_000, 1.0)
        mc = math.exp(-0.05) * PowerPut(9.0, 0.5).terminal(s_term).mean()
        assert mc == pytest.approx(exact, rel=0.02)

    def test_payoff_validation(self):
        with pytest.raises(ValidationError):
            PowerCall(100.0, 0.0)
        with pytest.raises(ValidationError):
            PowerCall(100.0, 2.0).terminal(np.array([[-1.0]]))

    def test_analytic_validation(self):
        with pytest.raises(ValidationError):
            power_option_price(100, 100, 2.0, 0.2, 0.05, 1.0, option="digital")


class TestCriticalSpot:
    def test_inner_value_equals_compound_strike(self):
        s_star = critical_spot(100.0, 5.0, 0.2, 0.05, 1.0)
        assert bs_price(s_star, 100.0, 0.2, 0.05, 1.0) == pytest.approx(5.0, abs=1e-8)

    def test_increasing_in_compound_strike(self):
        lo = critical_spot(100.0, 2.0, 0.2, 0.05, 1.0)
        hi = critical_spot(100.0, 10.0, 0.2, 0.05, 1.0)
        assert hi > lo


class TestGeske:
    ARGS = dict(spot=100.0, strike_compound=5.0, strike_inner=100.0,
                t_compound=0.5, t_inner=1.5, vol=0.2, rate=0.05)

    def test_bounded_by_inner_call(self):
        cc = compound_call_price(**self.ARGS)
        inner = bs_price(100, 100, 0.2, 0.05, 1.5)
        assert 0.0 < cc < inner

    def test_cheap_compound_strike_approaches_inner_call(self):
        args = dict(self.ARGS, strike_compound=1e-6)
        cc = compound_call_price(**args)
        inner = bs_price(100, 100, 0.2, 0.05, 1.5)
        # K₁ → 0: always exercise, so CoC → inner call minus ≈0.
        assert cc == pytest.approx(inner, rel=1e-3)

    def test_nested_mc_cross_check(self):
        cc = compound_call_price(**self.ARGS)
        model = MultiAssetGBM.single(100, 0.2, 0.05)
        s1 = model.sample_terminal(Philox4x32(7), 150_000, 0.5)[:, 0]
        inner = np.array([bs_price(s, 100.0, 0.2, 0.05, 1.0) for s in s1])
        samples = math.exp(-0.05 * 0.5) * np.maximum(inner - 5.0, 0.0)
        mc = samples.mean()
        stderr = samples.std(ddof=1) / math.sqrt(samples.size)
        assert abs(cc - mc) < 4 * stderr + 1e-3

    def test_monotone_in_spot(self):
        lo = compound_call_price(**dict(self.ARGS, spot=90.0))
        hi = compound_call_price(**dict(self.ARGS, spot=110.0))
        assert hi > lo

    def test_decreasing_in_compound_strike(self):
        cheap = compound_call_price(**dict(self.ARGS, strike_compound=2.0))
        dear = compound_call_price(**dict(self.ARGS, strike_compound=10.0))
        assert cheap > dear

    def test_maturity_ordering_enforced(self):
        with pytest.raises(ValidationError):
            compound_call_price(**dict(self.ARGS, t_compound=2.0))
