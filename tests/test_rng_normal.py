"""Gaussian transforms: moments, tail behaviour, consumption contracts."""

import numpy as np
import pytest
from scipy import stats

from repro.errors import ValidationError
from repro.rng import Philox4x32, normals_boxmuller, normals_inverse, normals_polar


@pytest.mark.parametrize("method", ["inverse", "boxmuller", "polar"])
class TestDistribution:
    def test_moments(self, method):
        z = Philox4x32(1).normals(200_000, method=method)
        assert abs(z.mean()) < 0.01
        assert abs(z.std() - 1.0) < 0.01
        assert abs(stats.skew(z)) < 0.05

    def test_kolmogorov_smirnov(self, method):
        z = Philox4x32(2).normals(50_000, method=method)
        stat, pvalue = stats.kstest(z, "norm")
        assert pvalue > 1e-4, f"{method} failed KS: stat={stat}, p={pvalue}"

    def test_requested_count(self, method):
        for n in (0, 1, 2, 7, 1001):
            assert Philox4x32(3).normals(n, method=method).shape == (n,)


class TestInverseSpecifics:
    def test_consumes_exactly_one_uniform_per_normal(self):
        # Critical contract for QMC and leapfrog streams.
        g = Philox4x32(5)
        normals_inverse(g, 37)
        assert g.position == 37

    def test_sign_matches_uniform_half(self):
        # z_i = Φ⁻¹(u_i), so sign(z_i) = sign(u_i − ½) draw by draw.
        u = Philox4x32(7).uniforms_open(1000)
        z = normals_inverse(Philox4x32(7), 1000)
        mismatches = np.sign(z) != np.sign(u - 0.5)
        assert not mismatches.any() or np.allclose(u[mismatches], 0.5)


class TestBoxMullerSpecifics:
    def test_pairs_have_unit_rayleigh_radius(self):
        z = normals_boxmuller(Philox4x32(9), 100_000)
        r2 = z[0::2] ** 2 + z[1::2] ** 2
        # R² of a Gaussian pair is Exp(1/2): mean 2.
        assert abs(r2.mean() - 2.0) < 0.05

    def test_odd_count(self):
        assert normals_boxmuller(Philox4x32(1), 7).shape == (7,)


class TestPolarSpecifics:
    def test_fills_request(self):
        assert normals_polar(Philox4x32(11), 12345).shape == (12345,)

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            normals_polar(Philox4x32(0), -1)


def test_methods_agree_in_distribution():
    zs = {
        m: np.sort(Philox4x32(21).normals(40_000, method=m))
        for m in ("inverse", "boxmuller", "polar")
    }
    # Same distribution → sorted samples close in Kolmogorov distance.
    for m in ("boxmuller", "polar"):
        stat = np.max(np.abs(zs["inverse"] - zs[m]))
        # Quantile agreement in the bulk (tails are noisier).
        q = np.linspace(0.05, 0.95, 19)
        qa = np.quantile(zs["inverse"], q)
        qb = np.quantile(zs[m], q)
        assert np.max(np.abs(qa - qb)) < 0.05, m


def test_unknown_method_rejected():
    with pytest.raises(ValidationError):
        Philox4x32(0).normals(10, method="ziggurat")
