"""Tests for the asyncio ShardedGateway front-end.

Wall-clock code paths only get *structural* assertions here (quotes
bitwise-equal to direct pricing, sheds surfaced as decisions, caches
disjoint per shard, clean lifecycle); all timing-sensitive overload
behavior lives in the virtual-time tier (``test_gateway_overload.py``),
which exercises the same ``GatewayCore``.
"""

from __future__ import annotations

import asyncio

from repro.gateway import GatewayRequest, ShardedGateway
from repro.gateway.admission import Decision
from repro.gateway.router import route
from repro.obs.metrics import MetricsRegistry
from repro.serve.batching import PricingRequest
from repro.serve.service import PriceQuote, price_request
from repro.workloads.generators import strike_strip


def _requests(n: int, *, n_paths: int = 800) -> list[PricingRequest]:
    book = strike_strip(n)
    return [PricingRequest(c, engine="mc", n_paths=n_paths, seed=i,
                           name=c.name)
            for i, c in enumerate(book)]


def test_quotes_match_direct_pricing_bitwise():
    reqs = _requests(6)

    async def main():
        async with ShardedGateway(n_shards=2) as gw:
            greqs = [GatewayRequest(request=r, deadline_s=60.0)
                     for r in reqs]
            return await gw.price_many(greqs)

    replies = asyncio.run(main())
    assert all(isinstance(q, PriceQuote) for q in replies)
    for req, quote in zip(reqs, replies):
        direct = price_request(req)
        assert quote.price == direct.price
        assert quote.stderr == direct.stderr


def test_replay_hits_disjoint_shard_caches():
    reqs = _requests(8)
    metrics = MetricsRegistry()

    async def main():
        async with ShardedGateway(n_shards=2, metrics=metrics) as gw:
            greqs = [GatewayRequest(request=r, deadline_s=60.0)
                     for r in reqs]
            first = await gw.price_many(greqs)
            second = await gw.price_many(greqs)
            return first, second

    first, second = asyncio.run(main())
    assert [q.price for q in first] == [q.price for q in second]
    # The replay is pure cache hits, split across both shard caches
    # exactly as the router assigns the contracts.
    hits0 = metrics.counter("serve.cache_hits", shard="0").value
    hits1 = metrics.counter("serve.cache_hits", shard="1").value
    on_shard0 = sum(1 for r in reqs if route(r, 2) == 0)
    assert hits0 == on_shard0
    assert hits1 == len(reqs) - on_shard0
    assert metrics.sum_counters("serve.cache_misses") == len(reqs)


def test_impossible_deadline_is_shed_not_priced():
    req = _requests(1)[0]

    async def main():
        async with ShardedGateway(n_shards=1, service_hint_s=10.0) as gw:
            return await gw.submit(GatewayRequest(request=req,
                                                  deadline_s=1e-6))

    decision = asyncio.run(main())
    assert isinstance(decision, Decision)
    assert decision.action == "shed" and decision.reason == "deadline"


def test_lanes_and_mixed_replies():
    reqs = _requests(4)

    async def main():
        async with ShardedGateway(n_shards=2, service_hint_s=1e-3) as gw:
            fine = [GatewayRequest(request=r, lane=lane, deadline_s=60.0)
                    for r, lane in zip(reqs, ("interactive", "standard",
                                              "bulk", "interactive"))]
            doomed = GatewayRequest(request=reqs[0], lane="bulk",
                                    deadline_s=1e-9)
            replies = await gw.price_many([*fine, doomed])
            return replies, gw.core.shed

    replies, shed = asyncio.run(main())
    assert [type(r) for r in replies[:4]] == [PriceQuote] * 4
    assert isinstance(replies[4], Decision)
    assert shed == {"deadline": 1}


def test_lifecycle_is_reentrant():
    req = _requests(1)[0]

    async def main():
        gw = ShardedGateway(n_shards=1)
        await gw.start()
        await gw.start()   # idempotent
        quote = await gw.submit(GatewayRequest(request=req, deadline_s=60.0))
        await gw.close()
        assert isinstance(quote, PriceQuote)
        # A fresh start after close serves again.
        await gw.start()
        again = await gw.submit(GatewayRequest(request=req, deadline_s=60.0))
        await gw.close()
        assert again.price == quote.price
        return True

    assert asyncio.run(main())
