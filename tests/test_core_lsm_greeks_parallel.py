"""Parallel LSM and parallel Greeks."""

import numpy as np
import pytest

from repro.analytic import bs_greeks, bs_price
from repro.core import ParallelLSMPricer, ParallelMCGreeks
from repro.errors import ValidationError
from repro.lattice import binomial_price
from repro.market import MultiAssetGBM, constant_correlation
from repro.payoffs import BasketCall, Call, CallOnMax, Put


class TestParallelLSM:
    def test_p_invariance_of_the_estimate(self, model_1d):
        pricer = ParallelLSMPricer(50_000, 25, seed=7)
        prices = {p: pricer.price(model_1d, Put(100.0), 1.0, p).price
                  for p in (1, 3, 8)}
        # Same master-stream paths at every P; only the allreduce order
        # differs, which these sums absorb below 1e-9.
        assert max(prices.values()) - min(prices.values()) < 1e-9

    def test_matches_binomial_american_put(self, model_1d):
        tree = binomial_price(100, Put(100.0), 0.2, 0.05, 1.0, 2000,
                              american=True).price
        r = ParallelLSMPricer(100_000, 50, seed=1).price(model_1d, Put(100.0),
                                                         1.0, 4)
        assert tree - 6 * r.stderr - 0.04 < r.price < tree + 4 * r.stderr

    def test_beats_european_value(self, model_1d):
        euro = bs_price(100, 100, 0.2, 0.05, 1.0, option="put")
        r = ParallelLSMPricer(60_000, 25, seed=2).price(model_1d, Put(100.0),
                                                        1.0, 2)
        assert r.price > euro + 2 * r.stderr

    def test_two_asset_bermudan(self):
        model = MultiAssetGBM(
            [100.0, 100.0], [0.2, 0.2], 0.05, dividends=[0.1, 0.1],
            correlation=constant_correlation(2, 0.0),
        )
        from repro.lattice import beg_price

        tree = beg_price(model, CallOnMax(100.0), 1.0, 90, american=True).price
        r = ParallelLSMPricer(60_000, 12, seed=3).price(model, CallOnMax(100.0),
                                                        1.0, 4)
        assert 0.93 * tree < r.price < 1.03 * tree

    def test_scaling_between_mc_and_lattice(self, model_1d):
        # The per-date allreduce caps LSM below embarrassingly-parallel MC
        # but far above the per-level lattice.
        pricer = ParallelLSMPricer(100_000, 50, seed=1)
        rs = pricer.sweep(model_1d, Put(100.0), 1.0, [1, 32])
        speedup = rs[0].sim_time / rs[1].sim_time
        assert 10.0 < speedup < 30.0

    def test_comm_grows_with_exercise_dates(self, model_1d):
        few = ParallelLSMPricer(40_000, 10, seed=1).price(model_1d, Put(100.0),
                                                          1.0, 4)
        many = ParallelLSMPricer(40_000, 40, seed=1).price(model_1d, Put(100.0),
                                                           1.0, 4)
        assert many.comm_time > few.comm_time

    def test_meta(self, model_1d):
        r = ParallelLSMPricer(10_000, 5, degree=3, seed=1).price(
            model_1d, Put(100.0), 1.0, 2
        )
        assert r.engine == "lsm"
        assert r.meta["degree"] == 3
        assert r.meta["basis_size"] == 4  # 1, x, x², x³

    def test_validation(self, model_2d):
        with pytest.raises(ValidationError):
            ParallelLSMPricer(100, 5).price(model_2d, Put(100.0), 1.0, 2)
        with pytest.raises(ValidationError):
            ParallelLSMPricer(4, 5).price(
                MultiAssetGBM.single(100, 0.2, 0.05), Put(100.0), 1.0, 8
            )


class TestParallelGreeks:
    def test_matches_analytic_single_asset(self, model_1d):
        g = ParallelMCGreeks(200_000, seed=9).compute(model_1d, Call(100.0),
                                                      1.0, 4)
        exact = bs_greeks(100, 100, 0.2, 0.05, 1.0)
        assert g.delta[0] == pytest.approx(exact.delta, abs=0.01)
        assert g.gamma[0] == pytest.approx(exact.gamma, abs=0.005)
        assert g.vega[0] == pytest.approx(exact.vega, rel=0.05)

    def test_symmetric_basket_greeks(self, model_4d):
        g = ParallelMCGreeks(60_000, seed=5).compute(
            model_4d, BasketCall([0.25] * 4, 100.0), 1.0, 4
        )
        assert np.allclose(g.delta, g.delta.mean(), atol=0.01)
        assert np.all(g.vega > 0)

    def test_backend_free_determinism(self, model_4d):
        pg = ParallelMCGreeks(20_000, seed=5)
        a = pg.compute(model_4d, BasketCall([0.25] * 4, 100.0), 1.0, 4)
        b = pg.compute(model_4d, BasketCall([0.25] * 4, 100.0), 1.0, 4)
        assert np.array_equal(a.delta, b.delta)

    def test_scales_like_pricing(self, model_4d):
        pg = ParallelMCGreeks(50_000, seed=5)
        payoff = BasketCall([0.25] * 4, 100.0)
        t1 = pg.compute(model_4d, payoff, 1.0, 1).run.sim_time
        t8 = pg.compute(model_4d, payoff, 1.0, 8).run.sim_time
        assert t1 / t8 > 7.0

    def test_work_scales_with_model_count(self, model_1d, model_4d):
        # 4 assets ⇒ 17 models vs 5 for one asset; compute time ratio ≈
        # (17·units_d4)/(5·units_d1) at equal paths.
        t1 = ParallelMCGreeks(20_000, seed=1).compute(model_1d, Call(100.0),
                                                      1.0, 1).run.compute_time
        t4 = ParallelMCGreeks(20_000, seed=1).compute(
            model_4d, BasketCall([0.25] * 4, 100.0), 1.0, 1
        ).run.compute_time
        assert t4 > 5 * t1

    def test_crn_makes_greeks_stable_across_seeds(self, model_1d):
        deltas = [
            ParallelMCGreeks(30_000, seed=s).compute(model_1d, Call(100.0),
                                                     1.0, 2).delta[0]
            for s in (1, 2, 3)
        ]
        assert np.std(deltas) < 0.01

    def test_validation(self, model_2d):
        with pytest.raises(ValidationError):
            ParallelMCGreeks(100).compute(model_2d, Call(100.0), 1.0, 2)
        with pytest.raises(ValidationError):
            ParallelMCGreeks(4).compute(
                MultiAssetGBM.single(100, 0.2, 0.05), Call(100.0), 1.0, 8
            )
