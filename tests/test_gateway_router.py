"""Property tests for the canonical-hash shard router.

The router is the invariant that makes the gateway's per-shard caches
hot *and disjoint*: shard = f(canonical key, n_shards), nothing else.
These properties pin that down — stable assignment (pure function,
replays and equivalent-config requests agree), permutation invariance
(per-shard membership ignores submission order), and statistical
balance (SHA-256 uniformity keeps max/min shard load bounded on random
books).
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.gateway.router import (route, shard_assignments, shard_index,
                                  shard_loads)
from repro.serve.batching import PricingRequest, request_key
from repro.workloads.generators import random_portfolio, strike_strip


def _book_requests(n: int, *, seed: int = 0) -> list[PricingRequest]:
    book = random_portfolio(max(n // 4, 1), dim=2, seed=seed)
    return [
        PricingRequest(book[i % len(book)], engine="mc", n_paths=1_000,
                       seed=seed + i, name=book[i % len(book)].name)
        for i in range(n)
    ]


# -- stable assignment -------------------------------------------------------

@given(st.integers(min_value=1, max_value=16), st.integers(0, 2**31 - 1))
def test_assignment_is_a_pure_function(n_shards, seed):
    reqs = _book_requests(8, seed=seed)
    first = shard_assignments(reqs, n_shards)
    second = shard_assignments(reqs, n_shards)
    assert first == second
    assert all(0 <= s < n_shards for s in first)


def test_equivalent_requests_share_a_shard():
    # name is display-only and excluded from the canonical key, so a
    # relabeled request must land on the same shard — no cache split.
    contract = strike_strip(1)[0]
    a = PricingRequest(contract, engine="mc", n_paths=2_000, seed=3,
                      name="desk-a")
    b = PricingRequest(contract, engine="mc", n_paths=2_000, seed=3,
                      name="desk-b")
    assert request_key(a) == request_key(b)
    for n_shards in (1, 2, 3, 5, 8):
        assert route(a, n_shards) == route(b, n_shards)


@given(st.text(alphabet="0123456789abcdef", min_size=1, max_size=64),
       st.integers(min_value=1, max_value=64))
def test_shard_index_in_range_for_any_hex_key(key, n_shards):
    assert 0 <= shard_index(key, n_shards) < n_shards


def test_shard_index_validates():
    with pytest.raises(ValidationError):
        shard_index("ab12", 0)
    with pytest.raises(ValueError):
        shard_index("", 4)


# -- permutation invariance --------------------------------------------------

@given(st.permutations(list(range(24))),
       st.integers(min_value=2, max_value=8))
def test_per_shard_membership_ignores_submission_order(perm, n_shards):
    reqs = _book_requests(24)
    shuffled = [reqs[i] for i in perm]
    by_shard = lambda rs: {  # noqa: E731
        s: sorted(request_key(r) for r in rs if route(r, n_shards) == s)
        for s in range(n_shards)
    }
    assert by_shard(reqs) == by_shard(shuffled)
    assert sorted(shard_loads(reqs, n_shards)) == sorted(
        shard_loads(shuffled, n_shards))


# -- balance ----------------------------------------------------------------

@given(st.integers(0, 2**31 - 1), st.sampled_from([2, 4, 8]))
def test_random_books_balance_within_bound(seed, n_shards):
    # 256 distinct keys over <= 8 shards: SHA-256 uniformity keeps every
    # shard within 2x the mean and max/min modest. The bound is loose
    # enough to hold for every seed (derandomized CI profile replays a
    # fixed batch), tight enough to catch a broken hash prefix or a
    # modulo bias.
    reqs = _book_requests(256, seed=seed)
    loads = shard_loads(reqs, n_shards)
    mean = 256 / n_shards
    assert sum(loads) == 256
    assert max(loads) <= 2.0 * mean
    assert min(loads) >= mean / 3.0


def test_single_shard_takes_everything():
    reqs = _book_requests(32)
    assert shard_loads(reqs, 1) == [32]
    assert set(shard_assignments(reqs, 1)) == {0}
