"""Tests for the differential oracle harness (repro.verify.oracle)."""

from __future__ import annotations

import numpy as np
import pytest

import repro.analytic
from repro.errors import ValidationError
from repro.market import MultiAssetGBM
from repro.payoffs import Call
from repro.verify.contracts import (VerifyCase, canonical_json, config_hash,
                                    default_corpus)
from repro.verify.oracle import (Discrepancy, EngineCell, compare_cells,
                                 run_case, run_oracle)
from repro.workloads.generators import Workload


def _call_case(**engines) -> VerifyCase:
    model = MultiAssetGBM.single(100.0, 0.2, 0.05)
    return VerifyCase(
        name="call-1d",
        workload=Workload("call-1d", model, Call(100.0), 1.0),
        engines=engines or {
            "analytic": {"kind": "bs", "spot": 100.0, "strike": 100.0,
                         "vol": 0.2, "rate": 0.05, "expiry": 1.0,
                         "option": "call"},
            "lattice": {"steps": 128},
        },
    )


class TestContracts:
    def test_config_hash_is_stable(self):
        assert config_hash(_call_case()) == config_hash(_call_case())

    def test_config_hash_tracks_engine_settings(self):
        base = _call_case()
        bumped = _call_case(
            analytic=dict(base.engines["analytic"]),
            lattice={"steps": 256},
        )
        assert config_hash(base) != config_hash(bumped)

    def test_unknown_engine_family_rejected(self):
        with pytest.raises(ValidationError, match="unknown engine families"):
            _call_case(analytic={"kind": "bs"}, warp_drive={})

    def test_single_engine_rejected(self):
        with pytest.raises(ValidationError, match="at least two"):
            _call_case(lattice={"steps": 128})

    def test_canonical_json_handles_numpy(self):
        doc = {"a": np.float64(1.5), "b": np.arange(3), "c": (1, 2)}
        assert canonical_json(doc) == '{"a":1.5,"b":[0,1,2],"c":[1,2]}'

    def test_default_corpus_is_deterministic(self):
        first = [config_hash(c) for c in default_corpus()]
        second = [config_hash(c) for c in default_corpus()]
        assert first == second
        assert len(first) == len(set(first))


class TestRunCase:
    def test_analytic_and_lattice_agree(self):
        cells = run_case(_call_case())
        assert set(cells) == {"analytic", "lattice"}
        assert compare_cells("call-1d", cells) == []
        # Bands are honest: tiny for the closed form, visible for the tree.
        assert cells["analytic"].band < 1e-6 < cells["lattice"].band

    def test_engine_subset(self):
        cells = run_case(_call_case(), engines=("analytic",))
        assert set(cells) == {"analytic"}

    def test_odd_lattice_steps_rejected(self):
        case = _call_case(analytic={"kind": "bs", "spot": 100.0,
                                    "strike": 100.0, "vol": 0.2,
                                    "rate": 0.05, "expiry": 1.0},
                          lattice={"steps": 129})
        with pytest.raises(ValidationError, match="even"):
            run_case(case, engines=("lattice",))


class TestCompareCells:
    def test_disagreement_is_reported_pairwise(self):
        cells = {
            "analytic": EngineCell("analytic", 10.0, 1e-9),
            "mc": EngineCell("mc", 10.5, 0.1),
        }
        found = compare_cells("case-x", cells)
        assert len(found) == 1
        d = found[0]
        assert (d.case, d.engine_a, d.engine_b) == ("case-x", "analytic", "mc")
        assert d.diff == pytest.approx(0.5)
        assert d.allowed == pytest.approx(0.1 + 1e-9)
        # The failure message names contract, engines and the exceeded band.
        text = str(d)
        assert "case-x" in text and "analytic" in text and "mc" in text
        assert "exceeds band" in text

    def test_agreement_within_bands(self):
        cells = {
            "a": EngineCell("a", 10.0, 0.3),
            "b": EngineCell("b", 10.5, 0.3),
        }
        assert compare_cells("case-y", cells) == []


class TestPerturbation:
    def test_perturbed_engine_constant_fails_with_named_report(self, monkeypatch):
        # The acceptance check from the issue: nudge one engine's output and
        # the harness must fail, naming the engine, the contract and the
        # band that was exceeded.
        true_bs = repro.analytic.bs_price
        monkeypatch.setattr(repro.analytic, "bs_price",
                            lambda *a, **k: true_bs(*a, **k) + 0.05)
        report = run_oracle([_call_case()])
        assert not report.ok
        (d,) = report.discrepancies
        assert d.case == "call-1d"
        assert {d.engine_a, d.engine_b} == {"analytic", "lattice"}
        assert d.diff > d.allowed
        doc = report.to_dict()
        assert doc["ok"] is False
        assert doc["discrepancies"][0]["case"] == "call-1d"

    def test_unperturbed_baseline_passes(self):
        report = run_oracle([_call_case()])
        assert report.ok
        assert report.hashes["call-1d"] == config_hash(_call_case())


@pytest.mark.oracle
def test_full_corpus_cross_engine_agreement():
    """Every engine pair on every committed case agrees within bands."""
    report = run_oracle()
    assert report.ok, "\n".join(str(d) for d in report.discrepancies)
    assert len(report.cells) == 6
    assert sum(len(c) for c in report.cells.values()) == 19
