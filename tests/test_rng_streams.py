"""Substream construction: disjointness, determinism, scheme contracts."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.rng import (
    Lcg64,
    Philox4x32,
    StreamPartition,
    Xoshiro256StarStar,
    block_substream,
    leapfrog_substream,
    make_substreams,
)
from repro.rng.streams import streams_are_disjoint


class TestBlockSplitting:
    def test_blocks_tile_the_master_stream(self):
        master = Philox4x32(3)
        ref = master.clone().random_raw(300)
        subs = [block_substream(master, r, block_size=100) for r in range(3)]
        got = np.concatenate([s.random_raw(100) for s in subs])
        assert np.array_equal(got, ref)

    def test_validation(self):
        with pytest.raises(ValidationError):
            block_substream(Philox4x32(0), -1)
        with pytest.raises(ValidationError):
            block_substream(Philox4x32(0), 0, block_size=0)

    def test_disjointness_guard(self):
        assert streams_are_disjoint([10, 99, 100], 100)
        assert not streams_are_disjoint([10, 101], 100)


class TestLeapfrog:
    def test_leapfrog_covers_master_stream(self):
        master = Lcg64(17)
        ref = master.clone().random_raw(120)
        lanes = [leapfrog_substream(master, r, 4).random_raw(30) for r in range(4)]
        woven = np.empty(120, dtype=np.uint64)
        for r in range(4):
            woven[r::4] = lanes[r]
        assert np.array_equal(woven, ref)

    def test_requires_lcg(self):
        with pytest.raises(ValidationError, match="Lcg64"):
            leapfrog_substream(Philox4x32(0), 0, 2)

    def test_rank_bounds(self):
        with pytest.raises(ValidationError):
            leapfrog_substream(Lcg64(0), 2, 2)


class TestMakeSubstreams:
    @pytest.mark.parametrize("scheme", ["keyed", "block", "leapfrog"])
    def test_deterministic_per_scheme(self, scheme):
        master_a = Lcg64(5)
        master_b = Lcg64(5)
        subs_a = make_substreams(master_a, 4, scheme)
        subs_b = make_substreams(master_b, 4, scheme)
        for sa, sb in zip(subs_a, subs_b):
            assert np.array_equal(sa.random_raw(64), sb.random_raw(64))

    @pytest.mark.parametrize(
        "gen_cls,scheme",
        [
            (Philox4x32, "keyed"),
            (Philox4x32, "block"),
            (Lcg64, "keyed"),
            (Lcg64, "block"),
            (Lcg64, "leapfrog"),
            (Xoshiro256StarStar, "keyed"),
        ],
    )
    def test_pairwise_distinct_streams(self, gen_cls, scheme):
        subs = make_substreams(gen_cls(7), 4, scheme)
        draws = [s.random_raw(256) for s in subs]
        for i in range(4):
            for j in range(i + 1, 4):
                assert not np.array_equal(draws[i], draws[j])

    def test_substream_statistics_remain_uniform(self):
        subs = make_substreams(Philox4x32(9), 3, StreamPartition.KEYED)
        for s in subs:
            u = s.uniforms(50_000)
            assert abs(u.mean() - 0.5) < 0.01

    def test_enum_and_string_equivalent(self):
        a = make_substreams(Philox4x32(1), 2, StreamPartition.BLOCK)[1].random_raw(8)
        b = make_substreams(Philox4x32(1), 2, "block")[1].random_raw(8)
        assert np.array_equal(a, b)

    def test_invalid_nranks(self):
        with pytest.raises(ValidationError):
            make_substreams(Philox4x32(0), 0)
