"""Property tests for the columnar strip layer (Hypothesis).

The batch planner sits between the cache and the execution layer, so its
invariants are structural, not numerical:

* **round-trip** — SoA in, AoS out: a strip rebuilt from any valid request
  group returns exactly the requests it was built from, in order;
* **permutation stability** — grouping is a function of the *set* of
  requests: shuffling the submission order never changes which strips
  form or which members they contain (only the deterministic ordering
  rules change row order);
* **cache-key preservation** — batching must never touch request
  identity: every strip member keeps the exact
  :func:`~repro.serve.batching.request_key` it would have as a single,
  and the display name participates in neither key.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch import ContractStrip, batch_key, plan_batches
from repro.errors import ValidationError
from repro.market.gbm import MultiAssetGBM
from repro.payoffs import Call
from repro.serve import PricingRequest
from repro.serve.batching import request_key
from repro.workloads import Workload

MODEL = MultiAssetGBM.single(100.0, 0.2, 0.05)
EXPIRY = 1.0

strikes_st = st.lists(
    st.floats(min_value=50.0, max_value=150.0,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=8, unique=True)
seed_st = st.integers(min_value=0, max_value=2 ** 16)


def _request(strike: float, *, seed: int = 0, n_paths: int = 2_000,
             name: str = "") -> PricingRequest:
    w = Workload(name or f"k{strike:g}", MODEL, Call(strike), EXPIRY)
    return PricingRequest(w, engine="mc", n_paths=n_paths, seed=seed, p=2,
                          name=w.name)


class TestRoundTrip:
    @settings(max_examples=30, deadline=None)
    @given(strikes=strikes_st, seed=seed_st)
    def test_strip_round_trips_requests_in_order(self, strikes, seed):
        reqs = [_request(k, seed=seed) for k in strikes]
        strip = ContractStrip.from_requests(reqs)
        assert strip.to_requests() == reqs
        assert len(strip) == len(reqs)
        assert list(strip.payoffs) == [r.workload.payoff for r in reqs]

    @settings(max_examples=30, deadline=None)
    @given(strikes=strikes_st, seed=seed_st)
    def test_column_matches_member_order(self, strikes, seed):
        reqs = [_request(k, seed=seed) for k in strikes]
        strip = ContractStrip.from_requests(reqs)
        assert strip.column("strike").tolist() == pytest.approx(strikes)


class TestPermutationStability:
    @settings(max_examples=30, deadline=None)
    @given(strikes=strikes_st, seeds=st.lists(seed_st, min_size=1,
                                              max_size=3, unique=True),
           shuffle_seed=st.integers(min_value=0, max_value=2 ** 16))
    def test_grouping_invariant_under_permutation(self, strikes, seeds,
                                                  shuffle_seed):
        reqs = [_request(k, seed=s) for s in seeds for k in strikes]
        shuffled = list(reqs)
        random.Random(shuffle_seed).shuffle(shuffled)

        def group_map(plan):
            groups = {s.key: frozenset(s.keys()) for s in plan.strips}
            groups.update({request_key(r): frozenset([request_key(r)])
                           for r in plan.singles})
            return groups

        assert group_map(plan_batches(reqs)) == group_map(
            plan_batches(shuffled))

    @settings(max_examples=30, deadline=None)
    @given(strikes=strikes_st, seed=seed_st)
    def test_batch_key_constant_across_the_strip(self, strikes, seed):
        reqs = [_request(k, seed=seed) for k in strikes]
        assert len({batch_key(r) for r in reqs}) == 1
        # ...and sensitive to any engine-relevant setting:
        bumped = _request(strikes[0], seed=seed, n_paths=4_000)
        assert batch_key(bumped) != batch_key(reqs[0])


class TestCacheKeyPreservation:
    @settings(max_examples=30, deadline=None)
    @given(strikes=strikes_st, seed=seed_st)
    def test_strip_members_keep_single_request_keys(self, strikes, seed):
        reqs = [_request(k, seed=seed) for k in strikes]
        plan = plan_batches(reqs, min_strip=1)
        assert len(plan.strips) == 1
        assert plan.strips[0].keys() == [request_key(r) for r in reqs]

    @settings(max_examples=30, deadline=None)
    @given(strike=st.floats(min_value=50.0, max_value=150.0,
                            allow_nan=False, allow_infinity=False),
           seed=seed_st)
    def test_name_is_in_neither_key(self, strike, seed):
        a = _request(strike, seed=seed, name="desk-a")
        b = _request(strike, seed=seed, name="desk-b")
        assert request_key(a) == request_key(b)
        assert batch_key(a) == batch_key(b)

    @settings(max_examples=20, deadline=None)
    @given(strikes=st.lists(st.floats(min_value=50.0, max_value=150.0,
                                      allow_nan=False,
                                      allow_infinity=False),
                            min_size=2, max_size=6, unique=True),
           seed=seed_st)
    def test_mixed_key_groups_refuse_to_fuse(self, strikes, seed):
        reqs = ([_request(k, seed=seed) for k in strikes[:1]]
                + [_request(k, seed=seed + 1) for k in strikes[1:]])
        with pytest.raises(ValidationError):
            ContractStrip.from_requests(reqs)
