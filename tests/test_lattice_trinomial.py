"""Trinomial lattice."""

import math

import pytest

from repro.analytic import bs_price
from repro.errors import StabilityError, ValidationError
from repro.lattice import binomial_price, trinomial_price
from repro.payoffs import BasketCall, Call, Put


class TestConvergence:
    def test_converges_to_black_scholes(self):
        exact = bs_price(100, 100, 0.2, 0.05, 1.0)
        r = trinomial_price(100, Call(100.0), 0.2, 0.05, 1.0, 400)
        assert r.price == pytest.approx(exact, abs=5e-3)

    def test_faster_per_step_than_binomial(self):
        exact = bs_price(100, 100, 0.2, 0.05, 1.0)
        tri = trinomial_price(100, Call(100.0), 0.2, 0.05, 1.0, 100).price
        bino = binomial_price(100, Call(100.0), 0.2, 0.05, 1.0, 100).price
        assert abs(tri - exact) < abs(bino - exact) + 5e-3

    def test_put_call_parity(self):
        c = trinomial_price(100, Call(90.0), 0.25, 0.03, 2.0, 150).price
        p = trinomial_price(100, Put(90.0), 0.25, 0.03, 2.0, 150).price
        # Parity holds up to the tree's tail truncation (~1e-6 here).
        assert c - p == pytest.approx(100 - 90 * math.exp(-0.06), abs=1e-4)

    def test_dividend(self):
        exact = bs_price(100, 100, 0.2, 0.05, 1.0, dividend=0.02)
        r = trinomial_price(100, Call(100.0), 0.2, 0.05, 1.0, 300, dividend=0.02)
        assert r.price == pytest.approx(exact, abs=0.01)


class TestAmerican:
    def test_matches_binomial_american_put(self):
        tri = trinomial_price(100, Put(100.0), 0.2, 0.05, 1.0, 500, american=True)
        bino = binomial_price(100, Put(100.0), 0.2, 0.05, 1.0, 1000, american=True)
        assert tri.price == pytest.approx(bino.price, abs=0.01)


class TestStretchAndStability:
    def test_custom_stretch(self):
        exact = bs_price(100, 100, 0.2, 0.05, 1.0)
        r = trinomial_price(100, Call(100.0), 0.2, 0.05, 1.0, 300,
                            stretch=math.sqrt(1.5))
        assert r.price == pytest.approx(exact, abs=0.02)

    def test_stretch_below_one_rejected(self):
        with pytest.raises(ValidationError):
            trinomial_price(100, Call(100.0), 0.2, 0.05, 1.0, 100, stretch=0.9)

    def test_extreme_drift_raises_stability(self):
        with pytest.raises(StabilityError):
            trinomial_price(100, Call(100.0), 0.01, 0.8, 1.0, 1)

    def test_node_count(self):
        r = trinomial_price(100, Call(100.0), 0.2, 0.05, 1.0, 10)
        assert r.nodes == 121

    def test_delta_reported(self):
        r = trinomial_price(100, Call(100.0), 0.2, 0.05, 1.0, 200)
        assert 0.5 < r.delta[0] < 0.75

    def test_multi_asset_rejected(self):
        with pytest.raises(ValidationError):
            trinomial_price(100, BasketCall([1, 1], 100.0), 0.2, 0.05, 1.0, 10)
