"""CSV/Markdown exporters."""

import csv
import io

import pytest

from repro.errors import ValidationError
from repro.perf.metrics import ScalingSeries
from repro.perf.reporting import (
    series_to_csv,
    table_to_csv,
    table_to_markdown,
    write_text,
)
from repro.utils.formatting import Table


@pytest.fixture
def table():
    t = Table(["P", "T"], title="demo", floatfmt=".3f")
    t.add_row([1, 1.0])
    t.add_row([2, 0.5])
    return t


class TestCsv:
    def test_roundtrip_parses(self, table):
        text = table_to_csv(table)
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0] == ["P", "T"]
        assert rows[1] == ["1", "1.0"]
        assert len(rows) == 3

    def test_full_precision_by_default(self):
        t = Table(["x"], floatfmt=".1f")
        t.add_row([0.123456789012])
        text = table_to_csv(t)
        assert "0.123456789012" in text  # Table floatfmt NOT applied

    def test_floatfmt_opt_in(self):
        t = Table(["x", "label"])
        t.add_row([0.123456789012, "keep"])
        text = table_to_csv(t, floatfmt=".3f")
        assert "0.123" in text and "0.123456789012" not in text
        assert "keep" in text  # non-floats untouched

    def test_type_checked(self):
        with pytest.raises(ValidationError):
            table_to_csv("not a table")

    def test_cells_with_commas_and_quotes_are_escaped(self):
        t = Table(["engine", "note"])
        t.add_row(["mc, qmc", 'says "hi"'])
        text = table_to_csv(t)
        assert '"mc, qmc"' in text
        assert '"says ""hi"""' in text
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[1] == ["mc, qmc", 'says "hi"']

    def test_bare_carriage_return_is_quoted(self):
        # csv.writer with lineterminator="\n" leaves a lone \r unquoted,
        # which corrupts the row for RFC 4180 readers — the regression this
        # exporter fixes.
        t = Table(["label"])
        t.add_row(["a\rb"])
        text = table_to_csv(t)
        assert '"a\rb"' in text
        assert text.count("\n") == 2  # header + one data row, nothing split

    def test_embedded_newline_is_quoted(self):
        t = Table(["label"])
        t.add_row(["two\nlines"])
        rows = list(csv.reader(io.StringIO(table_to_csv(t))))
        assert rows[1] == ["two\nlines"]


class TestMarkdown:
    def test_structure(self, table):
        md = table_to_markdown(table)
        lines = md.splitlines()
        assert lines[0] == "**demo**"
        assert lines[2].startswith("| P | T |")
        assert set(lines[3]) <= {"|", "-", " "}
        assert "| 0.500 |" in lines[5]

    def test_no_title(self):
        t = Table(["x"])
        t.add_row([1])
        md = table_to_markdown(t)
        assert md.startswith("| x |")

    def test_type_checked(self):
        with pytest.raises(ValidationError):
            table_to_markdown(42)


class TestSeriesCsv:
    def test_columns(self):
        s = ScalingSeries(ps=(1, 2, 4), times=(1.0, 0.5, 0.25))
        rows = list(csv.reader(io.StringIO(series_to_csv(s))))
        assert rows[0] == ["p", "time_s", "speedup", "efficiency"]
        assert float(rows[3][2]) == pytest.approx(4.0)

    def test_type_checked(self):
        with pytest.raises(ValidationError):
            series_to_csv([1, 2, 3])


class TestWriteText:
    def test_creates_parents(self, tmp_path):
        target = tmp_path / "a" / "b" / "out.csv"
        out = write_text(target, "x,y\n1,2\n")
        assert out.read_text() == "x,y\n1,2\n"
