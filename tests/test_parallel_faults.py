"""Chaos suite: deterministic fault injection across SimCluster and all
three real backends.

Every test runs from a *fixed fault seed* (or a hand-written plan), so the
whole suite is reproducible run-to-run — the point of the fault layer. The
invariants exercised:

* byte-reproducibility — same fault seed ⇒ identical ``RunReport`` JSON,
  identical prices, identical simulated timelines;
* recovery exactness — ``retry`` over transient faults reproduces the
  fault-free price *bitwise* on every backend (tasks are re-copied per
  attempt, so RNG substreams are never consumed twice);
* degraded honesty — ``degrade`` reprices with the survivors and the
  reported CI widens with the reduced sample;
* policy semantics — fail_fast raises immediately, retry raises on
  exhaustion, degrade raises only when nothing survives.
"""

import pytest

from repro.core import (
    ParallelLatticePricer,
    ParallelLSMPricer,
    ParallelMCPricer,
    ParallelPDEPricer,
)
from repro.errors import FaultError, ValidationError
from repro.mc.qmc import QMCSobol
from repro.parallel import (
    FaultEvent,
    FaultKind,
    FaultPlan,
    FaultPolicy,
    ProcessBackend,
    SerialBackend,
    SimulatedCluster,
    ThreadBackend,
    plan_report,
    resilient_map,
)
from repro.payoffs import BasketCall
from repro.workloads import basket_workload

pytestmark = pytest.mark.chaos

N_PATHS = 4_000
P = 4


@pytest.fixture(scope="module")
def workload():
    return basket_workload(2)


@pytest.fixture(scope="module")
def fault_free(workload):
    w = workload
    return ParallelMCPricer(N_PATHS, seed=7).price(w.model, w.payoff, w.expiry, P)


def _price(w, *, faults=None, policy=None, backend=None, technique=None):
    pricer = ParallelMCPricer(N_PATHS, seed=7, faults=faults, policy=policy,
                              backend=backend, technique=technique)
    return pricer.price(w.model, w.payoff, w.expiry, P)


class TestPlanDeterminism:
    def test_same_seed_same_plan(self):
        kw = dict(crash_rate=0.5, straggler_rate=0.5, drop_rate=0.3,
                  corrupt_rate=0.2, permanent_rate=0.25)
        assert FaultPlan.random(42, 16, **kw) == FaultPlan.random(42, 16, **kw)

    def test_different_seeds_differ(self):
        kw = dict(crash_rate=0.5, straggler_rate=0.5)
        plans = {FaultPlan.random(s, 16, **kw).events for s in range(8)}
        assert len(plans) > 1

    def test_rates_validated(self):
        with pytest.raises(ValidationError):
            FaultPlan.random(0, 4, crash_rate=1.5)

    def test_slowdown_validated(self):
        with pytest.raises(ValidationError):
            FaultEvent(0, FaultKind.STRAGGLER, slowdown=0.5)

    def test_plan_queries(self):
        plan = FaultPlan(events=(
            FaultEvent(1, FaultKind.CRASH),
            FaultEvent(2, FaultKind.CRASH, attempt=1, permanent=True),
            FaultEvent(3, FaultKind.STRAGGLER, slowdown=2.0),
        ))
        assert plan.fault_for(1, 0) is not None
        assert plan.fault_for(1, 1) is None          # transient: strikes once
        assert plan.fault_for(2, 0) is None
        assert plan.fault_for(2, 5) is not None      # permanent: from attempt 1 on
        assert plan.fault_for(3, 0) is None          # stragglers never fail
        assert plan.slowdown(3) == 2.0
        assert plan.slowdown(0) == 1.0
        assert plan.affected_ranks() == (1, 2, 3)


class TestByteReproducibility:
    """Same fault seed ⇒ identical reports, prices and timelines."""

    def test_seeded_run_reproduces_exactly(self, workload):
        plan = FaultPlan.random(1234, P, crash_rate=0.5, straggler_rate=0.5,
                                drop_rate=0.3)
        runs = [_price(workload, faults=plan, policy="retry") for _ in range(2)]
        assert runs[0].price == runs[1].price
        assert runs[0].stderr == runs[1].stderr
        assert runs[0].sim_time == runs[1].sim_time
        r0, r1 = (r.meta["fault_report"] for r in runs)
        assert r0.to_json() == r1.to_json()

    def test_plan_report_matches_resilient_map_report(self, workload):
        """The pure (plan, policy) schedule equals the executed one."""
        plan = FaultPlan.random(99, P, crash_rate=0.6, drop_rate=0.4)
        policy = FaultPolicy(mode="retry", max_retries=4)
        run = ParallelMCPricer(N_PATHS, seed=7, faults=plan, policy=policy)
        res = run.price(workload.model, workload.payoff, workload.expiry, P)
        executed = res.meta["fault_report"]
        predicted = plan_report(plan, policy, P)
        assert executed.to_json() == predicted.to_json()


class TestRetryRecovery:
    """Recovered transient faults reproduce the fault-free run bitwise."""

    @pytest.mark.parametrize("kind", [FaultKind.CRASH, FaultKind.DROP,
                                      FaultKind.CORRUPT])
    def test_single_transient_fault_recovers_exactly(self, workload,
                                                     fault_free, kind):
        plan = FaultPlan(events=(FaultEvent(1, kind),))
        res = _price(workload, faults=plan, policy="retry")
        assert res.price == fault_free.price
        assert res.stderr == fault_free.stderr
        report = res.meta["fault_report"]
        assert report.recovered_ranks == (1,)
        assert report.n_retries == 1
        assert not report.degraded

    @pytest.mark.parametrize("backend_cls,kwargs", [
        (SerialBackend, {}),
        (ThreadBackend, {"max_workers": 2}),
        (ProcessBackend, {"max_workers": 2}),
    ])
    def test_recovery_exact_on_every_backend(self, workload, fault_free,
                                             backend_cls, kwargs):
        plan = FaultPlan(events=(
            FaultEvent(0, FaultKind.DROP),
            FaultEvent(2, FaultKind.CRASH),
        ))
        with backend_cls(**kwargs) as backend:
            res = _price(workload, faults=plan, policy="retry", backend=backend)
        assert res.price == fault_free.price

    def test_every_rank_crashing_once_still_recovers(self, workload, fault_free):
        plan = FaultPlan(events=tuple(
            FaultEvent(r, FaultKind.CRASH) for r in range(P)
        ))
        res = _price(workload, faults=plan, policy="retry")
        assert res.price == fault_free.price
        assert res.meta["fault_report"].n_retries == P

    def test_qmc_technique_recovers_exactly(self, workload):
        payoff = BasketCall(2, 100.0)
        base = ParallelMCPricer(N_PATHS, seed=7, technique=QMCSobol(replicates=8))
        ref = base.price(workload.model, payoff, workload.expiry, P)
        plan = FaultPlan.single_crash(3)
        res = ParallelMCPricer(
            N_PATHS, seed=7, technique=QMCSobol(replicates=8),
            faults=plan, policy="retry",
        ).price(workload.model, payoff, workload.expiry, P)
        assert res.price == ref.price

    def test_retry_charges_fault_time(self, workload, fault_free):
        plan = FaultPlan.single_crash(1)
        res = _price(workload, faults=plan, policy="retry")
        assert res.meta["fault_report"].faults_injected == 1
        assert res.sim_time > fault_free.sim_time  # recovery isn't free


class TestDegrade:
    def test_permanent_loss_reprices_with_survivors(self, workload, fault_free):
        plan = FaultPlan.single_crash(2, permanent=True)
        res = _price(workload, faults=plan, policy="degrade")
        report = res.meta["fault_report"]
        assert report.lost_ranks == (2,)
        assert res.meta["degraded"] is True
        # Fewer paths ⇒ honest, wider CI; price still in the right place.
        assert res.stderr > fault_free.stderr
        assert res.meta["n_paths"] < N_PATHS
        assert abs(res.price - fault_free.price) < 5 * fault_free.stderr

    def test_transient_faults_do_not_degrade(self, workload, fault_free):
        plan = FaultPlan.single_crash(0)
        res = _price(workload, faults=plan, policy="degrade")
        assert res.price == fault_free.price
        assert not res.meta["fault_report"].degraded

    def test_all_ranks_lost_raises(self, workload):
        plan = FaultPlan(events=tuple(
            FaultEvent(r, FaultKind.CRASH, permanent=True) for r in range(P)
        ))
        with pytest.raises(FaultError, match="all .* ranks lost"):
            _price(workload, faults=plan, policy="degrade")


class TestPolicies:
    def test_fail_fast_raises_immediately(self, workload):
        plan = FaultPlan.single_crash(0)
        with pytest.raises(FaultError, match="fail_fast"):
            _price(workload, faults=plan, policy="fail_fast")

    def test_retry_exhaustion_raises(self, workload):
        plan = FaultPlan.single_crash(0, permanent=True)
        with pytest.raises(FaultError, match="exhausted"):
            _price(workload, faults=plan,
                   policy=FaultPolicy(mode="retry", max_retries=2))

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValidationError):
            FaultPolicy(mode="shrug")
        with pytest.raises(ValidationError):
            FaultPolicy.parse(123)

    def test_backoff_schedule(self):
        policy = FaultPolicy(backoff_base=0.1, backoff_factor=2.0)
        assert policy.backoff_for(0) == 0.0
        assert policy.backoff_for(1) == pytest.approx(0.1)
        assert policy.backoff_for(3) == pytest.approx(0.4)

    def test_timeout_detects_straggler_and_recovers(self, workload, fault_free):
        # Attempt 0 sleeps (real injected straggler delay) past the timeout,
        # is discarded, and the retry — no longer slowed — succeeds.
        plan = FaultPlan(events=(
            FaultEvent(1, FaultKind.CRASH),  # also exercise mixed faults
            FaultEvent(0, FaultKind.STRAGGLER, slowdown=2.0),
        ))
        policy = FaultPolicy(mode="retry", timeout=120.0, straggler_sleep=0.0)
        res = _price(workload, faults=plan, policy=policy)
        assert res.price == fault_free.price


class TestTimeoutOutcome:
    def test_slow_attempt_marked_timeout(self):
        def worker(x):
            import time

            time.sleep(0.05)
            return x

        plan = FaultPlan.none()
        policy = FaultPolicy(mode="degrade", max_retries=0, timeout=0.01)
        with pytest.raises(FaultError):
            # every attempt exceeds the budget ⇒ all ranks lost
            resilient_map(SerialBackend(), worker, [1, 2], plan=plan,
                          policy=policy)

    def test_timeout_then_recovery_via_sleep_injection(self):
        plan = FaultPlan(events=(
            FaultEvent(0, FaultKind.STRAGGLER, slowdown=2.0),
        ))
        # straggler_sleep stretches attempt 0 of rank 0 past the timeout;
        # the plan applies the same slowdown to retries, so allow one loss
        # under degrade and keep rank 1 clean.
        policy = FaultPolicy(mode="degrade", max_retries=2, timeout=0.05,
                             straggler_sleep=0.2)
        results, report = resilient_map(SerialBackend(), lambda x: x * 10,
                                        [1, 2], plan=plan, policy=policy)
        assert results[1] == 20
        attempts0 = report.attempts_for(0)
        assert attempts0[0].outcome == "timeout"


class TestResilientMapUnit:
    def test_rng_streams_not_consumed_twice(self):
        """A retried task replays identical draws: the attempt runs a deep
        copy, so the parent's task (and its generator state) is untouched."""
        from repro.rng import Philox4x32

        gens = [Philox4x32(3, stream=r) for r in range(3)]
        tasks = [(g,) for g in gens]

        def draw(task):
            return float(task[0].uniforms(4).sum())

        expected, _ = resilient_map(SerialBackend(), draw,
                                    [(g.clone(),) for g in gens])
        plan = FaultPlan(events=(FaultEvent(1, FaultKind.CRASH),
                                 FaultEvent(2, FaultKind.DROP)))
        got, report = resilient_map(SerialBackend(), draw, tasks, plan=plan,
                                    policy="retry")
        assert got == expected
        assert report.recovered_ranks == (1, 2)

    def test_real_worker_exception_is_a_fault(self):
        def bomb(task):
            if task == 1:
                raise RuntimeError("boom")
            return task

        results, report = resilient_map(SerialBackend(), bomb, [0, 1, 2],
                                        policy="degrade")
        assert results == [0, None, 2]
        bad = [a for a in report.attempts if a.outcome == "error"]
        assert bad and all(a.rank == 1 and "boom" in a.detail for a in bad)
        assert report.lost_ranks == (1,)

    def test_fail_fast_propagates(self):
        def bomb(task):
            raise RuntimeError("boom")

        with pytest.raises(FaultError):
            resilient_map(SerialBackend(), bomb, [0], policy="fail_fast")


class TestDeterministicEngines:
    """Lattice/PDE/LSM: values bit-identical under faults, timeline not."""

    @pytest.fixture(scope="class")
    def model2(self, ):
        return basket_workload(2).model

    def _straggler(self):
        return FaultPlan(events=(FaultEvent(0, FaultKind.STRAGGLER,
                                            slowdown=4.0),))

    def test_lattice_values_identical_timeline_slower(self, workload):
        w = workload
        base = ParallelLatticePricer(24).price(w.model, w.payoff, w.expiry, P)
        slow = ParallelLatticePricer(24, faults=self._straggler()).price(
            w.model, w.payoff, w.expiry, P)
        assert slow.price == base.price
        assert slow.sim_time > base.sim_time

    def test_lattice_crash_retry_charges_fault_time(self, workload):
        w = workload
        plan = FaultPlan.single_crash(1)
        res = ParallelLatticePricer(24, faults=plan, policy="retry").price(
            w.model, w.payoff, w.expiry, P)
        base = ParallelLatticePricer(24).price(w.model, w.payoff, w.expiry, P)
        assert res.price == base.price
        assert res.meta["fault_report"].n_retries == 1
        assert res.sim_time > base.sim_time

    def test_pde_values_identical_under_faults(self, workload):
        w = workload
        kw = dict(n_space=24, n_time=6)
        base = ParallelPDEPricer(**kw).price(w.model, w.payoff, w.expiry, P)
        res = ParallelPDEPricer(**kw, faults=FaultPlan.single_crash(0),
                                policy="retry").price(
            w.model, w.payoff, w.expiry, P)
        assert res.price == base.price
        assert res.sim_time > base.sim_time

    def test_lsm_values_identical_under_faults(self, workload):
        w = workload
        base = ParallelLSMPricer(2000, 6, seed=11).price(
            w.model, w.payoff, w.expiry, P)
        res = ParallelLSMPricer(2000, 6, seed=11,
                                faults=FaultPlan.single_crash(2),
                                policy="retry").price(
            w.model, w.payoff, w.expiry, P)
        assert res.price == base.price
        assert res.meta["fault_report"].recovered_ranks == (2,)

    @pytest.mark.parametrize("pricer_kwargs,cls", [
        (dict(steps=24), ParallelLatticePricer),
        (dict(n_space=24, n_time=6), ParallelPDEPricer),
    ])
    def test_deterministic_engines_refuse_degrade_loss(self, workload,
                                                       pricer_kwargs, cls):
        w = workload
        plan = FaultPlan.single_crash(1, permanent=True)
        pricer = cls(**pricer_kwargs, faults=plan, policy="degrade")
        with pytest.raises(FaultError, match="cannot"):
            pricer.price(w.model, w.payoff, w.expiry, P)


class TestStripChaos:
    """Fault injection against fused contract strips.

    A worker crash mid-strip kills a whole rank's fused partial — every
    contract's share of that rank at once. ``retry`` must reproduce the
    fault-free strip bitwise (the retried task replays an identical
    generator copy), and ``degrade`` must reprice every member from the
    same surviving ranks, stably across replays.
    """

    PAYOFF_STRIKES = (90.0, 100.0, 110.0)

    def _payoffs(self):
        return [BasketCall(2, k) for k in self.PAYOFF_STRIKES]

    def _run_strip(self, w, *, faults=None, policy=None, backend=None):
        from repro.engine.mc import MCEngine
        from repro.engine.runner import run_strip

        pricer = ParallelMCPricer(N_PATHS, seed=7, faults=faults,
                                  policy=policy, backend=backend)
        return run_strip(MCEngine(pricer), w.model, self._payoffs(),
                         w.expiry, P)

    def test_crash_mid_strip_retry_is_bitwise(self, workload):
        clean = self._run_strip(workload)
        res = self._run_strip(workload, faults=FaultPlan.single_crash(1),
                              policy="retry")
        assert [r.price for r in res] == [r.price for r in clean]
        assert [r.stderr for r in res] == [r.stderr for r in clean]
        report = res[0].meta["fault_report"]
        assert report.recovered_ranks == (1,)
        assert res[0].sim_time > clean[0].sim_time  # recovery isn't free

    def test_strip_retry_matches_single_runs(self, workload):
        from repro.engine.mc import MCEngine
        from repro.engine.runner import run_engine

        res = self._run_strip(workload, faults=FaultPlan.single_crash(2),
                              policy="retry")
        pricer = ParallelMCPricer(N_PATHS, seed=7)
        singles = [run_engine(MCEngine(pricer), workload.model, py,
                              workload.expiry, P).price
                   for py in self._payoffs()]
        assert [r.price for r in res] == singles

    @pytest.mark.parametrize("backend_cls,kwargs", [
        (SerialBackend, {}),
        (ThreadBackend, {"max_workers": 2}),
        (ProcessBackend, {"max_workers": 2}),
    ])
    def test_strip_recovery_exact_on_every_backend(self, workload,
                                                   backend_cls, kwargs):
        clean = self._run_strip(workload)
        plan = FaultPlan(events=(FaultEvent(0, FaultKind.DROP),
                                 FaultEvent(2, FaultKind.CRASH)))
        with backend_cls(**kwargs) as backend:
            res = self._run_strip(workload, faults=plan, policy="retry",
                                  backend=backend)
        assert [r.price for r in res] == [r.price for r in clean]

    def test_strip_degrade_is_stable_and_honest(self, workload):
        clean = self._run_strip(workload)
        plan = FaultPlan.single_crash(2, permanent=True)
        runs = [self._run_strip(workload, faults=plan, policy="degrade")
                for _ in range(2)]
        # Replay-stable: the degraded strip is a pure function of the plan.
        assert [r.price for r in runs[0]] == [r.price for r in runs[1]]
        assert [r.stderr for r in runs[0]] == [r.stderr for r in runs[1]]
        for degraded, full in zip(runs[0], clean):
            assert degraded.meta["fault_report"].lost_ranks == (2,)
            assert degraded.stderr > full.stderr  # fewer paths, wider CI
            assert abs(degraded.price - full.price) < 5 * full.stderr


class TestFaultReportingSurface:
    def test_gantt_renders_fault_glyph(self, workload):
        w = workload
        pricer = ParallelMCPricer(N_PATHS, seed=7, record=True,
                                  faults=FaultPlan.single_crash(1),
                                  policy="retry")
        res = pricer.price(w.model, w.payoff, w.expiry, P)
        from repro.perf import render_gantt

        art = render_gantt(res.meta["cluster"])
        assert "x" in art.splitlines()[1]  # rank 1's row shows fault time
        assert "x fault" in art

    def test_run_report_exporters(self, workload):
        from repro.perf import run_report_to_csv, run_report_to_markdown

        res = _price(workload, faults=FaultPlan.single_crash(1),
                     policy="retry")
        report = res.meta["fault_report"]
        csv_text = run_report_to_csv(report)
        assert csv_text.splitlines()[0] == "rank,attempt,outcome,backoff_s,lost"
        assert any(line.startswith("1,0,crash") for line in csv_text.splitlines())
        md = run_report_to_markdown(report)
        assert "| rank | attempt | outcome |" in md
        assert "crash" in md

    def test_exporters_validate_type(self):
        from repro.perf import run_report_to_csv, run_report_to_markdown

        with pytest.raises(ValidationError):
            run_report_to_csv({"not": "a report"})
        with pytest.raises(ValidationError):
            run_report_to_markdown(42)

    def test_cluster_fault_time_in_report_dict(self, workload):
        res = _price(workload, faults=FaultPlan.single_crash(1),
                     policy="retry")
        assert res.sim_time > 0.0
        # the wasted attempt shows up in the simulated fault account
        cluster = SimulatedCluster(2)
        cluster.delay(0, 1.5, kind="fault")
        assert cluster.report()["fault_time"] == 1.5


class TestRunIdThreading:
    """The run_id correlates the RunReport, trace instants and ledger —
    without ever entering the report's canonical serialization."""

    def test_resilient_map_stamps_report_and_instants(self):
        from repro.obs import Tracer

        tracer = Tracer()
        plan = FaultPlan(events=(FaultEvent(0, FaultKind.CRASH),
                                 FaultEvent(1, FaultKind.DROP)))
        _, report = resilient_map(SerialBackend(), lambda t: t, [0, 1, 2],
                                  plan=plan, policy="retry", tracer=tracer,
                                  run_id="cafe00112233")
        assert report.run_id == "cafe00112233"
        instants = [e for e in tracer.events
                    if e.name in ("fault", "retry", "degrade")]
        assert instants
        assert all(e.args["run_id"] == "cafe00112233" for e in instants)

    def test_default_is_anonymous(self):
        from repro.obs import Tracer

        tracer = Tracer()
        _, report = resilient_map(SerialBackend(), lambda t: t, [0, 1],
                                  plan=FaultPlan.single_crash(0),
                                  policy="retry", tracer=tracer)
        assert report.run_id is None
        faults = [e for e in tracer.events if e.name == "fault"]
        assert faults and all("run_id" not in e.args for e in faults)

    def test_run_id_excluded_from_canonical_serialization(self):
        plan = FaultPlan.single_crash(0)
        _, with_id = resilient_map(SerialBackend(), lambda t: t, [0, 1],
                                   plan=plan, policy="retry",
                                   run_id="cafe00112233")
        _, without = resilient_map(SerialBackend(), lambda t: t, [0, 1],
                                   plan=plan, policy="retry")
        assert with_id.to_json() == without.to_json()
        assert "run_id" not in with_id.to_dict()
