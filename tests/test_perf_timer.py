"""Wall-clock timing helpers."""

import pytest

from repro.errors import ValidationError
from repro.obs import MetricsRegistry
from repro.perf import Timer, TimingStats, time_callable


class TestTimer:
    def test_context_manager_measures(self):
        with Timer() as t:
            sum(range(1000))
        assert t.elapsed > 0.0
        assert not t.running

    def test_explicit_start_stop_and_reuse(self):
        t = Timer()
        t.start()
        assert t.running
        first = t.stop()
        assert first == t.elapsed > 0.0
        t.start()  # reusable
        assert t.stop() > 0.0

    def test_stop_before_start_raises(self):
        with pytest.raises(ValidationError):
            Timer().stop()

    def test_double_start_raises(self):
        t = Timer().start()
        with pytest.raises(ValidationError):
            t.start()
        t.stop()


class TestTimingStats:
    def test_stats_fields(self):
        stats = TimingStats(times=(0.3, 0.1, 0.2))
        assert stats.repeats == 3
        assert stats.min == 0.1
        assert stats.mean == pytest.approx(0.2)
        assert stats.std == pytest.approx(0.1)
        assert float(stats) == stats.min  # min stays the headline

    def test_single_repeat_has_zero_std(self):
        assert TimingStats(times=(0.5,)).std == 0.0

    def test_observe_into_histogram(self):
        stats = TimingStats(times=(0.1, 0.2))
        h = MetricsRegistry().histogram("t")
        stats.observe_into(h)
        assert h.count == 2 and h.min == 0.1


class TestTimeCallable:
    def test_returns_full_stats(self):
        stats = time_callable(lambda: sum(range(2000)), repeats=4)
        assert isinstance(stats, TimingStats)
        assert stats.repeats == 4
        assert 0.0 <= stats.min <= stats.mean
        assert stats.std >= 0.0

    def test_repeats_validated(self):
        with pytest.raises(ValidationError):
            time_callable(lambda: None, repeats=0)
