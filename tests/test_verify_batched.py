"""The batched corpus replay: fused kernels vs the oracle's cells.

Unit tests cover the decoy construction and the failure mode (a perturbed
reference cell must be flagged — the gate is live, not vacuous); the
full-corpus replay is marked ``oracle`` with the other corpus-priced
suites so the CI verify lane runs it.
"""

import pytest

from repro.errors import ValidationError
from repro.payoffs import Call, CallOnMax
from repro.verify import run_batched_replay, run_determinism
from repro.verify.batched import BATCHED_FAMILIES, decoy_payoff
from repro.verify.contracts import default_corpus
from repro.verify.oracle import EngineCell


class TestDecoy:
    def test_decoy_preserves_draw_shape(self):
        payoff = CallOnMax(100.0)
        other = decoy_payoff(payoff)
        assert type(other) is CallOnMax
        assert other.dim == payoff.dim
        assert other.is_path_dependent == payoff.is_path_dependent
        assert other.strike == payoff.strike + 1.0
        assert payoff.strike == 100.0  # original untouched

    def test_strikeless_payoff_rejected(self):
        class Weird:
            pass

        with pytest.raises(ValidationError, match="strike"):
            decoy_payoff(Weird())


class TestReplayHarness:
    def test_perturbed_cell_is_flagged(self):
        """The replay must detect a reference that moved by one ulp — feed
        it a deliberately corrupted oracle cell and demand a FAIL."""
        import math

        corpus = [c for c in default_corpus()
                  if c.name == "geometric-basket-d4"]
        good = run_batched_replay(corpus)
        checked = [r for r in good if not r.skipped]
        assert checked and all(r.ok for r in checked)

        target = checked[0]
        price = target.detail["price"]
        bad_cell = EngineCell(target.engine,
                              math.nextafter(price, math.inf),
                              0.0, {"stderr": 0.0})
        bad = run_batched_replay(
            corpus, cells_by_case={corpus[0].name: {target.engine: bad_cell}})
        flagged = [r for r in bad if r.engine == target.engine]
        assert flagged and not flagged[0].ok

    def test_cells_reuse_matches_recompute(self):
        from repro.verify.oracle import run_oracle

        corpus = [c for c in default_corpus() if c.name == "rainbow-max-call"]
        oracle = run_oracle(corpus, engines=("mc", "lattice"))
        reused = run_batched_replay(corpus, cells_by_case=oracle.cells)
        fresh = run_batched_replay(corpus)
        assert [(r.case, r.engine, r.ok, r.skipped) for r in reused] == \
               [(r.case, r.engine, r.ok, r.skipped) for r in fresh]

    def test_unknown_family_not_replayed(self):
        assert set(BATCHED_FAMILIES) == {"mc", "qmc", "lattice"}


@pytest.mark.oracle
class TestFullCorpusReplay:
    def test_every_batchable_cell_replays_bitwise(self):
        results = run_batched_replay()
        failures = [r for r in results if not r.ok]
        assert not failures, "\n".join(str(r) for r in failures)
        # Coverage shape: every mc/qmc cell replays; only the 1-d lattice
        # cells (CRR recursion, no BEG target) are skipped.
        skipped = [r for r in results if r.skipped]
        assert all(r.engine == "lattice" for r in skipped)
        replayed = [(r.case, r.engine) for r in results if not r.skipped]
        for case in default_corpus():
            for family in ("mc", "qmc"):
                if family in case.engines:
                    assert (case.name, family) in replayed


class TestDeterminismToggle:
    def test_batched_false_skips_strip_check(self):
        names_on = {r.check for r in run_determinism(n_paths=2_048, seed=3)}
        names_off = {r.check
                     for r in run_determinism(n_paths=2_048, seed=3,
                                              batched=False)}
        assert "strip-batching" in names_on
        assert "strip-batching" not in names_off
        assert names_off == names_on - {"strip-batching"}

    def test_cli_flags_parse(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(["verify", "--no-batched"])
        assert args.batched is False
        args = parser.parse_args(["verify"])
        assert args.batched is True
        args = parser.parse_args(["serve", "--batched", "--book", "strip",
                                  "--min-strip", "4"])
        assert args.batched and args.book == "strip" and args.min_strip == 4
