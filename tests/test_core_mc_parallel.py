"""Parallel MC pricer: estimator invariance, scaling shape, accounting."""

import math

import numpy as np
import pytest

from repro.analytic import bs_price, geometric_basket_price
from repro.core import ParallelMCPricer, WorkModel
from repro.errors import ValidationError
from repro.market import MultiAssetGBM
from repro.mc import Antithetic, ControlVariate, MonteCarloEngine, QMCSobol
from repro.parallel import MachineSpec, ProcessBackend, SerialBackend, ThreadBackend
from repro.payoffs import AsianGeometricCall, BasketCall, Call, GeometricBasketCall
from repro.rng.streams import StreamPartition

N = 64_000


class TestEstimatorInvariance:
    def test_backend_independence(self, model_4d):
        payoff = BasketCall([0.25] * 4, 100.0)
        results = {}
        for backend in (SerialBackend(), ThreadBackend(2), ProcessBackend(2)):
            pricer = ParallelMCPricer(N, seed=3, backend=backend)
            results[backend.name] = pricer.price(model_4d, payoff, 1.0, 4)
            backend.close()
        prices = {r.price for r in results.values()}
        stderrs = {r.stderr for r in results.values()}
        assert len(prices) == 1, "price must not depend on the backend"
        assert len(stderrs) == 1

    def test_p1_with_block_scheme_matches_sequential_engine(self, model_1d):
        # Block splitting at P=1 jumps rank 0 by 0 — the substream IS the
        # master stream, so the parallel estimate equals the sequential one.
        seq = MonteCarloEngine(N, seed=7).price(model_1d, Call(100.0), 1.0)
        par = ParallelMCPricer(N, seed=7, scheme=StreamPartition.BLOCK).price(
            model_1d, Call(100.0), 1.0, 1
        )
        assert par.price == pytest.approx(seq.price, rel=1e-12)

    def test_accuracy_within_ci_at_many_ranks(self, model_4d):
        w = [0.25] * 4
        exact = geometric_basket_price(model_4d, w, 100.0, 1.0)
        r = ParallelMCPricer(N, seed=5).price(
            model_4d, GeometricBasketCall(w, 100.0), 1.0, 16
        )
        assert abs(r.price - exact) < 4 * r.stderr + 1e-3

    def test_qmc_estimate_is_p_invariant(self, model_4d):
        # QMC ranks split one shared point set by blocks ⇒ identical sums.
        payoff = BasketCall([0.25] * 4, 100.0)
        pricer = ParallelMCPricer(32_000, technique=QMCSobol(8), seed=1)
        p1 = pricer.price(model_4d, payoff, 1.0, 1)
        p5 = pricer.price(model_4d, payoff, 1.0, 5)
        assert p5.price == pytest.approx(p1.price, rel=1e-12)

    @pytest.mark.parametrize("scheme", ["keyed", "block", "leapfrog"])
    def test_schemes_agree_within_error(self, model_1d, scheme):
        from repro.rng import Lcg64

        # Leapfrog needs an LCG master; build via scheme-specific pricer.
        pricer = ParallelMCPricer(N, seed=11, scheme=scheme)
        if scheme == "leapfrog":
            # leapfrog requires Lcg64: patch tasks through a master override
            # (task building lives in the pipeline engine since the
            # repro.engine refactor)
            import repro.engine.mc as mce

            orig = mce.Philox4x32
            mce.Philox4x32 = lambda seed, stream=0: Lcg64(seed)
            try:
                r = pricer.price(model_1d, Call(100.0), 1.0, 4)
            finally:
                mce.Philox4x32 = orig
        else:
            r = pricer.price(model_1d, Call(100.0), 1.0, 4)
        exact = bs_price(100, 100, 0.2, 0.05, 1.0)
        assert abs(r.price - exact) < 5 * r.stderr

    def test_variance_reduction_composes_with_parallelism(self, model_4d):
        w = [0.25] * 4
        exact_g = geometric_basket_price(model_4d, w, 100.0, 1.0)
        cv = ControlVariate(GeometricBasketCall(w, 100.0), exact_g)
        plain = ParallelMCPricer(N, seed=9).price(model_4d, BasketCall(w, 100.0),
                                                  1.0, 8)
        ctrl = ParallelMCPricer(N, technique=cv, seed=9).price(
            model_4d, BasketCall(w, 100.0), 1.0, 8
        )
        assert ctrl.stderr < 0.2 * plain.stderr

    def test_antithetic_parallel(self, model_1d):
        r = ParallelMCPricer(N, technique=Antithetic(), seed=13).price(
            model_1d, Call(100.0), 1.0, 8
        )
        assert abs(r.price - bs_price(100, 100, 0.2, 0.05, 1.0)) < 5 * r.stderr

    def test_path_dependent_parallel(self, model_1d):
        from repro.analytic import geometric_asian_price

        r = ParallelMCPricer(N, steps=12, seed=15).price(
            model_1d, AsianGeometricCall(100.0), 1.0, 8
        )
        exact = geometric_asian_price(100, 100, 0.2, 0.05, 1.0, 12)
        assert abs(r.price - exact) < 5 * r.stderr


class TestScalingShape:
    def test_near_linear_speedup(self, model_4d):
        payoff = BasketCall([0.25] * 4, 100.0)
        pricer = ParallelMCPricer(200_000, seed=1)
        results = pricer.sweep(model_4d, payoff, 1.0, [1, 2, 4, 8, 16, 32])
        t1 = results[0].sim_time
        speedups = [t1 / r.sim_time for r in results]
        # MC with an O(1) reduction payload: ≥ 90% efficiency at P=16.
        assert speedups[4] > 16 * 0.90
        assert speedups[5] > 32 * 0.80
        # Monotone in P across this range.
        assert all(b > a for a, b in zip(speedups, speedups[1:]))

    def test_comm_fraction_grows_with_p(self, model_4d):
        payoff = BasketCall([0.25] * 4, 100.0)
        pricer = ParallelMCPricer(100_000, seed=1)
        r2 = pricer.price(model_4d, payoff, 1.0, 2)
        r32 = pricer.price(model_4d, payoff, 1.0, 32)
        assert r32.comm_fraction > r2.comm_fraction

    def test_linear_reduce_slower_than_tree_at_scale(self, model_4d):
        payoff = BasketCall([0.25] * 4, 100.0)
        tree = ParallelMCPricer(50_000, seed=1, reduce_topology="tree").price(
            model_4d, payoff, 1.0, 32
        )
        linear = ParallelMCPricer(50_000, seed=1, reduce_topology="linear").price(
            model_4d, payoff, 1.0, 32
        )
        assert linear.sim_time > tree.sim_time
        # The reduction order differs between topologies, so the prices
        # agree only to floating-point association (as on a real machine).
        assert linear.price == pytest.approx(tree.price, rel=1e-12)

    def test_work_model_scales_time_not_shape(self, model_1d):
        base = ParallelMCPricer(50_000, seed=1).price(model_1d, Call(100.0), 1.0, 4)
        doubled = ParallelMCPricer(
            50_000, seed=1, work=WorkModel().scaled(2.0)
        ).price(model_1d, Call(100.0), 1.0, 4)
        assert doubled.compute_time == pytest.approx(2 * base.compute_time, rel=1e-9)

    def test_slow_network_hurts(self, model_1d):
        fast = MachineSpec(alpha=5e-6, beta=1e-9)
        slow = MachineSpec(alpha=500e-6, beta=1e-7)
        rf = ParallelMCPricer(50_000, seed=1, spec=fast).price(
            model_1d, Call(100.0), 1.0, 16
        )
        rs = ParallelMCPricer(50_000, seed=1, spec=slow).price(
            model_1d, Call(100.0), 1.0, 16
        )
        assert rs.comm_time > rf.comm_time
        assert rs.price == rf.price


class TestValidation:
    def test_more_ranks_than_paths(self, model_1d):
        with pytest.raises(ValidationError):
            ParallelMCPricer(4, seed=1).price(model_1d, Call(100.0), 1.0, 8)

    def test_dim_mismatch(self, model_2d):
        with pytest.raises(ValidationError):
            ParallelMCPricer(1000).price(model_2d, Call(100.0), 1.0, 2)

    def test_qmc_divisibility(self, model_1d):
        with pytest.raises(ValidationError, match="multiple"):
            ParallelMCPricer(1001, technique=QMCSobol(8)).price(
                model_1d, Call(100.0), 1.0, 2
            )

    def test_bad_topology(self):
        with pytest.raises(ValidationError):
            ParallelMCPricer(100, reduce_topology="butterfly")

    def test_meta_records_counts(self, model_1d):
        r = ParallelMCPricer(1000, seed=1).price(model_1d, Call(100.0), 1.0, 3)
        assert sum(r.meta["counts"]) == 1000
        assert r.meta["technique"] == "plain"
        assert r.engine == "mc"
