"""Tests for the golden-master store (repro.verify.golden)."""

from __future__ import annotations

import json

import pytest

from repro.errors import ValidationError
from repro.market import MultiAssetGBM
from repro.payoffs import Call
from repro.verify.contracts import VerifyCase
from repro.verify.golden import (SNAPSHOT_VERSION, build_snapshot,
                                 diff_golden, load_snapshot, save_snapshot)
from repro.workloads.generators import Workload


def _tiny_corpus(steps: int = 64) -> list[VerifyCase]:
    model = MultiAssetGBM.single(100.0, 0.2, 0.05)
    return [VerifyCase(
        name="call-1d",
        workload=Workload("call-1d", model, Call(100.0), 1.0),
        engines={
            "analytic": {"kind": "bs", "spot": 100.0, "strike": 100.0,
                         "vol": 0.2, "rate": 0.05, "expiry": 1.0,
                         "option": "call"},
            "lattice": {"steps": steps},
        },
    )]


def test_snapshot_round_trip(tmp_path):
    corpus = _tiny_corpus()
    snapshot = build_snapshot(corpus)
    path = tmp_path / "golden.json"
    save_snapshot(snapshot, path)
    report = diff_golden(load_snapshot(path), corpus)
    assert report.ok
    # Seeded/deterministic engines reproduce bitwise: diffs of exactly 0.
    assert all(d.diff == 0.0 for d in report.deltas)
    assert len(report.deltas) == 2


def test_snapshot_file_is_reviewable_json(tmp_path):
    path = tmp_path / "golden.json"
    save_snapshot(build_snapshot(_tiny_corpus()), path)
    doc = json.loads(path.read_text())
    assert doc["version"] == SNAPSHOT_VERSION
    cell = doc["cases"]["call-1d"]["engines"]["analytic"]
    assert set(cell) >= {"price", "band"}
    # Stable formatting: a rebaseline diffs number by number.
    assert path.read_text() == path.read_text()


def test_price_drift_is_flagged_with_names(tmp_path):
    corpus = _tiny_corpus()
    snapshot = build_snapshot(corpus)
    snapshot["cases"]["call-1d"]["engines"]["analytic"]["price"] += 1.0
    report = diff_golden(snapshot, corpus)
    assert not report.ok
    (bad,) = report.failures
    assert (bad.case, bad.engine, bad.status) == ("call-1d", "analytic",
                                                  "drift")
    assert bad.diff == pytest.approx(1.0)
    assert bad.diff > bad.allowed
    text = str(bad)
    assert "call-1d" in text and "analytic" in text and "allowed" in text


def test_changed_case_definition_demands_rebaseline():
    snapshot = build_snapshot(_tiny_corpus(steps=64))
    report = diff_golden(snapshot, _tiny_corpus(steps=128))
    (bad,) = report.failures
    assert bad.status == "hash-mismatch"
    assert "--update" in bad.detail


def test_coverage_changes_are_reported():
    corpus = _tiny_corpus()
    snapshot = build_snapshot(corpus)
    # Corpus case absent from the snapshot → "extra"; snapshot case gone
    # from the corpus → "missing". Neither is silently ignored.
    report = diff_golden({"version": SNAPSHOT_VERSION, "cases": {}}, corpus)
    assert [d.status for d in report.deltas] == ["extra"]
    report = diff_golden(snapshot, [])
    assert [d.status for d in report.deltas] == ["missing"]


def test_missing_snapshot_has_actionable_error(tmp_path):
    with pytest.raises(ValidationError, match="--update"):
        load_snapshot(tmp_path / "nope.json")


def test_version_mismatch_rejected(tmp_path):
    path = tmp_path / "golden.json"
    path.write_text(json.dumps({"version": 999, "cases": {}}))
    with pytest.raises(ValidationError, match="version"):
        load_snapshot(path)


def test_report_to_dict_structure(tmp_path):
    corpus = _tiny_corpus()
    report = diff_golden(build_snapshot(corpus), corpus)
    doc = report.to_dict()
    assert doc["ok"] is True
    assert doc["n_cells"] == 2 and doc["n_failures"] == 0


@pytest.mark.oracle
def test_committed_golden_corpus_replays_clean():
    """The snapshot in git must match a fresh pricing of the full corpus."""
    from pathlib import Path

    snapshot = load_snapshot(Path(__file__).parent / "golden"
                             / "verify_corpus.json")
    report = diff_golden(snapshot)
    assert report.ok, "\n".join(str(d) for d in report.failures)
    assert all(d.diff == 0.0 for d in report.deltas)
