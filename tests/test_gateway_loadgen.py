"""Tests for the seeded load generator and the virtual cost model.

A schedule must be a pure function of its config — same seed, same
arrivals, same contracts, same lanes, same deadlines, object for
object. That is what the gateway determinism check and the overload
acceptance tier stand on, so it is pinned here directly, alongside the
statistical shape (arrival rate, lane mix, deadline ranges) and the
capacity formula the goodput gates divide by.
"""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.gateway.loadgen import (DEFAULT_LANES, CostModel, LaneMix,
                                   LoadgenConfig, build_book, capacity,
                                   open_loop_schedule, request_stream)
from repro.serve.batching import request_key


def test_schedule_is_deterministic_in_config():
    cfg = LoadgenConfig(seed=11, rate=300.0, duration_s=2.0)
    a = open_loop_schedule(cfg)
    b = open_loop_schedule(cfg)
    assert len(a) == len(b) > 0
    for (ta, ga), (tb, gb) in zip(a, b):
        assert ta == tb
        assert ga.lane == gb.lane
        assert ga.deadline_s == gb.deadline_s
        assert request_key(ga.request) == request_key(gb.request)


def test_different_seeds_differ():
    a = open_loop_schedule(LoadgenConfig(seed=1, rate=200.0, duration_s=1.0))
    b = open_loop_schedule(LoadgenConfig(seed=2, rate=200.0, duration_s=1.0))
    assert [t for t, _ in a] != [t for t, _ in b]


def test_arrivals_are_ordered_inside_the_window():
    cfg = LoadgenConfig(seed=5, rate=500.0, duration_s=2.0)
    times = [t for t, _ in open_loop_schedule(cfg)]
    assert times == sorted(times)
    assert 0.0 < times[0] and times[-1] < cfg.duration_s
    # Poisson arrivals at 500/s over 2s: ~1000 expected; 6-sigma slack.
    assert 800 <= len(times) <= 1200


def test_lane_mix_and_deadline_ranges():
    cfg = LoadgenConfig(seed=3, rate=1000.0, duration_s=2.0)
    schedule = open_loop_schedule(cfg)
    by_lane = {m.lane: m for m in cfg.lanes}
    counts = dict.fromkeys(by_lane, 0)
    for _, greq in schedule:
        counts[greq.lane] += 1
        mix = by_lane[greq.lane]
        lo = cfg.deadline_scale_s * mix.deadline_lo_s
        hi = cfg.deadline_scale_s * mix.deadline_hi_s
        assert lo <= greq.deadline_s <= hi
    total = sum(counts.values())
    for mix in cfg.lanes:
        share = counts[mix.lane] / total
        expect = mix.weight / cfg.total_weight
        assert abs(share - expect) < 0.1, (mix.lane, share, expect)


def test_unique_flag_controls_cache_keys():
    fresh = open_loop_schedule(LoadgenConfig(seed=0, rate=300.0,
                                             duration_s=1.0, unique=True))
    keys = {request_key(g.request) for _, g in fresh}
    assert len(keys) == len(fresh)          # all-miss traffic
    hot = open_loop_schedule(LoadgenConfig(seed=0, rate=300.0,
                                           duration_s=1.0, unique=False,
                                           n_contracts=8))
    hot_keys = {request_key(g.request) for _, g in hot}
    assert len(hot_keys) <= 8               # replayed book


def test_request_stream_matches_schedule_requests():
    cfg = LoadgenConfig(seed=9, rate=200.0, duration_s=1.0)
    schedule = open_loop_schedule(cfg)
    stream = request_stream(cfg)
    for _, greq in schedule:
        from_stream = next(stream)
        assert request_key(from_stream.request) == request_key(greq.request)
        assert from_stream.lane == greq.lane


def test_books():
    strip = build_book(LoadgenConfig(book="strip", n_contracts=6))
    folio = build_book(LoadgenConfig(book="portfolio", n_contracts=6))
    assert len(strip) == len(folio) == 6


def test_cost_model_and_capacity():
    cost = CostModel(base_s=1e-3, per_path_s=1e-6, hit_s=1e-4)
    cfg = LoadgenConfig(n_paths=4_000)
    req = open_loop_schedule(
        LoadgenConfig(rate=100.0, duration_s=1.0, n_paths=4_000))[0][1].request
    assert cost.miss_s(req) == pytest.approx(5e-3)
    assert cost.service_s(req, hit=True) == pytest.approx(1e-4)
    assert cost.service_s(req, hit=False) == pytest.approx(5e-3)
    # capacity = n_shards / miss_s, linear in shards.
    assert capacity(cfg, cost, 1) == pytest.approx(200.0)
    assert capacity(cfg, cost, 4) == pytest.approx(800.0)


def test_validation():
    with pytest.raises(ValidationError):
        LoadgenConfig(rate=0.0)
    with pytest.raises(ValidationError):
        LoadgenConfig(book="flat")
    with pytest.raises(ValidationError):
        LoadgenConfig(lanes=())
    with pytest.raises(ValidationError):
        LaneMix("standard", 1.0, 2.0, 1.0)   # hi < lo
    with pytest.raises(ValidationError):
        LaneMix("vip", 1.0, 1.0, 2.0)        # unknown lane
    with pytest.raises(ValidationError):
        CostModel(base_s=0.0)
    assert DEFAULT_LANES[0].lane == "interactive"
