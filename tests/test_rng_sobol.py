"""Sobol sequences: net structure, skipping, scrambling, QMC advantage."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.rng import SOBOL_MAX_DIM, SobolSequence


class TestStructure:
    def test_first_dimension_is_van_der_corput(self):
        pts = SobolSequence(1).next(8)[:, 0]
        # Van der Corput base 2 (offset by the half-ulp centering).
        expected = np.array([0.0, 0.5, 0.75, 0.25, 0.375, 0.875, 0.625, 0.125])
        assert np.allclose(pts, expected, atol=1e-9)

    @pytest.mark.parametrize("dim", [1, 2, 5, 13, SOBOL_MAX_DIM])
    def test_perfect_1d_stratification(self, dim):
        # Any 2^k-point prefix puts exactly one point in each dyadic bin,
        # in every coordinate — the defining (t,m,s)-net property at k bits.
        n = 256
        pts = SobolSequence(dim).next(n)
        for j in range(dim):
            hist, _ = np.histogram(pts[:, j], bins=16, range=(0.0, 1.0))
            assert np.all(hist == n // 16), f"dim {j} not stratified"

    def test_2d_pairwise_stratification(self):
        # 2-D projections of a Sobol net fill a 4x4 grid with 16 points each.
        pts = SobolSequence(2).next(256)
        hist, _, _ = np.histogram2d(pts[:, 0], pts[:, 1], bins=4,
                                    range=[[0, 1], [0, 1]])
        assert np.all(hist == 16)

    def test_points_in_open_interval(self):
        pts = SobolSequence(8).next(1024)
        assert pts.min() > 0.0 and pts.max() < 1.0


class TestSkipAndSpawn:
    @given(st.integers(0, 500), st.integers(1, 200))
    def test_skip_matches_offset_generation(self, skip, n):
        ref = SobolSequence(3).next(skip + n)
        s = SobolSequence(3, skip=skip)
        assert np.allclose(s.next(n), ref[skip:])

    def test_skip_method(self):
        s = SobolSequence(2)
        s.skip(10)
        assert s.position == 10
        ref = SobolSequence(2).next(15)
        assert np.allclose(s.next(5), ref[10:])

    def test_spawn_block_partitions_the_sequence(self):
        whole = SobolSequence(4).next(100)
        base = SobolSequence(4)
        blocks = [base.spawn_block(r, 25).next(25) for r in range(4)]
        assert np.allclose(np.concatenate(blocks), whole)

    def test_spawn_block_validation(self):
        with pytest.raises(ValidationError):
            SobolSequence(2).spawn_block(-1, 10)
        with pytest.raises(ValidationError):
            SobolSequence(2).spawn_block(0, 0)


class TestScrambling:
    def test_scramble_changes_points_deterministically(self):
        a = SobolSequence(3, scramble=True, seed=1).next(16)
        b = SobolSequence(3, scramble=True, seed=1).next(16)
        c = SobolSequence(3, scramble=True, seed=2).next(16)
        assert np.allclose(a, b)
        assert not np.allclose(a, c)

    def test_digital_shift_preserves_stratification(self):
        pts = SobolSequence(3, scramble=True, seed=9).next(256)
        for j in range(3):
            hist, _ = np.histogram(pts[:, j], bins=16, range=(0.0, 1.0))
            assert np.all(hist == 16)


class TestQMCAdvantage:
    def test_sobol_integrates_smooth_function_better_than_mc(self):
        # ∫ over [0,1]^5 of Π(2·u_i) equals 1; Sobol should beat MC by a lot.
        from repro.rng import Philox4x32

        n = 4096
        dim = 5
        sob = SobolSequence(dim, skip=1).next(n)
        qmc_est = np.prod(2.0 * sob, axis=1).mean()
        mc = Philox4x32(3).uniforms(n * dim).reshape(n, dim)
        mc_est = np.prod(2.0 * mc, axis=1).mean()
        assert abs(qmc_est - 1.0) < abs(mc_est - 1.0)
        assert abs(qmc_est - 1.0) < 5e-3


class TestValidation:
    def test_dimension_bounds(self):
        with pytest.raises(ValidationError):
            SobolSequence(0)
        with pytest.raises(ValidationError):
            SobolSequence(SOBOL_MAX_DIM + 1)

    def test_negative_skip_rejected(self):
        with pytest.raises(ValidationError):
            SobolSequence(1, skip=-1)
        s = SobolSequence(1)
        with pytest.raises(ValidationError):
            s.skip(-1)

    def test_negative_n_rejected(self):
        with pytest.raises(ValidationError):
            SobolSequence(1).next(-1)
