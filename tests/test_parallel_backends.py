"""Execution backends: order preservation, result equality, resource cleanup."""

import os

import pytest

from repro.errors import ValidationError
from repro.parallel import ProcessBackend, SerialBackend, ThreadBackend
from repro.parallel.backends import make_backend


def _square(x):
    return x * x


def _raise(_):
    raise RuntimeError("worker exploded")


class TestSerial:
    def test_maps_in_order(self):
        assert SerialBackend().map(_square, [1, 2, 3]) == [1, 4, 9]

    def test_empty(self):
        assert SerialBackend().map(_square, []) == []


class TestThread:
    def test_maps_in_order(self):
        backend = ThreadBackend(4)
        try:
            assert backend.map(_square, list(range(20))) == [i * i for i in range(20)]
        finally:
            backend.close()

    def test_pool_reused_across_maps(self):
        backend = ThreadBackend(2)
        try:
            a = backend.map(_square, [1, 2])
            b = backend.map(_square, [3, 4])
            assert a == [1, 4] and b == [9, 16]
        finally:
            backend.close()

    def test_close_idempotent(self):
        backend = ThreadBackend(1)
        backend.map(_square, [1])
        backend.close()
        backend.close()

    def test_worker_count_validated(self):
        with pytest.raises(ValidationError):
            ThreadBackend(0)


@pytest.mark.skipif(os.name != "posix", reason="fork backend is POSIX-only")
class TestProcess:
    def test_maps_in_order(self):
        backend = ProcessBackend(2)
        try:
            assert backend.map(_square, [1, 2, 3, 4]) == [1, 4, 9, 16]
        finally:
            backend.close()

    def test_worker_exception_wrapped(self):
        from repro.errors import BackendError

        backend = ProcessBackend(1)
        try:
            with pytest.raises(BackendError):
                backend.map(_raise, [1])
        finally:
            backend.close()


class TestEquivalence:
    def test_all_backends_same_results(self):
        tasks = list(range(17))
        expected = [t * t for t in tasks]
        backends = [SerialBackend(), ThreadBackend(3), ProcessBackend(2)]
        try:
            for b in backends:
                assert b.map(_square, tasks) == expected, b.name
        finally:
            for b in backends:
                b.close()


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("serial", SerialBackend),
        ("thread", ThreadBackend),
        ("process", ProcessBackend),
    ])
    def test_factory_dispatch(self, name, cls):
        b = make_backend(name, 1)
        assert isinstance(b, cls)
        b.close()

    def test_unknown_backend(self):
        with pytest.raises(ValidationError):
            make_backend("gpu")


class TestLifecycle:
    """close() is idempotent, backends are context managers, and a closed
    backend refuses to map."""

    @pytest.mark.parametrize("factory", [
        SerialBackend,
        lambda: ThreadBackend(2),
        lambda: ProcessBackend(2),
    ])
    def test_context_manager_maps_then_closes(self, factory):
        with factory() as backend:
            assert backend.map(_square, [2, 3]) == [4, 9]
            assert not backend.closed
        assert backend.closed

    @pytest.mark.parametrize("factory", [
        SerialBackend,
        lambda: ThreadBackend(1),
        lambda: ProcessBackend(1),
    ])
    def test_map_after_close_raises(self, factory):
        from repro.errors import BackendError

        backend = factory()
        backend.close()
        backend.close()  # idempotent
        with pytest.raises(BackendError, match="closed"):
            backend.map(_square, [1])

    def test_reentering_closed_backend_raises(self):
        from repro.errors import BackendError

        backend = SerialBackend()
        backend.close()
        with pytest.raises(BackendError):
            with backend:
                pass

    @pytest.mark.skipif(os.name != "posix", reason="fork backend is POSIX-only")
    def test_process_backend_leaks_no_workers_after_crashed_map(self):
        import multiprocessing

        from repro.errors import BackendError

        before = {p.pid for p in multiprocessing.active_children()}
        backend = ProcessBackend(2)
        with pytest.raises(BackendError):
            backend.map(_raise, [1, 2])
        backend.close()  # must terminate, not hang, after the crash
        backend.close()
        leaked = [
            p for p in multiprocessing.active_children()
            if p.pid not in before
        ]
        for p in leaked:
            p.join(timeout=5)
        leaked = [
            p for p in multiprocessing.active_children()
            if p.pid not in before
        ]
        assert leaked == []


class TestCrossBackendDeterminism:
    """The paper's speedup claims require every backend to compute the same
    answer: MC prices must be *bitwise* identical across serial, thread and
    process execution — and stay identical when the retry path replays a
    rank (guarding against RNG substream double-consumption)."""

    @pytest.fixture(scope="class")
    def workload(self):
        from repro.workloads import basket_workload

        return basket_workload(3)

    def _mc_price(self, w, backend, **kwargs):
        from repro.core import ParallelMCPricer

        pricer = ParallelMCPricer(6_000, seed=13, backend=backend, **kwargs)
        return pricer.price(w.model, w.payoff, w.expiry, 4)

    def test_mc_price_bitwise_identical_across_backends(self, workload):
        with SerialBackend() as serial:
            ref = self._mc_price(workload, serial)
        for factory in (lambda: ThreadBackend(2), lambda: ProcessBackend(2)):
            with factory() as backend:
                res = self._mc_price(workload, backend)
            assert res.price == ref.price, backend.name
            assert res.stderr == ref.stderr, backend.name

    def test_retry_path_matches_fault_free_on_all_backends(self, workload):
        from repro.parallel import FaultEvent, FaultKind, FaultPlan

        with SerialBackend() as serial:
            ref = self._mc_price(workload, serial)
        plan = FaultPlan(events=(FaultEvent(0, FaultKind.CRASH),
                                 FaultEvent(3, FaultKind.CORRUPT)))
        for factory in (SerialBackend, lambda: ThreadBackend(2),
                        lambda: ProcessBackend(2)):
            with factory() as backend:
                res = self._mc_price(workload, backend, faults=plan,
                                     policy="retry")
            assert res.price == ref.price, backend.name
