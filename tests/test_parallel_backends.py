"""Execution backends: order preservation, result equality, resource cleanup."""

import os

import pytest

from repro.errors import ValidationError
from repro.parallel import ProcessBackend, SerialBackend, ThreadBackend
from repro.parallel.backends import make_backend


def _square(x):
    return x * x


def _raise(_):
    raise RuntimeError("worker exploded")


class TestSerial:
    def test_maps_in_order(self):
        assert SerialBackend().map(_square, [1, 2, 3]) == [1, 4, 9]

    def test_empty(self):
        assert SerialBackend().map(_square, []) == []


class TestThread:
    def test_maps_in_order(self):
        backend = ThreadBackend(4)
        try:
            assert backend.map(_square, list(range(20))) == [i * i for i in range(20)]
        finally:
            backend.close()

    def test_pool_reused_across_maps(self):
        backend = ThreadBackend(2)
        try:
            a = backend.map(_square, [1, 2])
            b = backend.map(_square, [3, 4])
            assert a == [1, 4] and b == [9, 16]
        finally:
            backend.close()

    def test_close_idempotent(self):
        backend = ThreadBackend(1)
        backend.map(_square, [1])
        backend.close()
        backend.close()

    def test_worker_count_validated(self):
        with pytest.raises(ValidationError):
            ThreadBackend(0)


@pytest.mark.skipif(os.name != "posix", reason="fork backend is POSIX-only")
class TestProcess:
    def test_maps_in_order(self):
        backend = ProcessBackend(2)
        try:
            assert backend.map(_square, [1, 2, 3, 4]) == [1, 4, 9, 16]
        finally:
            backend.close()

    def test_worker_exception_wrapped(self):
        from repro.errors import BackendError

        backend = ProcessBackend(1)
        try:
            with pytest.raises(BackendError):
                backend.map(_raise, [1])
        finally:
            backend.close()


class TestEquivalence:
    def test_all_backends_same_results(self):
        tasks = list(range(17))
        expected = [t * t for t in tasks]
        backends = [SerialBackend(), ThreadBackend(3), ProcessBackend(2)]
        try:
            for b in backends:
                assert b.map(_square, tasks) == expected, b.name
        finally:
            for b in backends:
                b.close()


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("serial", SerialBackend),
        ("thread", ThreadBackend),
        ("process", ProcessBackend),
    ])
    def test_factory_dispatch(self, name, cls):
        b = make_backend(name, 1)
        assert isinstance(b, cls)
        b.close()

    def test_unknown_backend(self):
        with pytest.raises(ValidationError):
            make_backend("gpu")
