"""Execution backends: order preservation, result equality, resource cleanup."""

import os

import pytest

from repro.errors import ValidationError
from repro.parallel import ProcessBackend, SerialBackend, ThreadBackend
from repro.parallel.backends import make_backend


def _square(x):
    return x * x


def _raise(_):
    raise RuntimeError("worker exploded")


class TestSerial:
    def test_maps_in_order(self):
        assert SerialBackend().map(_square, [1, 2, 3]) == [1, 4, 9]

    def test_empty(self):
        assert SerialBackend().map(_square, []) == []


class TestThread:
    def test_maps_in_order(self):
        backend = ThreadBackend(4)
        try:
            assert backend.map(_square, list(range(20))) == [i * i for i in range(20)]
        finally:
            backend.close()

    def test_pool_reused_across_maps(self):
        backend = ThreadBackend(2)
        try:
            a = backend.map(_square, [1, 2])
            b = backend.map(_square, [3, 4])
            assert a == [1, 4] and b == [9, 16]
        finally:
            backend.close()

    def test_close_idempotent(self):
        backend = ThreadBackend(1)
        backend.map(_square, [1])
        backend.close()
        backend.close()

    def test_worker_count_validated(self):
        with pytest.raises(ValidationError):
            ThreadBackend(0)


@pytest.mark.skipif(os.name != "posix", reason="fork backend is POSIX-only")
class TestProcess:
    def test_maps_in_order(self):
        backend = ProcessBackend(2)
        try:
            assert backend.map(_square, [1, 2, 3, 4]) == [1, 4, 9, 16]
        finally:
            backend.close()

    def test_worker_exception_wrapped(self):
        from repro.errors import BackendError

        backend = ProcessBackend(1)
        try:
            with pytest.raises(BackendError):
                backend.map(_raise, [1])
        finally:
            backend.close()


class TestEquivalence:
    def test_all_backends_same_results(self):
        tasks = list(range(17))
        expected = [t * t for t in tasks]
        backends = [SerialBackend(), ThreadBackend(3), ProcessBackend(2)]
        try:
            for b in backends:
                assert b.map(_square, tasks) == expected, b.name
        finally:
            for b in backends:
                b.close()


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("serial", SerialBackend),
        ("thread", ThreadBackend),
        ("process", ProcessBackend),
    ])
    def test_factory_dispatch(self, name, cls):
        b = make_backend(name, 1)
        assert isinstance(b, cls)
        b.close()

    def test_unknown_backend(self):
        with pytest.raises(ValidationError):
            make_backend("gpu")


class TestLifecycle:
    """close() is idempotent, backends are context managers, and a closed
    backend refuses to map."""

    @pytest.mark.parametrize("factory", [
        SerialBackend,
        lambda: ThreadBackend(2),
        lambda: ProcessBackend(2),
    ])
    def test_context_manager_maps_then_closes(self, factory):
        with factory() as backend:
            assert backend.map(_square, [2, 3]) == [4, 9]
            assert not backend.closed
        assert backend.closed

    @pytest.mark.parametrize("factory", [
        SerialBackend,
        lambda: ThreadBackend(1),
        lambda: ProcessBackend(1),
    ])
    def test_map_after_close_raises(self, factory):
        from repro.errors import BackendError

        backend = factory()
        backend.close()
        backend.close()  # idempotent
        with pytest.raises(BackendError, match="closed"):
            backend.map(_square, [1])

    def test_reentering_closed_backend_raises(self):
        from repro.errors import BackendError

        backend = SerialBackend()
        backend.close()
        with pytest.raises(BackendError):
            with backend:
                pass

    @pytest.mark.skipif(os.name != "posix", reason="fork backend is POSIX-only")
    def test_process_backend_leaks_no_workers_after_crashed_map(self):
        import multiprocessing

        from repro.errors import BackendError

        before = {p.pid for p in multiprocessing.active_children()}
        backend = ProcessBackend(2)
        with pytest.raises(BackendError):
            backend.map(_raise, [1, 2])
        backend.close()  # must terminate, not hang, after the crash
        backend.close()
        leaked = [
            p for p in multiprocessing.active_children()
            if p.pid not in before
        ]
        for p in leaked:
            p.join(timeout=5)
        leaked = [
            p for p in multiprocessing.active_children()
            if p.pid not in before
        ]
        assert leaked == []


class TestChunkedMap:
    """chunksize is a transport knob: results must be bitwise identical for
    every chunking on every backend — including under fault injection."""

    TASKS = list(range(23))

    @pytest.mark.parametrize("factory", [
        SerialBackend,
        lambda: ThreadBackend(3),
        lambda: ProcessBackend(2),
    ], ids=["serial", "thread", "process"])
    @pytest.mark.parametrize("chunksize", [None, 1, 7, "auto", 23, 100])
    def test_chunking_invariant_on_every_backend(self, factory, chunksize):
        with factory() as backend:
            got = backend.map(_square, self.TASKS, chunksize=chunksize)
        assert got == [t * t for t in self.TASKS]

    def test_chunked_empty_and_singleton(self):
        backend = SerialBackend()
        assert backend.map(_square, [], chunksize=7) == []
        assert backend.map(_square, [3], chunksize=7) == [9]

    def test_invalid_chunksize_rejected(self):
        backend = SerialBackend()
        with pytest.raises(ValidationError):
            backend.map(_square, [1], chunksize=0)
        with pytest.raises(ValidationError):
            backend.map(_square, [1], chunksize="huge")

    def test_mc_price_bitwise_invariant_to_chunksize(self):
        from repro.core import ParallelMCPricer
        from repro.workloads import basket_workload

        w = basket_workload(2)
        bits = set()
        for chunksize in (None, 1, 2, "auto"):
            with ThreadBackend(2) as backend:
                pricer = ParallelMCPricer(4_000, seed=3, backend=backend,
                                          chunksize=chunksize)
                res = pricer.price(w.model, w.payoff, w.expiry, 4)
            bits.add(res.price)
        assert len(bits) == 1

    def test_faulted_retry_with_chunking_matches_fault_free(self):
        from repro.core import ParallelMCPricer
        from repro.parallel import FaultEvent, FaultKind, FaultPlan
        from repro.workloads import basket_workload

        w = basket_workload(2)
        with SerialBackend() as backend:
            ref = ParallelMCPricer(4_000, seed=3, backend=backend).price(
                w.model, w.payoff, w.expiry, 4)
        plan = FaultPlan(events=(FaultEvent(1, FaultKind.CRASH),))
        for chunksize in (1, 2, "auto"):
            with ThreadBackend(2) as backend:
                res = ParallelMCPricer(4_000, seed=3, backend=backend,
                                       faults=plan, policy="retry",
                                       chunksize=chunksize).price(
                    w.model, w.payoff, w.expiry, 4)
            assert res.price == ref.price, chunksize

    def test_instrumented_chunked_map_counts_chunks(self):
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry()
        backend = ThreadBackend(2, metrics=metrics)
        try:
            backend.map(_square, list(range(10)), chunksize=5)
        finally:
            backend.close()
        # Two chunks of five → the per-dispatch instrumentation sees two
        # timed units (a "task" span/latency now covers one chunk).
        assert metrics.histogram("task_latency", backend="thread").count == 2


class TestChunkHeuristics:
    def test_suggest_chunksize_bounds(self):
        from repro.parallel import suggest_chunksize

        assert suggest_chunksize(0, 4) == 1
        assert suggest_chunksize(1, 4) == 1
        assert suggest_chunksize(64, 4) == 4   # 64 / (4 workers × 4 over)
        assert suggest_chunksize(1000, 1) == 250
        with pytest.raises(ValidationError):
            suggest_chunksize(8, 0)

    def test_autotuner_static_before_observation(self):
        from repro.parallel import ChunkAutotuner, suggest_chunksize

        tuner = ChunkAutotuner(4)
        assert tuner.chunksize(64) == suggest_chunksize(64, 4)

    def test_autotuner_grows_chunks_for_cheap_tasks(self):
        from repro.parallel import ChunkAutotuner

        tuner = ChunkAutotuner(4, ipc_cost_s=1e-3)
        tuner.observe(100, 0.001)  # 10 µs/task → IPC dominates
        cheap = tuner.chunksize(100)
        tuner2 = ChunkAutotuner(4, ipc_cost_s=1e-3)
        tuner2.observe(100, 10.0)  # 100 ms/task → IPC negligible
        assert cheap > tuner2.chunksize(100)

    def test_autotuner_never_starves_workers(self):
        from repro.parallel import ChunkAutotuner

        tuner = ChunkAutotuner(4)
        tuner.observe(100, 1e-7)  # absurdly cheap → wants huge chunks
        # Still at most ceil(n/workers): every worker gets work.
        assert tuner.chunksize(100) <= 25
        assert tuner.chunksize(3) == 1  # ceil(3/4): every worker busy

    def test_autotuner_dispersion_shrinks_chunks(self):
        from repro.parallel import ChunkAutotuner, suggest_chunksize

        tuner = ChunkAutotuner(4, smoothing=1.0)
        base = suggest_chunksize(64, 4)
        assert tuner.dispersion == 1.0
        tuner.observe_quantiles(0.01, 0.08)  # p99 = 8x p50: stragglers
        assert tuner.dispersion == pytest.approx(8.0)
        assert tuner.chunksize(64) == max(1, base // 8)
        assert tuner.chunksize(64) < base
        # Uniform latency pulls the dispersion back toward 1.
        tuner.observe_quantiles(0.01, 0.01)
        assert tuner.dispersion == 1.0
        assert tuner.chunksize(64) == base

    def test_autotuner_dispersion_is_capped_and_ignores_empty(self):
        from repro.obs import Histogram
        from repro.parallel import ChunkAutotuner

        tuner = ChunkAutotuner(4, smoothing=1.0)
        tuner.observe_quantiles(1e-6, 10.0)  # absurd ratio → clamp
        assert tuner.dispersion == ChunkAutotuner.DISPERSION_CAP
        assert tuner.chunksize(64) >= 1
        before = tuner.dispersion
        tuner.observe_histogram(Histogram())   # empty: no-op
        tuner.observe_quantiles(0.0, 1.0)      # non-positive: no-op
        assert tuner.dispersion == before

    def test_autotuner_histogram_feedback_matches_quantiles(self):
        from repro.obs import Histogram
        from repro.parallel import ChunkAutotuner

        hist = Histogram()
        for _ in range(95):
            hist.observe(0.01)
        for _ in range(5):
            hist.observe(0.16)
        by_hist = ChunkAutotuner(4, smoothing=1.0)
        by_hist.observe_histogram(hist)
        by_q = ChunkAutotuner(4, smoothing=1.0)
        by_q.observe_quantiles(hist.quantile(0.5), hist.quantile(0.99))
        assert by_hist.dispersion == by_q.dispersion > 1.0


class TestCrossBackendDeterminism:
    """The paper's speedup claims require every backend to compute the same
    answer: MC prices must be *bitwise* identical across serial, thread and
    process execution — and stay identical when the retry path replays a
    rank (guarding against RNG substream double-consumption)."""

    @pytest.fixture(scope="class")
    def workload(self):
        from repro.workloads import basket_workload

        return basket_workload(3)

    def _mc_price(self, w, backend, **kwargs):
        from repro.core import ParallelMCPricer

        pricer = ParallelMCPricer(6_000, seed=13, backend=backend, **kwargs)
        return pricer.price(w.model, w.payoff, w.expiry, 4)

    def test_mc_price_bitwise_identical_across_backends(self, workload):
        with SerialBackend() as serial:
            ref = self._mc_price(workload, serial)
        for factory in (lambda: ThreadBackend(2), lambda: ProcessBackend(2)):
            with factory() as backend:
                res = self._mc_price(workload, backend)
            assert res.price == ref.price, backend.name
            assert res.stderr == ref.stderr, backend.name

    def test_retry_path_matches_fault_free_on_all_backends(self, workload):
        from repro.parallel import FaultEvent, FaultKind, FaultPlan

        with SerialBackend() as serial:
            ref = self._mc_price(workload, serial)
        plan = FaultPlan(events=(FaultEvent(0, FaultKind.CRASH),
                                 FaultEvent(3, FaultKind.CORRUPT)))
        for factory in (SerialBackend, lambda: ThreadBackend(2),
                        lambda: ProcessBackend(2)):
            with factory() as backend:
                res = self._mc_price(workload, backend, faults=plan,
                                     policy="retry")
            assert res.price == ref.price, backend.name
