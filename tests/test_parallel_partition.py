"""Work partitioners: exact coverage, balance, ownership consistency."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import PartitionError
from repro.parallel import (
    block_cyclic_indices,
    block_partition,
    block_sizes,
    cyclic_indices,
    owner_of,
)

ns = st.integers(0, 10_000)
ps = st.integers(1, 64)


class TestBlock:
    @given(ns, ps)
    def test_sizes_sum_and_balance(self, n, p):
        sizes = block_sizes(n, p)
        assert sum(sizes) == n
        assert len(sizes) == p
        assert max(sizes) - min(sizes) <= 1
        # Larger blocks come first (deterministic layout).
        assert sizes == sorted(sizes, reverse=True)

    @given(ns, ps)
    def test_ranges_tile_exactly(self, n, p):
        parts = block_partition(n, p)
        covered = []
        for start, stop in parts:
            assert 0 <= start <= stop <= n
            covered.extend(range(start, stop))
        assert covered == list(range(n))

    @given(st.integers(1, 5000), ps)
    def test_owner_consistent_with_partition(self, n, p):
        parts = block_partition(n, p)
        rng = np.random.default_rng(0)
        for idx in rng.integers(0, n, size=10):
            r = owner_of(int(idx), n, p)
            start, stop = parts[r]
            assert start <= idx < stop

    def test_more_ranks_than_items(self):
        sizes = block_sizes(3, 8)
        assert sizes == [1, 1, 1, 0, 0, 0, 0, 0]

    def test_validation(self):
        with pytest.raises(PartitionError):
            block_sizes(-1, 4)
        with pytest.raises(PartitionError):
            block_sizes(10, 0)
        with pytest.raises(PartitionError):
            owner_of(10, 10, 2)


class TestCyclic:
    @given(st.integers(0, 2000), ps)
    def test_lanes_tile_exactly(self, n, p):
        all_idx = np.concatenate([cyclic_indices(n, p, r) for r in range(p)])
        assert sorted(all_idx.tolist()) == list(range(n))

    def test_stride_structure(self):
        idx = cyclic_indices(10, 3, 1)
        assert idx.tolist() == [1, 4, 7]

    def test_rank_bounds(self):
        with pytest.raises(PartitionError):
            cyclic_indices(10, 3, 3)


class TestBlockCyclic:
    @given(st.integers(0, 2000), st.integers(1, 16), st.integers(1, 7))
    def test_tiles_exactly(self, n, p, block):
        all_idx = np.concatenate(
            [block_cyclic_indices(n, p, r, block) for r in range(p)]
        )
        assert sorted(all_idx.tolist()) == list(range(n))

    def test_block_one_equals_cyclic(self):
        a = block_cyclic_indices(20, 4, 2, 1)
        b = cyclic_indices(20, 4, 2)
        assert np.array_equal(a, b)

    def test_huge_block_equals_block_partition_prefix(self):
        # Block size ≥ n: rank 0 takes everything.
        idx = block_cyclic_indices(10, 4, 0, 100)
        assert idx.tolist() == list(range(10))

    def test_validation(self):
        with pytest.raises(PartitionError):
            block_cyclic_indices(10, 2, 0, 0)


class TestExactOnceEveryP:
    """Exhaustive (non-sampled) coverage checks for every P a degraded run
    can shrink to: after the resilience layer drops ranks, the survivors
    re-partition the same work and must still cover it exactly once."""

    @pytest.mark.parametrize("p", range(1, 17))
    @pytest.mark.parametrize("n", [0, 1, 16, 97])
    def test_block_covers_exactly_once(self, n, p):
        seen = [0] * n
        for start, stop in block_partition(n, p):
            for i in range(start, stop):
                seen[i] += 1
        assert all(count == 1 for count in seen)

    @pytest.mark.parametrize("p", range(1, 17))
    @pytest.mark.parametrize("n", [0, 1, 16, 97])
    def test_cyclic_covers_exactly_once(self, n, p):
        counts = np.zeros(n, dtype=int)
        for r in range(p):
            counts[cyclic_indices(n, p, r)] += 1
        assert (counts == 1).all()

    @pytest.mark.parametrize("p", range(1, 17))
    @pytest.mark.parametrize("block", [1, 3, 8])
    def test_block_cyclic_covers_exactly_once(self, p, block):
        n = 97
        counts = np.zeros(n, dtype=int)
        for r in range(p):
            counts[block_cyclic_indices(n, p, r, block)] += 1
        assert (counts == 1).all()

    @pytest.mark.parametrize("p", range(2, 17))
    def test_survivor_repartition_still_covers(self, p):
        """Degrade policy drops a rank and reprices on p-1 survivors; the
        fresh partition over the survivors must again tile the work."""
        n = 1000
        parts = block_partition(n, p - 1)
        covered = [i for start, stop in parts for i in range(start, stop)]
        assert covered == list(range(n))
        assert sum(block_sizes(n, p - 1)) == n

    @given(st.integers(0, 3000), st.integers(1, 16))
    def test_schemes_partition_same_totals(self, n, p):
        """All three layouts distribute the same total work, whatever the
        per-rank shapes look like."""
        block_total = sum(block_sizes(n, p))
        cyclic_total = sum(len(cyclic_indices(n, p, r)) for r in range(p))
        bc_total = sum(len(block_cyclic_indices(n, p, r, 4)) for r in range(p))
        assert block_total == cyclic_total == bc_total == n
