"""Multi-asset closed forms: bivariate CDF, Margrabe, Stulz, geometric
basket, Kirk — plus the reduction identities tying them together."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analytic import (
    bs_price,
    bvn_cdf,
    bvn_cdf_quadrature,
    geometric_basket_price,
    kirk_spread_price,
    margrabe_price,
    rainbow_two_asset_price,
)
from repro.analytic.margrabe import margrabe_from_model
from repro.analytic.stulz import call_on_min_price
from repro.errors import ValidationError
from repro.market import MultiAssetGBM, constant_correlation
from repro.utils.numerics import norm_cdf

rhos = st.floats(min_value=-0.95, max_value=0.95)
hs = st.floats(min_value=-3.0, max_value=3.0)


class TestBivariateNormal:
    @given(hs, hs, rhos)
    def test_quadrature_matches_scipy(self, h, k, rho):
        assert bvn_cdf(h, k, rho) == pytest.approx(
            bvn_cdf_quadrature(h, k, rho), abs=1e-8
        )

    @given(hs, rhos)
    def test_marginal_limit(self, h, rho):
        # k → ∞ recovers the univariate CDF.
        assert bvn_cdf_quadrature(h, math.inf, rho) == pytest.approx(
            float(norm_cdf(h)), abs=1e-12
        )

    @given(hs, hs, rhos)
    def test_symmetry(self, h, k, rho):
        assert bvn_cdf_quadrature(h, k, rho) == pytest.approx(
            bvn_cdf_quadrature(k, h, rho), abs=1e-10
        )

    def test_independence(self):
        assert bvn_cdf_quadrature(0.5, -0.5, 0.0) == pytest.approx(
            float(norm_cdf(0.5) * norm_cdf(-0.5)), abs=1e-14
        )

    def test_perfect_correlation_limits(self):
        assert bvn_cdf_quadrature(0.3, 0.8, 1.0) == pytest.approx(
            float(norm_cdf(0.3)), abs=1e-12
        )
        # ρ=−1: P(X≤h, −X≤k) = Φ(h) − Φ(−k) when h > −k.
        assert bvn_cdf_quadrature(1.0, 1.0, -1.0) == pytest.approx(
            float(norm_cdf(1.0) - norm_cdf(-1.0)), abs=1e-12
        )

    def test_high_correlation_accuracy(self):
        # Near-singular density: the path-splitting quadrature must hold.
        assert bvn_cdf(1.2, 0.9, 0.999) == pytest.approx(
            bvn_cdf_quadrature(1.2, 0.9, 0.999), abs=1e-6
        )

    def test_rejects_invalid_rho(self):
        with pytest.raises(ValidationError):
            bvn_cdf_quadrature(0.0, 0.0, 1.5)


class TestMargrabe:
    def test_rate_invariance(self):
        # The exchange option does not depend on the risk-free rate.
        a = margrabe_price(100, 95, 0.2, 0.3, 0.4, 1.0)
        # (no rate argument exists — this asserts the API shape)
        assert a > 0

    def test_degenerate_leg_reduces_to_black_scholes(self):
        # σ₂ → 0, q₂ = 0: the second leg is a bond-like forward with value
        # S₂ at expiry ⇒ Margrabe = BS call with K = S₂, r = 0.
        m = margrabe_price(100, 95, 0.25, 1e-12, 0.0, 2.0)
        bs = bs_price(100, 95, 0.25, 0.0, 2.0)
        assert m == pytest.approx(bs, rel=1e-6)

    @given(rhos)
    def test_decreasing_in_correlation(self, rho):
        lo = margrabe_price(100, 100, 0.2, 0.3, rho, 1.0)
        hi = margrabe_price(100, 100, 0.2, 0.3, min(rho + 0.05, 0.999), 1.0)
        assert hi <= lo + 1e-10

    def test_perfect_correlation_same_vol_is_deterministic(self):
        assert margrabe_price(100, 90, 0.2, 0.2, 1.0, 1.0) == pytest.approx(10.0)

    def test_from_model(self, model_2d):
        direct = margrabe_price(100, 95, 0.2, 0.3, 0.4, 1.0)
        assert margrabe_from_model(model_2d, 1.0) == pytest.approx(direct)

    def test_symmetry_identity(self):
        # max(a−b,0) − max(b−a,0) = a − b in expectation (undiscounted
        # forwards with zero dividends both legs grow at r — rate cancels).
        ab = margrabe_price(100, 95, 0.2, 0.3, 0.4, 1.0)
        ba = margrabe_price(95, 100, 0.3, 0.2, 0.4, 1.0)
        assert ab - ba == pytest.approx(100 - 95, abs=1e-9)


class TestGeometricBasket:
    def test_single_asset_reduces_to_bs(self, model_1d):
        g = geometric_basket_price(model_1d, [1.0], 100.0, 1.0)
        assert g == pytest.approx(bs_price(100, 100, 0.2, 0.05, 1.0), abs=1e-10)

    def test_put_call_parity(self, model_4d):
        w = [0.25] * 4
        c = geometric_basket_price(model_4d, w, 100.0, 1.0)
        p = geometric_basket_price(model_4d, w, 100.0, 1.0, option="put")
        from repro.analytic.geometric_basket import geometric_basket_moments

        m, v = geometric_basket_moments(model_4d, w, 1.0)
        fwd_pv = math.exp(-0.05) * math.exp(m + v * v / 2.0)
        k_pv = math.exp(-0.05) * 100.0
        assert c - p == pytest.approx(fwd_pv - k_pv, abs=1e-10)

    def test_more_correlation_more_value(self):
        # Higher ρ → higher basket variance → dearer ATM option.
        lo = geometric_basket_price(
            MultiAssetGBM.equicorrelated(4, 100, 0.25, 0.05, 0.1), [0.25] * 4, 100, 1.0
        )
        hi = geometric_basket_price(
            MultiAssetGBM.equicorrelated(4, 100, 0.25, 0.05, 0.8), [0.25] * 4, 100, 1.0
        )
        assert hi > lo

    def test_weight_length_validated(self, model_2d):
        with pytest.raises(ValidationError):
            geometric_basket_price(model_2d, [1.0], 100.0, 1.0)


class TestStulz:
    def test_reference_haug_value(self):
        # Haug's book example: call on min, S1=S2=100, K=98, σ1=σ2... use
        # internal consistency instead: published setups vary; we pin the
        # decomposition identities below and one fixed regression value.
        v = call_on_min_price(100, 100, 98, 0.2, 0.2, 0.5, 0.05, 0.5)
        assert 0 < v < bs_price(100, 98, 0.2, 0.05, 0.5)

    def test_cmax_decomposition(self, model_2d):
        args = (100, 95, 100, 0.2, 0.3, 0.4, 0.05, 1.0)
        cmin = rainbow_two_asset_price(*args, kind="call-on-min")
        cmax = rainbow_two_asset_price(*args, kind="call-on-max")
        c1 = bs_price(100, 100, 0.2, 0.05, 1.0)
        c2 = bs_price(95, 100, 0.3, 0.05, 1.0)
        assert cmin + cmax == pytest.approx(c1 + c2, abs=1e-9)

    def test_put_parities(self):
        args = (100, 95, 100, 0.2, 0.3, 0.4, 0.05, 1.0)
        df = math.exp(-0.05)
        exch = margrabe_price(100, 95, 0.2, 0.3, 0.4, 1.0)
        pv_min = 100 - exch
        pv_max = 100 + 95 - pv_min
        cmin = rainbow_two_asset_price(*args, kind="call-on-min")
        cmax = rainbow_two_asset_price(*args, kind="call-on-max")
        pmin = rainbow_two_asset_price(*args, kind="put-on-min")
        pmax = rainbow_two_asset_price(*args, kind="put-on-max")
        assert pmin == pytest.approx(100 * df - pv_min + cmin, abs=1e-9)
        assert pmax == pytest.approx(100 * df - pv_max + cmax, abs=1e-9)

    def test_perfectly_correlated_identical_assets(self):
        # ρ→1 with identical assets: min = max = the asset itself.
        v = call_on_min_price(100, 100, 100, 0.2, 0.2, 0.9999, 0.05, 1.0)
        assert v == pytest.approx(bs_price(100, 100, 0.2, 0.05, 1.0), rel=0.01)

    def test_invalid_kind(self):
        with pytest.raises(ValidationError):
            rainbow_two_asset_price(100, 95, 100, 0.2, 0.3, 0.4, 0.05, 1.0,
                                    kind="call-on-median")


class TestKirk:
    def test_zero_strike_equals_margrabe(self):
        kirk = kirk_spread_price(100, 95, 0.0, 0.2, 0.3, 0.4, 0.05, 1.0)
        marg = margrabe_price(100, 95, 0.2, 0.3, 0.4, 1.0)
        assert kirk == pytest.approx(marg, rel=1e-10)

    def test_decreasing_in_strike(self):
        prices = [
            kirk_spread_price(100, 95, k, 0.2, 0.3, 0.4, 0.05, 1.0)
            for k in (0.0, 2.0, 5.0, 10.0)
        ]
        assert all(a > b for a, b in zip(prices, prices[1:]))

    def test_positive(self):
        assert kirk_spread_price(100, 120, 10.0, 0.2, 0.3, -0.5, 0.05, 1.0) > 0
