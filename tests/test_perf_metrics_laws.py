"""Speedup/efficiency metrics and scalability laws."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.perf import (
    ScalingSeries,
    amdahl_speedup,
    efficiency,
    fit_serial_fraction,
    gustafson_speedup,
    karp_flatt,
    speedup,
)

fractions = st.floats(min_value=0.0, max_value=1.0)
procs = st.integers(1, 1024)


class TestBasicMetrics:
    def test_speedup_definition(self):
        assert speedup(10.0, 2.0) == pytest.approx(5.0)

    def test_efficiency_definition(self):
        assert efficiency(10.0, 2.0, 5) == pytest.approx(1.0)

    def test_positive_inputs_required(self):
        with pytest.raises(ValidationError):
            speedup(0.0, 1.0)
        with pytest.raises(ValidationError):
            efficiency(1.0, 1.0, 0)


class TestAmdahl:
    @given(procs, fractions)
    def test_bounded_by_serial_fraction(self, p, f):
        s = amdahl_speedup(p, f)
        assert 1.0 - 1e-12 <= s <= p + 1e-9
        if f > 0:
            assert s <= 1.0 / f + 1e-9

    def test_classic_example(self):
        # 90% parallel, 4-fold section speedup analogue: P=∞ bound is 10.
        assert amdahl_speedup(1024, 0.1) == pytest.approx(10.0, rel=0.02)

    def test_fully_parallel_is_linear(self):
        assert amdahl_speedup(64, 0.0) == pytest.approx(64.0)

    def test_fully_serial_is_one(self):
        assert amdahl_speedup(64, 1.0) == pytest.approx(1.0)


class TestGustafson:
    @given(procs, fractions)
    def test_scaled_speedup_band(self, p, f):
        s = gustafson_speedup(p, f)
        assert 1.0 - 1e-9 <= s <= p + 1e-9

    def test_linear_in_p_for_fixed_fraction(self):
        s8 = gustafson_speedup(8, 0.2)
        s16 = gustafson_speedup(16, 0.2)
        assert s16 - s8 == pytest.approx(0.8 * 8)

    @given(st.integers(2, 512), st.floats(0.01, 0.99))
    def test_gustafson_exceeds_amdahl(self, p, f):
        # Weak scaling always looks better than strong scaling.
        assert gustafson_speedup(p, f) >= amdahl_speedup(p, f) - 1e-9


class TestKarpFlatt:
    @given(st.integers(2, 512), st.floats(0.001, 0.999))
    def test_recovers_amdahl_fraction_exactly(self, p, f):
        s = amdahl_speedup(p, f)
        assert karp_flatt(s, p) == pytest.approx(f, rel=1e-9, abs=1e-12)

    def test_perfect_speedup_gives_zero(self):
        assert karp_flatt(8.0, 8) == pytest.approx(0.0, abs=1e-12)

    def test_requires_p_at_least_two(self):
        with pytest.raises(ValidationError):
            karp_flatt(1.0, 1)


class TestFitSerialFraction:
    @given(st.floats(0.0, 0.9))
    def test_recovers_known_fraction(self, f):
        ps = [1, 2, 4, 8, 16, 32]
        t1 = 7.3
        times = [t1 * (f + (1 - f) / p) for p in ps]
        fhat, rms = fit_serial_fraction(ps, times)
        assert fhat == pytest.approx(f, abs=1e-9)
        assert rms < 1e-9

    def test_noisy_fit_close(self):
        rng = np.random.default_rng(0)
        ps = [1, 2, 4, 8, 16]
        f = 0.07
        times = [(f + (1 - f) / p) * (1 + rng.normal(0, 0.01)) for p in ps]
        fhat, _ = fit_serial_fraction(ps, times)
        assert fhat == pytest.approx(f, abs=0.03)

    def test_requires_p1_first(self):
        with pytest.raises(ValidationError):
            fit_serial_fraction([2, 4], [1.0, 0.5])


class TestScalingSeries:
    def test_derived_columns(self):
        s = ScalingSeries(ps=(1, 2, 4), times=(1.0, 0.5, 0.25))
        assert np.allclose(s.speedups, [1, 2, 4])
        assert np.allclose(s.efficiencies, [1, 1, 1])

    def test_explicit_t1_baseline(self):
        # Parallel algorithm slower at P=1 than the best serial algorithm.
        s = ScalingSeries(ps=(2, 4), times=(0.6, 0.3), t1=1.0)
        assert np.allclose(s.speedups, [1 / 0.6, 1 / 0.3])

    def test_must_start_at_one_without_t1(self):
        with pytest.raises(ValidationError):
            ScalingSeries(ps=(2, 4), times=(1.0, 0.5))

    def test_table_renders(self):
        s = ScalingSeries(ps=(1, 2), times=(1.0, 0.6), label="demo")
        out = s.table().render()
        assert "demo" in out and "efficiency" in out

    def test_from_results(self, model_1d):
        from repro.core import ParallelMCPricer
        from repro.payoffs import Call

        pricer = ParallelMCPricer(10_000, seed=1)
        results = pricer.sweep(model_1d, Call(100.0), 1.0, [1, 2, 4])
        s = ScalingSeries.from_results(results, label="mc")
        assert s.ps == (1, 2, 4)
        assert len(s.extras["comm_times"]) == 3

    def test_length_mismatch(self):
        with pytest.raises(ValidationError):
            ScalingSeries(ps=(1, 2), times=(1.0,))
