"""Price-cache properties: exact LRU semantics, stable canonical keys, and
bitwise hit/miss equivalence.

The cache is the one component of the serve layer that could silently move
a price (by returning the wrong entry) or silently grow without bound, so
its invariants are pinned with hypothesis against a reference model: a
plain dict + recency list replayed through the same operation sequence.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.serve import (PriceCache, PricingRequest, PriceQuote, request_key,
                         stable_key)
from repro.verify.determinism import float_bits
from repro.workloads.generators import basket_workload

# An operation sequence over a small key space so evictions and re-puts
# actually happen: ("get", k) or ("put", k, v).
_ops = st.lists(
    st.one_of(
        st.tuples(st.just("get"), st.integers(0, 7)),
        st.tuples(st.just("put"), st.integers(0, 7), st.integers(0, 99)),
    ),
    max_size=60,
)


class _ReferenceLRU:
    """Textbook LRU against which PriceCache is replayed."""

    def __init__(self, capacity):
        self.capacity = capacity
        self.data = {}
        self.recency = []  # LRU ... MRU

    def _touch(self, key):
        self.recency.remove(key)
        self.recency.append(key)

    def get(self, key):
        if key not in self.data:
            return None
        self._touch(key)
        return self.data[key]

    def put(self, key, value):
        if key in self.data:
            self.data[key] = value
            self._touch(key)
            return
        self.data[key] = value
        self.recency.append(key)
        while len(self.data) > self.capacity:
            evicted = self.recency.pop(0)
            del self.data[evicted]


class TestLRUProperties:
    @settings(max_examples=150, deadline=None)
    @given(_ops, st.integers(1, 5))
    def test_matches_reference_model(self, ops, capacity):
        cache = PriceCache(capacity)
        ref = _ReferenceLRU(capacity)
        for op in ops:
            if op[0] == "get":
                key = f"k{op[1]}"
                assert cache.get(key) == ref.get(key)
            else:
                key, value = f"k{op[1]}", op[2]
                cache.put(key, value)
                ref.put(key, value)
            # Invariants after every single operation: bounded size, and
            # identical contents *and* recency order.
            assert len(cache) <= capacity
            assert list(cache.keys()) == ref.recency
        assert len(cache) == len(ref.data)

    @settings(max_examples=50, deadline=None)
    @given(st.integers(1, 4), st.integers(2, 20))
    def test_eviction_is_least_recently_used(self, capacity, n_puts):
        cache = PriceCache(capacity)
        for i in range(n_puts):
            cache.put(f"k{i}", i)
        # The survivors are exactly the most recent `capacity` puts.
        expected = [f"k{i}" for i in range(max(0, n_puts - capacity), n_puts)]
        assert list(cache.keys()) == expected
        assert cache.evictions == max(0, n_puts - capacity)

    def test_get_refreshes_recency(self):
        cache = PriceCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # a becomes MRU
        cache.put("c", 3)           # evicts b, not a
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3

    def test_contains_does_not_touch_recency(self):
        cache = PriceCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert "a" in cache          # membership only — a stays LRU
        cache.put("c", 3)
        assert "a" not in cache and "b" in cache

    def test_capacity_validated(self):
        with pytest.raises(ValidationError):
            PriceCache(0)


class TestHitBitwiseEqualsMiss:
    def test_cached_quote_is_the_recomputed_quote_bitwise(self):
        from repro.serve.service import price_request

        w = basket_workload(2)
        request = PricingRequest(w, engine="mc", n_paths=2_000, seed=11, p=2)
        cache = PriceCache(8)
        key = request_key(request)

        miss = price_request(request)
        cache.put(key, miss)
        hit = cache.get(key)
        recomputed = price_request(request)
        assert float_bits(hit.price) == float_bits(recomputed.price)
        assert float_bits(hit.stderr) == float_bits(recomputed.stderr)
        assert hit == recomputed  # dataclass equality: every field
        assert cache.hits == 1 and cache.misses == 0


class TestKeyStability:
    """Equivalent request configs must collide; meaningful changes must not."""

    def test_permuted_but_equivalent_numeric_containers(self):
        # list vs tuple vs np.array of the same weights: one canonical key.
        docs = [
            {"weights": [0.25, 0.75], "strike": 100.0},
            {"weights": (0.25, 0.75), "strike": 100.0},
            {"weights": np.array([0.25, 0.75]), "strike": 100.0},
        ]
        keys = {stable_key(d) for d in docs}
        assert len(keys) == 1

    def test_key_order_is_canonicalized(self):
        assert (stable_key({"a": 1, "b": 2})
                == stable_key({"b": 2, "a": 1}))

    def test_display_name_is_not_part_of_the_key(self):
        w = basket_workload(2)
        a = PricingRequest(w, engine="mc", n_paths=1000, seed=3, name="desk-A")
        b = PricingRequest(w, engine="mc", n_paths=1000, seed=3, name="desk-B")
        assert request_key(a) == request_key(b)

    def test_engine_irrelevant_settings_are_excluded(self):
        # A lattice request ignores n_paths/seed/grid — changing them must
        # not fragment the cache.
        w = basket_workload(2)
        a = PricingRequest(w, engine="lattice", steps=32, n_paths=1000,
                           seed=3, grid=64)
        b = PricingRequest(w, engine="lattice", steps=32, n_paths=9999,
                           seed=77, grid=128)
        assert request_key(a) == request_key(b)

    def test_engine_relevant_settings_do_change_the_key(self):
        w = basket_workload(2)
        base = PricingRequest(w, engine="mc", n_paths=1000, seed=3)
        assert request_key(base) != request_key(
            PricingRequest(w, engine="mc", n_paths=1000, seed=4))
        assert request_key(base) != request_key(
            PricingRequest(w, engine="mc", n_paths=2000, seed=3))

    def test_different_contracts_never_collide(self):
        a = PricingRequest(basket_workload(2), engine="mc", n_paths=1000)
        b = PricingRequest(basket_workload(3), engine="mc", n_paths=1000)
        assert request_key(a) != request_key(b)

    def test_key_is_a_sha256_hexdigest(self):
        key = request_key(PricingRequest(basket_workload(2), engine="mc"))
        assert len(key) == 64
        int(key, 16)  # hex-parsable


class TestMetricsMirror:
    def test_counters_track_hits_misses_evictions(self):
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry()
        cache = PriceCache(1, metrics=metrics)
        cache.get("missing")
        cache.put("a", 1)
        cache.get("a")
        cache.put("b", 2)  # evicts a
        assert metrics.counter("serve.cache_misses").value == 1
        assert metrics.counter("serve.cache_hits").value == 1
        assert metrics.counter("serve.cache_evictions").value == 1
        assert cache.hit_rate == 0.5

    def test_labels_split_counters_per_shard(self):
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry()
        shard0 = PriceCache(4, metrics=metrics, labels={"shard": 0})
        shard1 = PriceCache(4, metrics=metrics, labels={"shard": 1})
        shard0.put("a", 1)
        shard0.get("a")
        shard1.get("a")          # miss: caches are disjoint objects
        assert metrics.counter("serve.cache_hits", shard="0").value == 1
        assert metrics.counter("serve.cache_hits", shard="1").value == 0
        assert metrics.counter("serve.cache_misses", shard="1").value == 1
        # The registry-wide aggregate sums the labeled variants.
        assert metrics.sum_counters("serve.cache_hits") == 1
        assert metrics.sum_counters("serve.cache_misses") == 1
        # Unlabeled caches keep writing the bare series, unaffected.
        bare = PriceCache(4, metrics=metrics)
        bare.get("nope")
        assert metrics.counter("serve.cache_misses").value == 1
        assert metrics.sum_counters("serve.cache_misses") == 2


class TestQuoteValue:
    def test_quote_is_plain_and_comparable(self):
        q = PriceQuote(engine="mc", price=1.25, stderr=0.01, sim_time=0.5)
        assert q == PriceQuote(engine="mc", price=1.25, stderr=0.01,
                               sim_time=0.5)
        with pytest.raises(AttributeError):
            q.price = 2.0  # frozen
