"""Workload generators: determinism and validity."""

import numpy as np
import pytest

from repro.market import is_positive_semidefinite
from repro.workloads import (
    DIMENSION_SWEEP,
    LATTICE_STEP_SWEEP,
    PATH_COUNTS,
    PROCESSOR_SWEEP,
    basket_workload,
    default_machine_specs,
    rainbow_workload,
    random_portfolio,
    spread_workload,
)


class TestNamedWorkloads:
    @pytest.mark.parametrize("d", DIMENSION_SWEEP)
    def test_basket_dimensions(self, d):
        w = basket_workload(d)
        assert w.dim == d
        assert w.model.dim == d
        assert w.payoff.dim == d
        assert str(d) in w.name

    def test_basket_geometric_variant(self):
        w = basket_workload(3, geometric=True)
        assert "geometric" in w.name

    def test_rainbow_has_stulz_parameters(self):
        w = rainbow_workload()
        assert w.dim == 2
        assert w.model.correlation[0, 1] == pytest.approx(0.4)

    def test_spread(self):
        w = spread_workload()
        assert w.dim == 2
        assert w.payoff.strike == pytest.approx(5.0)

    def test_workloads_priceable(self):
        # Every named workload must run through the MC engine.
        from repro.mc import MonteCarloEngine

        for w in (basket_workload(2), rainbow_workload(), spread_workload()):
            r = MonteCarloEngine(5_000, seed=1).price(w.model, w.payoff, w.expiry)
            assert np.isfinite(r.price) and r.price >= 0


class TestRandomPortfolio:
    def test_deterministic(self):
        a = random_portfolio(5, seed=3)
        b = random_portfolio(5, seed=3)
        for wa, wb in zip(a, b):
            assert np.allclose(wa.model.spots, wb.model.spots)
            assert np.allclose(wa.model.correlation, wb.model.correlation)

    def test_seeds_differ(self):
        a = random_portfolio(3, seed=1)[0]
        b = random_portfolio(3, seed=2)[0]
        assert not np.allclose(a.model.spots, b.model.spots)

    def test_all_models_valid(self):
        for w in random_portfolio(10, dim=5, seed=7):
            assert is_positive_semidefinite(w.model.correlation)
            assert np.all(w.model.spots > 0)
            assert np.all(w.model.vols > 0)
            assert w.payoff.dim == 5


class TestSuites:
    def test_sweeps_sane(self):
        assert PROCESSOR_SWEEP[0] == 1
        assert all(b > a for a, b in zip(PROCESSOR_SWEEP, PROCESSOR_SWEEP[1:]))
        assert all(n > 0 for n in PATH_COUNTS)
        assert all(s > 0 for s in LATTICE_STEP_SWEEP)

    def test_machine_specs(self):
        specs = default_machine_specs()
        assert {"baseline", "fast-network", "slow-network"} <= set(specs)
        assert specs["fast-network"].alpha < specs["baseline"].alpha
        assert specs["slow-network"].beta > specs["baseline"].beta
