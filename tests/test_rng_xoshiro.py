"""Xoshiro256**: determinism, lane independence, statistical quality."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.rng import Xoshiro256StarStar


class TestDeterminism:
    def test_reproducible(self):
        a = Xoshiro256StarStar(1).random_raw(512)
        b = Xoshiro256StarStar(1).random_raw(512)
        assert np.array_equal(a, b)

    def test_continuity_across_calls(self):
        g = Xoshiro256StarStar(2)
        whole = Xoshiro256StarStar(2).random_raw(300)
        pieces = np.concatenate([g.random_raw(128), g.random_raw(172)])
        assert np.array_equal(whole, pieces)

    def test_clone_is_independent_copy(self):
        g = Xoshiro256StarStar(3)
        g.random_raw(100)
        c = g.clone()
        a = g.random_raw(64)
        b = c.random_raw(64)
        assert np.array_equal(a, b)
        # advancing the clone does not affect the original: g has consumed
        # 100 + 64 = 164 draws, so its next 5 are master draws [164, 169).
        c.random_raw(10)
        assert np.array_equal(g.random_raw(5), Xoshiro256StarStar(3).random_raw(169)[-5:])

    def test_seeds_differ(self):
        assert not np.array_equal(
            Xoshiro256StarStar(1).random_raw(64), Xoshiro256StarStar(2).random_raw(64)
        )


class TestSpawn:
    def test_children_deterministic_and_distinct(self):
        kids_a = Xoshiro256StarStar(5).spawn(3)
        kids_b = Xoshiro256StarStar(5).spawn(3)
        for ka, kb in zip(kids_a, kids_b):
            assert np.array_equal(ka.random_raw(64), kb.random_raw(64))
        draws = [k.random_raw(64) for k in Xoshiro256StarStar(5).spawn(3)]
        assert not np.array_equal(draws[0], draws[1])
        assert not np.array_equal(draws[1], draws[2])


class TestStatistics:
    def test_uniform_moments(self):
        u = Xoshiro256StarStar(7).uniforms(200_000)
        assert abs(u.mean() - 0.5) < 0.005
        assert abs(u.var() - 1.0 / 12.0) < 0.002

    def test_no_serial_correlation(self):
        u = Xoshiro256StarStar(9).uniforms(100_000)
        assert abs(np.corrcoef(u[:-1], u[1:])[0, 1]) < 0.01

    def test_bit_balance(self):
        raw = Xoshiro256StarStar(11).random_raw(20_000)
        for bit in (0, 17, 63):
            ones = ((raw >> np.uint64(bit)) & np.uint64(1)).mean()
            assert abs(ones - 0.5) < 0.02


class TestEdgeCases:
    def test_zero_draws(self):
        assert Xoshiro256StarStar(0).random_raw(0).size == 0

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            Xoshiro256StarStar(0).random_raw(-2)
