"""The execute-stage scheduler: placement moves, prices don't.

Four layers of guarantee, mirroring :mod:`repro.parallel.sched`'s
determinism contract:

* **unit** — static delegates verbatim to ``backend.map``; LPT's dispatch
  order is a stable sort of the estimates; submit/as_completed behave on
  every backend (results, exceptions, interleaving).
* **property (Hypothesis)** — scheduled results are invariant under any
  cost vector (placement never reorders the output); the greedy
  strategies obey the classical list-scheduling bound
  ``makespan ≤ Σ/m + max ≤ 2·OPT``; the virtual steal schedule is a pure
  function of its seed.
* **integration** — the pipeline runner rejects non-static scheduling on
  inline and non-schedulable engines; the simulated cluster's
  ``schedule_compute`` charges deterministic clocks and stealing beats
  static on skewed task sets.
* **acceptance (``-m sched``, the CI scheduler lane)** — bitwise price
  equality against the static path for every schedulable registry engine
  across serial/thread/process backends, with and without fault retries,
  and through the serve layer's ledger.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.market.gbm import MultiAssetGBM
from repro.parallel.backends import (
    BackendError,
    SerialBackend,
    ThreadBackend,
    make_backend,
)
from repro.parallel.sched import (
    SCHEDULER_NAMES,
    LPTScheduler,
    SchedStats,
    StaticChunkScheduler,
    WorkStealingScheduler,
    make_scheduler,
    resolve_scheduler,
    simulate_schedule,
)
from repro.payoffs.vanilla import Call
from repro.verify.determinism import float_bits

costs_st = st.lists(
    st.floats(min_value=0.0, max_value=100.0,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=40)
workers_st = st.integers(min_value=1, max_value=8)
seed_st = st.integers(min_value=0, max_value=2 ** 16)


def _square(x):
    return x * x


def _boom(x):
    raise RuntimeError(f"boom on {x}")


# ----------------------------------------------------------------------
# Unit: strategies and primitives.
# ----------------------------------------------------------------------


class TestStrategies:
    def test_names_and_factory(self):
        assert SCHEDULER_NAMES == ("static", "lpt", "steal")
        for name in SCHEDULER_NAMES:
            assert make_scheduler(name).name == name
        with pytest.raises(ValidationError):
            make_scheduler("fifo")

    def test_resolve(self):
        assert resolve_scheduler(None).name == "static"
        assert resolve_scheduler("steal").name == "steal"
        s = LPTScheduler()
        assert resolve_scheduler(s) is s
        with pytest.raises(ValidationError):
            resolve_scheduler(42)

    def test_static_matches_backend_map(self):
        backend = SerialBackend()
        tasks = list(range(9))
        results, stats = StaticChunkScheduler().map(backend, _square, tasks)
        assert results == backend.map(_square, tasks)
        assert stats.strategy == "static"
        assert stats.steals == 0 and stats.tasks_moved == 0
        assert sum(stats.initial_depths) == len(tasks)

    def test_lpt_order_is_stable_descending(self):
        sched = LPTScheduler()
        assert sched.order(4, [1.0, 3.0, 3.0, 2.0]) == [1, 2, 3, 0]
        assert sched.order(3, None) == [0, 1, 2]
        with pytest.raises(ValidationError):
            sched.order(3, [1.0, 2.0])

    def test_lpt_results_in_task_order(self):
        with ThreadBackend(3) as backend:
            tasks = list(range(11))
            costs = [(7 * i) % 5 + 1 for i in tasks]
            results, stats = LPTScheduler().map(backend, _square, tasks,
                                                costs=costs)
        assert results == [_square(t) for t in tasks]
        assert stats.strategy == "lpt"
        assert stats.n_tasks == 11 and stats.workers == 3

    def test_steal_results_in_task_order(self):
        with ThreadBackend(3) as backend:
            tasks = list(range(17))
            results, stats = WorkStealingScheduler(seed=5).map(
                backend, _square, tasks)
        assert results == [_square(t) for t in tasks]
        assert stats.strategy == "steal"
        assert stats.steals == stats.tasks_moved == len(stats.events)
        assert sum(stats.initial_depths) == 17

    def test_steal_empty_and_serial(self):
        backend = SerialBackend()
        results, stats = WorkStealingScheduler().map(backend, _square, [])
        assert results == [] and stats.n_tasks == 0
        # One worker: nothing to steal from, ever.
        results, stats = WorkStealingScheduler().map(backend, _square,
                                                     list(range(6)))
        assert results == [_square(t) for t in range(6)]
        assert stats.steals == 0

    def test_victim_orders_seeded(self):
        a = WorkStealingScheduler(seed=3).victim_orders(5)
        b = WorkStealingScheduler(seed=3).victim_orders(5)
        assert a == b
        for w, order in enumerate(a):
            assert sorted(order) == [v for v in range(5) if v != w]

    def test_stats_combine(self):
        head = SchedStats(strategy="steal", n_tasks=8, workers=2, steals=2,
                          tasks_moved=2, initial_depths=(4, 4))
        tail = SchedStats(strategy="steal", n_tasks=3, workers=2, steals=1,
                          tasks_moved=1)
        merged = SchedStats.combine([head, tail])
        assert merged.steals == 3 and merged.tasks_moved == 3
        assert merged.n_tasks == 8 and merged.initial_depths == (4, 4)
        assert SchedStats.combine([]).n_tasks == 0


class TestSubmitPrimitives:
    @pytest.mark.parametrize("name", ["serial", "thread"])
    def test_submit_and_as_completed(self, name):
        with make_backend(name, 2) as backend:
            handles = [backend.submit(_square, i) for i in range(7)]
            seen = sorted(h.result() for h in backend.as_completed(handles))
            assert seen == [_square(i) for i in range(7)]
            for h in handles:
                assert h.done

    @pytest.mark.parametrize("name", ["serial", "thread"])
    def test_submit_propagates_exceptions(self, name):
        with make_backend(name, 2) as backend:
            h = backend.submit(_boom, 3)
            next(iter(backend.as_completed([h])))
            with pytest.raises(Exception) as err:
                h.result()
            assert "boom on 3" in str(err.value) or isinstance(
                err.value, BackendError)

    @pytest.mark.sched
    def test_process_submit_round_trip(self):
        with make_backend("process", 2) as backend:
            handles = [backend.submit(_square, i) for i in range(7)]
            seen = sorted(h.result() for h in backend.as_completed(handles))
            assert seen == [_square(i) for i in range(7)]
            h = backend.submit(_boom, 1)
            next(iter(backend.as_completed([h])))
            with pytest.raises(BackendError):
                h.result()


# ----------------------------------------------------------------------
# Properties: placement invariance and the greedy bound.
# ----------------------------------------------------------------------


class TestProperties:
    @settings(max_examples=40, deadline=None)
    @given(costs=costs_st, seed=seed_st)
    def test_results_invariant_under_costs_and_seed(self, costs, seed):
        """Any cost vector, any steal seed: the output list never moves."""
        tasks = list(range(len(costs)))
        expected = [_square(t) for t in tasks]
        backend = SerialBackend()
        lpt, _ = LPTScheduler().map(backend, _square, tasks, costs=costs)
        steal, _ = WorkStealingScheduler(seed=seed).map(backend, _square,
                                                        tasks)
        assert lpt == expected
        assert steal == expected

    @settings(max_examples=60, deadline=None)
    @given(costs=costs_st, workers=workers_st, seed=seed_st,
           strategy=st.sampled_from(["lpt", "steal"]))
    def test_greedy_bound(self, costs, workers, seed, strategy):
        """List scheduling: makespan ≤ Σ/m + max ≤ 2·LB ≤ 2·OPT."""
        schedule = simulate_schedule(costs, workers, strategy=strategy,
                                     seed=seed)
        bound = sum(costs) / workers + max(costs)
        lower = max(max(costs), sum(costs) / workers)
        assert schedule.makespan <= bound + 1e-9
        assert schedule.makespan >= lower - 1e-9
        assert schedule.makespan <= 2.0 * lower + 1e-9
        # Work conservation: every task appears exactly once.
        assert sorted(a[0] for a in schedule.assignments) == list(
            range(len(costs)))

    @settings(max_examples=40, deadline=None)
    @given(costs=costs_st, workers=workers_st, seed=seed_st)
    def test_steal_schedule_replays_byte_identically(self, costs, workers,
                                                     seed):
        a = simulate_schedule(costs, workers, strategy="steal", seed=seed)
        b = simulate_schedule(costs, workers, strategy="steal", seed=seed)
        assert a.digest() == b.digest()
        assert a.stats.schedule_digest() == b.stats.schedule_digest()

    @settings(max_examples=40, deadline=None)
    @given(costs=costs_st, workers=workers_st)
    def test_static_schedule_is_the_block_partition(self, costs, workers):
        schedule = simulate_schedule(costs, workers, strategy="static")
        per_worker = [0.0] * workers
        for task, w, start, end in schedule.assignments:
            assert math.isclose(end - start, costs[task], abs_tol=1e-12)
            per_worker[w] += costs[task]
        assert math.isclose(schedule.makespan, max(per_worker, default=0.0),
                            abs_tol=1e-9)
        assert schedule.stats.steals == 0


class TestSimulateValidation:
    def test_rejects_bad_inputs(self):
        with pytest.raises(ValidationError):
            simulate_schedule([1.0, -2.0], 2)
        with pytest.raises(ValidationError):
            simulate_schedule([1.0], 2, speeds=[1.0])
        with pytest.raises(ValidationError):
            simulate_schedule([1.0], 1, speeds=[0.0])
        with pytest.raises(ValidationError):
            simulate_schedule([1.0], 1, strategy="fifo")
        with pytest.raises(ValidationError):
            simulate_schedule([1.0, 1.0], 1, strategy="lpt",
                              estimates=[1.0])

    def test_stale_estimates_hurt_lpt_not_steal(self):
        """The F19 mechanism: LPT places by belief, stealing by observation."""
        costs = [9.0, 1.0, 1.0, 1.0, 9.0, 1.0, 1.0, 1.0]
        uniform = [1.0] * len(costs)
        lpt = simulate_schedule(costs, 4, strategy="lpt", estimates=uniform)
        steal = simulate_schedule(costs, 4, strategy="steal", seed=0)
        assert steal.makespan <= lpt.makespan

    def test_speeds_stretch_durations(self):
        schedule = simulate_schedule([2.0, 2.0], 2, strategy="static",
                                     speeds=[1.0, 3.0])
        finish = schedule.worker_finish()
        assert math.isclose(finish[0], 2.0) and math.isclose(finish[1], 6.0)


# ----------------------------------------------------------------------
# Integration: runner guards and the simulated cluster.
# ----------------------------------------------------------------------


MODEL = MultiAssetGBM.single(100.0, 0.2, 0.05)


class TestRunnerGuards:
    def test_inline_engine_rejects_scheduling(self):
        from repro.core.lattice_parallel import ParallelLatticePricer

        pricer = ParallelLatticePricer(64)
        pricer.scheduler = "steal"
        with pytest.raises(ValidationError, match="runs inline"):
            pricer.price(MODEL, Call(100.0), 1.0, 2)

    def test_non_schedulable_engine_rejects(self, monkeypatch):
        from repro.core.mc_parallel import ParallelMCPricer
        from repro.engine.mc import MCEngine

        monkeypatch.setattr(MCEngine, "schedulable", False)
        pricer = ParallelMCPricer(1_000, seed=0, scheduler="lpt")
        with pytest.raises(ValidationError, match="not schedulable"):
            pricer.price(MODEL, Call(100.0), 1.0, 2)

    def test_static_string_is_always_allowed(self):
        from repro.core.lattice_parallel import ParallelLatticePricer

        pricer = ParallelLatticePricer(64)
        ref = pricer.price(MODEL, Call(100.0), 1.0, 2).price
        pricer.scheduler = "static"
        assert float_bits(pricer.price(MODEL, Call(100.0), 1.0, 2).price) \
            == float_bits(ref)

    def test_registry_schedulable_filter(self):
        from repro.engine.registry import default_registry

        names = default_registry().names(schedulable=True)
        assert "mc" in names and "lattice" not in names


class TestSimClusterScheduling:
    def test_schedule_compute_deterministic(self):
        from repro.parallel.simcluster import MachineSpec, SimulatedCluster

        units = [(11 * i) % 7 + 1 for i in range(24)]

        def run():
            cluster = SimulatedCluster(4, MachineSpec())
            schedule = cluster.schedule_compute(units, strategy="steal",
                                                seed=2)
            return schedule.digest(), cluster.report()["elapsed"]

        (d1, t1), (d2, t2) = run(), run()
        assert d1 == d2
        assert float_bits(t1) == float_bits(t2)

    def test_steal_beats_static_on_skew(self):
        from repro.parallel.simcluster import MachineSpec, SimulatedCluster

        # Front-loaded skew: the static block partition welds the heavy
        # tasks onto worker 0 while the rest idle.
        units = [40.0] * 4 + [1.0] * 28

        def elapsed(strategy):
            cluster = SimulatedCluster(4, MachineSpec())
            cluster.schedule_compute(units, strategy=strategy)
            return cluster.report()["elapsed"]

        assert elapsed("steal") < elapsed("static")

    def test_charges_compute_and_idle(self):
        from repro.parallel.simcluster import MachineSpec, SimulatedCluster

        cluster = SimulatedCluster(2, MachineSpec())
        cluster.schedule_compute([3.0, 1.0], strategy="static")
        rep = cluster.report()
        assert rep["compute_time"] > 0.0
        assert rep["elapsed"] > 0.0


# ----------------------------------------------------------------------
# Acceptance lane (-m sched): bitwise equality across the stack.
# ----------------------------------------------------------------------


def _mc_bits(n_paths, seed, p, *, backend=None, **kw):
    from repro.core.mc_parallel import ParallelMCPricer

    pricer = ParallelMCPricer(n_paths, seed=seed, backend=backend, **kw)
    return float_bits(pricer.price(MODEL, Call(100.0), 1.0, p).price)


@pytest.mark.sched
class TestBitwiseAcceptance:
    N, SEED, P = 12_000, 11, 6

    def test_mc_every_strategy_every_backend(self):
        ref = _mc_bits(self.N, self.SEED, self.P)
        for strategy in ("static", "lpt", "steal"):
            for name in ("serial", "thread", "process"):
                with make_backend(name, 2) as backend:
                    assert _mc_bits(self.N, self.SEED, self.P,
                                    backend=backend,
                                    scheduler=strategy) == ref, (
                        strategy, name)

    def test_greeks_scheduled_bitwise(self):
        from repro.core.greeks_parallel import ParallelMCGreeks

        def bits(**kw):
            pricer = ParallelMCGreeks(8_000, seed=3, **kw)
            greeks = pricer.compute(MODEL, Call(100.0), 1.0, 4)
            return [float_bits(v) for v in
                    (greeks.price, float(greeks.delta[0]),
                     float(greeks.vega[0]))]

        ref = bits()
        with ThreadBackend(2) as backend:
            assert bits(backend=backend, scheduler="steal") == ref
            assert bits(backend=backend, scheduler="lpt") == ref

    def test_fault_retry_under_stealing(self):
        from repro.parallel.faults import FaultPlan

        ref = _mc_bits(self.N, self.SEED, self.P)
        with ThreadBackend(2) as backend:
            assert _mc_bits(self.N, self.SEED, self.P, backend=backend,
                            scheduler="steal",
                            faults=FaultPlan.single_crash(2),
                            policy="retry") == ref

    def test_resilient_map_reports_sched(self):
        from repro.parallel.faults import FaultPlan, resilient_map

        plan = FaultPlan.single_crash(1)
        with ThreadBackend(2) as backend:
            results, report = resilient_map(backend, _square, list(range(8)),
                                            plan=plan, policy="retry",
                                            scheduler="steal")
        assert results == [_square(i) for i in range(8)]
        assert report.sched is not None
        assert report.sched.strategy == "steal"
        assert report.sched.n_tasks == 8

    def test_serve_ledger_records_sched(self, tmp_path):
        from repro.obs.ledger import RunLedger
        from repro.serve import PricingRequest, PricingService
        from repro.workloads.generators import random_portfolio

        book = random_portfolio(4, seed=7)
        requests = [PricingRequest(w, engine="mc", n_paths=1_000,
                                   seed=i, p=2, name=w.name)
                    for i, w in enumerate(book)]
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        with ThreadBackend(2) as backend:
            with PricingService(backend, cache=None, ledger=ledger,
                                scheduler="steal",
                                max_batch=len(requests)) as svc:
                plain = svc.price_many(requests)
            with PricingService(backend, cache=None,
                                max_batch=len(requests)) as svc:
                ref = svc.price_many(requests)
        assert [float_bits(q.price) for q in plain] == \
            [float_bits(q.price) for q in ref]
        records = list(ledger.records())
        assert any((r.extra or {}).get("sched", {}).get("strategy") == "steal"
                   for r in records)

    def test_ledger_summary_shows_sched(self, tmp_path):
        from repro.core.mc_parallel import ParallelMCPricer
        from repro.obs.diff import report_table, summarize_ledger
        from repro.obs.ledger import RunLedger

        ledger = RunLedger(tmp_path / "ledger.jsonl")
        pricer = ParallelMCPricer(2_000, seed=1, scheduler="steal")
        pricer.ledger = ledger
        pricer.price(MODEL, Call(100.0), 1.0, 4)
        stats = summarize_ledger(ledger.records())
        wall = stats[("engine", "mc", "wall")]
        assert wall.sched_label.startswith("steal:")
        rendered = report_table(stats).render()
        assert "sched" in rendered
