"""Tests for the determinism checker (repro.verify.determinism), including
the cross-backend bitwise regression coverage for ``mc.multilevel`` and
``mc.american`` that previously existed only for direct MC."""

from __future__ import annotations

import pytest

from repro.parallel.backends import make_backend
from repro.verify.determinism import (DETERMINISM_CHECKS, LSM_CFG, MLMC_CFG,
                                      DeterminismResult, float_bits,
                                      lsm_worker, mlmc_worker,
                                      run_determinism)

N_PATHS = 8_000
SEED = 5


def test_float_bits_is_bit_exact():
    assert float_bits(1.0) == "3ff0000000000000"
    assert float_bits(1.0) != float_bits(1.0 + 2 ** -52)
    assert float_bits(0.0) != float_bits(-0.0)


def test_full_checker_passes():
    results = run_determinism(n_paths=N_PATHS, seed=SEED)
    failures = [r for r in results if not r.ok]
    assert not failures, "\n".join(str(r) for r in failures)
    assert {r.check for r in results} == set(DETERMINISM_CHECKS)


@pytest.mark.parametrize("name", sorted(DETERMINISM_CHECKS))
def test_each_check_passes_standalone(name):
    for r in DETERMINISM_CHECKS[name](N_PATHS, SEED):
        assert r.ok, str(r)


def test_nondeterminism_is_reported_with_bit_patterns():
    bad = DeterminismResult("backend-invariance", "synthetic", False,
                            {"serial": "3ff0000000000000",
                             "thread": "3ff0000000000001"})
    text = str(bad)
    assert "NONDETERMINISTIC" in text
    assert "3ff0000000000000" in text and "3ff0000000000001" in text
    assert bad.to_dict()["ok"] is False


class TestCrossBackendBitwise:
    """mc.multilevel and mc.american across serial/thread/process backends."""

    @pytest.mark.parametrize("worker,cfg", [(mlmc_worker, MLMC_CFG),
                                            (lsm_worker, LSM_CFG)],
                             ids=["multilevel", "american-lsm"])
    def test_backends_agree_bitwise(self, worker, cfg):
        bits = {}
        for name in ("serial", "thread", "process"):
            with make_backend(name, 2) as backend:
                prices = backend.map(worker, [dict(cfg)] * 2)
            # Identical tasks within one backend map bitwise...
            assert float_bits(prices[0]) == float_bits(prices[1])
            bits[name] = float_bits(prices[0])
        # ...and across backends.
        assert len(set(bits.values())) == 1, bits

    @pytest.mark.parametrize("worker,cfg", [(mlmc_worker, MLMC_CFG),
                                            (lsm_worker, LSM_CFG)],
                             ids=["multilevel", "american-lsm"])
    def test_seed_actually_matters(self, worker, cfg):
        # Guard against the checks passing vacuously (e.g. a constant
        # price): a different seed must move the bits.
        base = worker(dict(cfg))
        other = worker({**cfg, "seed": cfg["seed"] + 1})
        assert float_bits(base) != float_bits(other)
