"""Delta-hedging simulation: the Boyle–Emanuel facts."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.market import MultiAssetGBM
from repro.mc import simulate_delta_hedge


@pytest.fixture
def market():
    return MultiAssetGBM.single(100.0, 0.2, 0.05)


class TestCorrectlySpecifiedHedge:
    def test_mean_pnl_near_zero(self, market):
        r = simulate_delta_hedge(market, 100.0, 1.0, 80, 20_000, seed=1)
        assert abs(r.mean_pnl) < 4 * r.stderr_mean + 0.01

    def test_std_shrinks_like_inverse_sqrt(self, market):
        stds = [
            simulate_delta_hedge(market, 100.0, 1.0, m, 20_000, seed=2).std_pnl
            for m in (10, 40, 160)
        ]
        # 4× rebalances ⇒ ~2× smaller hedge error.
        assert stds[1] == pytest.approx(stds[0] / 2.0, rel=0.2)
        assert stds[2] == pytest.approx(stds[1] / 2.0, rel=0.2)

    def test_put_hedge_also_flat(self, market):
        r = simulate_delta_hedge(market, 100.0, 1.0, 80, 20_000, option="put",
                                 seed=3)
        assert abs(r.mean_pnl) < 4 * r.stderr_mean + 0.01

    def test_residual_risk_small_vs_premium(self, market):
        r = simulate_delta_hedge(market, 100.0, 1.0, 160, 10_000, seed=4)
        assert r.std_pnl < 0.1 * r.premium


class TestMisspecifiedHedge:
    def test_sign_of_vol_gap(self, market):
        # Sold + hedged at 15% while realized is 20% ⇒ systematic loss;
        # sold at 25% ⇒ systematic gain (short gamma earns the overpriced
        # premium).
        low = simulate_delta_hedge(market, 100.0, 1.0, 80, 20_000,
                                   hedge_vol=0.15, seed=5)
        high = simulate_delta_hedge(market, 100.0, 1.0, 80, 20_000,
                                    hedge_vol=0.25, seed=5)
        assert low.mean_pnl < -10 * low.stderr_mean
        assert high.mean_pnl > 10 * high.stderr_mean

    def test_pnl_scale_matches_premium_gap(self, market):
        # The systematic P&L ≈ premium(σ_hedge) − premium(σ_true) for small
        # gaps (vega argument).
        from repro.analytic import bs_price

        r = simulate_delta_hedge(market, 100.0, 1.0, 160, 40_000,
                                 hedge_vol=0.25, seed=6)
        gap = bs_price(100, 100, 0.25, 0.05, 1.0) - bs_price(100, 100, 0.2, 0.05, 1.0)
        assert r.mean_pnl == pytest.approx(gap, rel=0.15)

    def test_dividend_market_supported(self):
        model = MultiAssetGBM.single(100.0, 0.2, 0.05, dividend=0.03)
        r = simulate_delta_hedge(model, 100.0, 1.0, 80, 20_000, seed=7)
        assert abs(r.mean_pnl) < 4 * r.stderr_mean + 0.02


class TestValidation:
    def test_single_asset_only(self):
        model = MultiAssetGBM.equicorrelated(2, 100, 0.2, 0.05, 0.3)
        with pytest.raises(ValidationError):
            simulate_delta_hedge(model, 100.0, 1.0, 10, 100)

    def test_option_kind(self, market):
        with pytest.raises(ValidationError):
            simulate_delta_hedge(market, 100.0, 1.0, 10, 100, option="collar")

    def test_result_helpers(self, market):
        r = simulate_delta_hedge(market, 100.0, 1.0, 10, 1_000, seed=8)
        assert "rebalances" in str(r)
        assert np.isfinite(r.pnl_per_premium)
