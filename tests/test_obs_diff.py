"""Ledger summaries and the noise-aware regression diff (the perf gate)."""

import pytest

from repro.errors import ValidationError
from repro.obs import (
    RunRecord,
    diff_ledgers,
    diff_table,
    report_table,
    summarize_ledger,
)


def _rec(stage_s: float, *, kind="engine", engine="mc", stage="execute",
         wall=None) -> RunRecord:
    return RunRecord(run_id="0" * 12, kind=kind, engine=engine,
                     config="c" * 12, backend="serial", workers=1, p=4,
                     stages={stage: stage_s},
                     wall_s=stage_s if wall is None else wall)


def _ledger(times, **kw):
    return [_rec(t, **kw) for t in times]


class TestSummarize:
    def test_groups_by_kind_engine_stage_plus_wall(self):
        records = _ledger([0.1, 0.2]) + _ledger([0.3], engine="pde")
        stats = summarize_ledger(records)
        assert set(stats) == {("engine", "mc", "execute"),
                              ("engine", "mc", "wall"),
                              ("engine", "pde", "execute"),
                              ("engine", "pde", "wall")}
        s = stats[("engine", "mc", "execute")]
        assert s.count == 2 and s.mean == pytest.approx(0.15)
        assert s.cv > 0.0

    def test_empty_ledger_raises(self):
        with pytest.raises(ValidationError, match="no records"):
            summarize_ledger([])

    def test_report_table_renders(self):
        text = report_table(summarize_ledger(_ledger([0.1, 0.2]))).render()
        assert "p50 [s]" in text and "mc" in text


class TestDiff:
    def test_self_diff_is_all_ok_ratio_one(self):
        base = _ledger([0.1, 0.11, 0.09])
        entries = diff_ledgers(base, base)
        assert {e.status for e in entries} == {"ok"}
        assert all(e.ratio == 1.0 for e in entries)

    def test_injected_2x_slowdown_fails(self):
        # The acceptance scenario: exactly 2x slower must trip the gate.
        base = _ledger([0.1, 0.1, 0.1])
        slow = _ledger([0.2, 0.2, 0.2])
        entries = diff_ledgers(base, slow)
        assert all(e.status == "fail" for e in entries)
        assert all(e.ratio == pytest.approx(2.0) for e in entries)

    def test_noise_widens_warn_band_but_not_fail_band(self):
        noisy = _ledger([0.05, 0.1, 0.2])     # cv ~ 0.5+
        drift = _ledger([0.07, 0.14, 0.28])   # 1.4x — inside 3σ noise
        entries = diff_ledgers(noisy, drift)
        assert {e.status for e in entries} == {"ok"}
        e = entries[0]
        assert e.warn_band > 1.25 + 1.0      # noise term engaged
        assert e.fail_band == 2.0            # never widened

    def test_quiet_baseline_warns_on_moderate_regression(self):
        base = _ledger([0.1, 0.1, 0.1])      # cv = 0
        drift = _ledger([0.15, 0.15, 0.15])  # 1.5x: warn, not fail
        entries = diff_ledgers(base, drift)
        assert all(e.status == "warn" for e in entries)

    def test_sub_resolution_and_one_sided_stages_are_info(self):
        base = _ledger([5e-5, 6e-5])          # below min_seconds
        new = _ledger([5e-4, 6e-4])           # 10x — still info
        entries = diff_ledgers(base, new)
        assert {e.status for e in entries} == {"info"}
        only_new = diff_ledgers(_ledger([0.1]),
                                _ledger([0.1]) + _ledger([0.1], engine="pde"))
        pde = [e for e in only_new if e.engine == "pde"]
        assert pde and all(e.status == "info" for e in pde)

    def test_parameter_validation(self):
        base = _ledger([0.1])
        with pytest.raises(ValidationError):
            diff_ledgers(base, base, warn_margin=-0.1)
        with pytest.raises(ValidationError):
            diff_ledgers(base, base, fail_ratio=1.0)

    def test_diff_table_orders_regressions_first(self):
        base = _ledger([0.1]) + _ledger([0.1], engine="pde")
        new = _ledger([0.5]) + _ledger([0.1], engine="pde")
        entries = diff_ledgers(base, new)
        lines = diff_table(entries).render().splitlines()
        rows = [ln for ln in lines if "|" in ln][1:]
        assert rows[0].split("|")[0].strip() == "fail"
