"""The batched pricing service: batching discipline, dedup, cache replay,
metrics — and the price-neutrality contract (quotes are bitwise invariant
to batch boundaries, chunk size, backend and cache state)."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.parallel import ProcessBackend, SerialBackend, ThreadBackend
from repro.payoffs import BasketCall, Call
from repro.serve import (Batch, Batcher, PriceCache, PricingRequest,
                         PricingService, revalue_scenarios)
from repro.verify.determinism import float_bits
from repro.workloads.generators import basket_workload, random_portfolio


def _mc_requests(n, *, paths=1_500, base_seed=0):
    book = random_portfolio(max(n, 1), seed=4)
    return [PricingRequest(book[i % len(book)], engine="mc", n_paths=paths,
                           seed=base_seed + i, p=2) for i in range(n)]


class _FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


class TestBatcher:
    def test_cuts_exactly_at_max_batch(self):
        b = Batcher(max_batch=3)
        reqs = _mc_requests(7)
        cuts = [b.submit(r) for r in reqs]
        batches = [c for c in cuts if c is not None]
        assert [len(batch) for batch in batches] == [3, 3]
        assert len(b) == 1  # one straggler pending
        tail = b.flush()
        assert len(tail) == 1 and b.flush() is None
        assert b.batches_cut == 3
        # No request lost, order preserved.
        replayed = [r for batch in batches + [tail] for r in batch.requests]
        assert replayed == reqs

    def test_deadline_cut_via_injected_clock(self):
        clock = _FakeClock()
        b = Batcher(max_batch=100, max_wait_s=5.0, clock=clock)
        b.submit(_mc_requests(1)[0])
        assert b.poll() is None          # deadline not reached
        clock.t = 4.99
        assert b.poll() is None
        clock.t = 5.0
        batch = b.poll()
        assert batch is not None and len(batch) == 1
        assert b.poll() is None          # nothing pending anymore

    def test_deadline_measured_from_oldest_request(self):
        clock = _FakeClock()
        b = Batcher(max_batch=100, max_wait_s=2.0, clock=clock)
        reqs = _mc_requests(2)
        b.submit(reqs[0])
        clock.t = 1.9
        b.submit(reqs[1])                # newer request does not reset it
        clock.t = 2.0
        assert len(b.poll()) == 2

    def test_rejects_non_requests(self):
        with pytest.raises(ValidationError):
            Batcher().submit("not a request")

    def test_batch_indices_increment(self):
        b = Batcher(max_batch=1)
        batches = [b.submit(r) for r in _mc_requests(3)]
        assert [x.index for x in batches] == [0, 1, 2]


class TestServiceBatching:
    def test_results_in_submission_order(self):
        reqs = _mc_requests(6)
        with PricingService(max_batch=4) as svc:
            for r in reqs:
                svc.submit(r)
            pairs = svc.flush()
        assert [r for r, _ in pairs] == reqs

    def test_batch_boundaries_never_move_a_price(self):
        reqs = _mc_requests(9)
        quotes = {}
        for max_batch in (1, 4, 9):
            with PricingService(max_batch=max_batch, cache=None) as svc:
                quotes[max_batch] = svc.price_many(reqs)
        ref = [float_bits(q.price) for q in quotes[9]]
        for max_batch in (1, 4):
            assert [float_bits(q.price) for q in quotes[max_batch]] == ref

    def test_deadline_flush_with_fake_clock(self):
        clock = _FakeClock()
        reqs = _mc_requests(2)
        with PricingService(max_batch=100, max_wait_s=1.0,
                            clock=clock) as svc:
            svc.submit(reqs[0])
            assert svc.drain() == []
            clock.t = 1.5
            svc.poll()                   # deadline expired → executes
            done = svc.drain()
        assert len(done) == 1 and done[0][0] == reqs[0]

    def test_close_flushes_pending(self):
        reqs = _mc_requests(2)
        svc = PricingService(max_batch=100)
        for r in reqs:
            svc.submit(r)
        svc.close()
        # close() ran the flush; a fresh drain has nothing left.
        assert svc.drain() == []


class TestDedupAndCache:
    def test_duplicates_in_one_batch_priced_once(self):
        w = basket_workload(2)
        dup = PricingRequest(w, engine="mc", n_paths=1_000, seed=7)
        reqs = [dup, dup, dup]
        counting = _CountingBackend()
        with PricingService(counting, max_batch=3, cache=None) as svc:
            quotes = svc.price_many(reqs)
        assert counting.tasks_seen == 1  # one compute fanned out to three
        assert len({float_bits(q.price) for q in quotes}) == 1

    def test_full_hit_replay_issues_zero_map_calls(self):
        reqs = _mc_requests(5)
        cache = PriceCache(32)
        with PricingService(max_batch=5, cache=cache) as svc:
            first = svc.price_many(reqs)
            maps_after_first = svc.map_calls
            second = svc.price_many(reqs)
            assert svc.map_calls == maps_after_first  # zero new map calls
        assert ([float_bits(q.price) for q in first]
                == [float_bits(q.price) for q in second])
        assert cache.hits == len(reqs)

    def test_cache_shared_across_services(self):
        reqs = _mc_requests(3)
        cache = PriceCache(32)
        with PricingService(max_batch=3, cache=cache) as svc:
            first = svc.price_many(reqs)
        with PricingService(max_batch=1, cache=cache) as svc:
            second = svc.price_many(reqs)
            assert svc.map_calls == 0
        assert ([float_bits(q.price) for q in first]
                == [float_bits(q.price) for q in second])

    def test_metrics_counters(self):
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry()
        reqs = _mc_requests(4)
        cache = PriceCache(32)
        with PricingService(max_batch=2, cache=cache,
                            metrics=metrics) as svc:
            svc.price_many(reqs + reqs)  # second half replays from cache
        assert metrics.counter("serve.requests").value == 8
        assert metrics.counter("serve.batches").value == 4
        assert metrics.counter("serve.map_calls").value == 2
        assert metrics.counter("serve.cache_hits").value == 4
        assert metrics.counter("serve.cache_misses").value == 4
        hist = metrics.histogram("serve.batch_size")
        assert hist.count == 4


class TestServeObservability:
    def test_each_batch_appends_a_ledger_record(self, tmp_path):
        from repro.obs import RunLedger

        ledger = RunLedger(tmp_path / "runs.jsonl")
        reqs = _mc_requests(4)
        with PricingService(max_batch=2, ledger=ledger) as svc:
            svc.price_many(reqs)
        records = ledger.records()
        assert len(records) == 2
        for rec in records:
            assert rec.kind == "serve" and rec.engine == "service"
            assert set(rec.stages) == {"batch"}
            assert rec.wall_s == rec.stages["batch"] >= 0.0
            assert rec.extra["requests"] == 2
            assert rec.extra["hits"] + rec.extra["misses"] == 2

    def test_cache_replay_batches_record_zero_map_calls(self, tmp_path):
        from repro.obs import RunLedger

        ledger = RunLedger(tmp_path / "runs.jsonl")
        reqs = _mc_requests(3)
        cache = PriceCache(32)
        with PricingService(max_batch=3, cache=cache, ledger=ledger) as svc:
            svc.price_many(reqs)
            svc.price_many(reqs)
        first, second = ledger.records()
        assert first.extra["map_calls"] == 1 and first.extra["misses"] == 3
        assert second.extra["map_calls"] == 0 and second.extra["hits"] == 3

    def test_metrics_registry_wired_into_backend_task_latency(self):
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry()
        with PricingService(max_batch=4, cache=None,
                            metrics=metrics) as svc:
            assert svc.backend.metrics is metrics
            svc.price_many(_mc_requests(4))
        hist = metrics.histogram("task_latency",
                                 backend=svc.backend.name)
        assert hist.count > 0

    def test_task_latency_feeds_the_chunk_autotuner(self):
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry()
        with PricingService(max_batch=4, cache=None,
                            metrics=metrics) as svc:
            hist = metrics.histogram("task_latency",
                                     backend=svc.backend.name)
            # A dispersed latency profile (stragglers) recorded before the
            # batch lands in the autotuner via observe_histogram.
            for _ in range(30):
                hist.observe(0.001)
            hist.observe(0.064)
            svc.price_many(_mc_requests(4))
            assert svc._autotuner.dispersion > 1.0


class _CountingBackend(SerialBackend):
    """Serial backend that counts the tasks it actually executes."""

    def __init__(self):
        super().__init__()
        self.tasks_seen = 0

    def _run_map(self, worker, tasks):
        self.tasks_seen += len(tasks)
        return super()._run_map(worker, tasks)


class TestBackendNeutrality:
    def test_serial_vs_thread_vs_process_bitwise(self):
        reqs = _mc_requests(4)
        with PricingService(max_batch=4, cache=None) as svc:
            ref = [float_bits(q.price) for q in svc.price_many(reqs)]
        for factory in (lambda: ThreadBackend(2),
                        lambda: ProcessBackend(2)):
            backend = factory()
            try:
                with PricingService(backend, max_batch=4, chunksize=2,
                                    cache=None) as svc:
                    got = [float_bits(q.price) for q in svc.price_many(reqs)]
            finally:
                backend.close()
            assert got == ref

    @pytest.mark.parametrize("engine,kwargs", [
        ("lattice", {"steps": 16}),
        ("pde", {"grid": 32, "steps": 16}),
        ("lsm", {"steps": 8, "n_paths": 800}),
    ])
    def test_non_mc_engines_route_and_replay(self, engine, kwargs):
        from repro.workloads.generators import rainbow_workload, spread_workload

        w = {"lattice": rainbow_workload, "pde": spread_workload,
             "lsm": lambda: basket_workload(2)}[engine]()
        request = PricingRequest(w, engine=engine, **kwargs)
        cache = PriceCache(8)
        with PricingService(max_batch=1, cache=cache) as svc:
            a = svc.price_many([request])[0]
            b = svc.price_many([request])[0]
        assert a.engine == engine
        assert float_bits(a.price) == float_bits(b.price)
        assert cache.hits == 1


class TestRevalueScenarios:
    def _scenarios(self, n=4_000, dim=3):
        rng = np.random.default_rng(12)
        return 80.0 + 40.0 * rng.random((n, dim))

    def test_serial_matches_numpy_reference(self):
        scen = self._scenarios()
        payoffs = [BasketCall([1 / 3] * 3, k) for k in (90.0, 100.0, 110.0)]
        got = revalue_scenarios(payoffs, scen, discount=0.95)
        ref = [0.95 * float(np.mean(p.terminal(scen))) for p in payoffs]
        assert got == ref

    @pytest.mark.skipif(os.name != "posix", reason="fork backend is POSIX-only")
    def test_process_shm_chunked_bitwise_equals_serial(self):
        scen = self._scenarios()
        payoffs = [BasketCall([1 / 3] * 3, 80.0 + k) for k in range(12)]
        ref = revalue_scenarios(payoffs, scen)
        with ProcessBackend(2, shm_min_bytes=1024) as backend:
            got = revalue_scenarios(payoffs, scen, backend=backend,
                                    chunksize=3)
            assert backend.last_shm_segments  # the matrix actually crossed shm
        assert [float_bits(x) for x in got] == [float_bits(x) for x in ref]

    def test_rejects_non_matrix_scenarios(self):
        with pytest.raises(ValidationError):
            revalue_scenarios([Call(100.0)], np.zeros(5))

    def test_per_scenario_discount_vector(self):
        scen = self._scenarios(n=500)
        payoffs = [BasketCall([1 / 3] * 3, k) for k in (90.0, 110.0)]
        disc = np.exp(-0.05 * np.linspace(0.5, 2.0, scen.shape[0]))
        got = revalue_scenarios(payoffs, scen, discount=disc)
        ref = [float(np.mean(disc * p.terminal(scen))) for p in payoffs]
        assert [float_bits(x) for x in got] == [float_bits(x) for x in ref]

    def test_discount_vector_length_mismatch_raises(self):
        scen = self._scenarios(n=100)
        with pytest.raises(ValidationError):
            revalue_scenarios([Call(100.0)], scen, discount=np.ones(99))
        with pytest.raises(ValidationError):
            revalue_scenarios([Call(100.0)], scen, discount=np.ones((100, 1)))


class TestPortfolioServeIntegration:
    def test_portfolio_cache_and_backend_bitwise(self):
        from repro.core import PortfolioPricer

        book = random_portfolio(6, seed=2)
        base = PortfolioPricer(2_000, seed=5, steps=4).run(book, 2)
        bits = [float_bits(r.price) for r in base.results]

        cache = PriceCache(32)
        first = PortfolioPricer(2_000, seed=5, steps=4, cache=cache,
                                schedule="lpt").run(book, 2)
        replay = PortfolioPricer(2_000, seed=5, steps=4, cache=cache,
                                 schedule="cyclic").run(book, 2)
        assert [float_bits(r.price) for r in first.results] == bits
        assert [float_bits(r.price) for r in replay.results] == bits
        assert cache.hits == len(book)  # second run fully served from cache
        # Simulated accounting is unaffected by caching.
        assert replay.sim_time > 0.0

        with ThreadBackend(2) as backend:
            threaded = PortfolioPricer(2_000, seed=5, steps=4,
                                       backend=backend,
                                       chunksize=2).run(book, 2)
        assert [float_bits(r.price) for r in threaded.results] == bits
