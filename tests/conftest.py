"""Shared fixtures and hypothesis configuration for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.market import MultiAssetGBM, constant_correlation

# Keep property tests fast and deterministic in CI: modest example counts,
# no deadline (NumPy first-call dispatch can be slow), fixed derandomization.
settings.register_profile(
    "ci",
    max_examples=25,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("ci")


@pytest.fixture
def model_1d() -> MultiAssetGBM:
    """The canonical single-asset test market: S=100, σ=20%, r=5%."""
    return MultiAssetGBM.single(100.0, 0.2, 0.05)


@pytest.fixture
def model_2d() -> MultiAssetGBM:
    """Two-asset market with distinct vols and ρ=0.4 (Stulz/Margrabe tests)."""
    return MultiAssetGBM(
        [100.0, 95.0], [0.2, 0.3], 0.05, correlation=constant_correlation(2, 0.4)
    )


@pytest.fixture
def model_4d() -> MultiAssetGBM:
    """Equicorrelated four-asset basket market."""
    return MultiAssetGBM.equicorrelated(4, 100.0, 0.25, 0.05, 0.3)


@pytest.fixture
def rng_seeded():
    """A fresh Philox generator per test (fixed seed)."""
    from repro.rng import Philox4x32

    return Philox4x32(12345)


def assert_close(actual: float, expected: float, atol: float = 1e-10, rtol: float = 1e-10):
    """Tight scalar comparison with a readable failure message."""
    assert np.isclose(actual, expected, atol=atol, rtol=rtol), (
        f"expected {expected!r}, got {actual!r} (diff {abs(actual - expected):.3e})"
    )
