"""Payoff algebra: parity identities, monotonicity, path dispatch."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import ValidationError
from repro.payoffs import (
    AsianArithmeticCall,
    AsianArithmeticPut,
    AsianGeometricCall,
    BarrierOption,
    BasketCall,
    BasketPut,
    Call,
    CallOnMax,
    CallOnMin,
    DigitalCall,
    DigitalPut,
    ExchangeOption,
    FixedStrikeLookbackCall,
    FixedStrikeLookbackPut,
    FloatingStrikeLookbackCall,
    FloatingStrikeLookbackPut,
    Forward,
    GeometricBasketCall,
    GeometricBasketPut,
    Put,
    PutOnMax,
    PutOnMin,
    SpreadCall,
    Straddle,
)

prices_1d = hnp.arrays(np.float64, st.integers(1, 40),
                       elements=st.floats(0.01, 500.0))


class TestVanilla:
    @given(prices_1d)
    def test_put_call_parity_pointwise(self, s):
        k = 100.0
        s2 = s[:, None]
        lhs = Call(k).terminal(s2) - Put(k).terminal(s2)
        assert np.allclose(lhs, s - k)

    @given(prices_1d)
    def test_straddle_is_call_plus_put(self, s):
        k = 75.0
        s2 = s[:, None]
        assert np.allclose(
            Straddle(k).terminal(s2), Call(k).terminal(s2) + Put(k).terminal(s2)
        )

    def test_digitals_partition_unity(self):
        s = np.array([[50.0], [150.0], [99.0]])
        total = DigitalCall(100.0).terminal(s) + DigitalPut(100.0).terminal(s)
        assert np.allclose(total, 1.0)  # no mass exactly at the strike here

    def test_forward_linear(self):
        s = np.array([[90.0], [110.0]])
        assert np.allclose(Forward(100.0).terminal(s), [-10.0, 10.0])

    def test_multi_asset_column_selection(self):
        p = Call(100.0, asset=1, dim=3)
        s = np.array([[50.0, 120.0, 70.0]])
        assert p.terminal(s)[0] == pytest.approx(20.0)

    def test_asset_out_of_range(self):
        with pytest.raises(ValidationError):
            Call(100.0, asset=2, dim=2)

    def test_shape_validation(self):
        with pytest.raises(ValidationError):
            Call(100.0, dim=2).terminal(np.ones((5, 3)))

    def test_nonpositive_strike_rejected(self):
        with pytest.raises(ValidationError):
            Call(0.0)


class TestBasket:
    def test_weights_normalized(self):
        b = BasketCall([2.0, 2.0], 100.0)
        assert np.allclose(b.weights, 0.5)

    def test_integer_weights_means_equal_weights(self):
        b = BasketCall(4, 100.0)
        assert b.dim == 4
        assert np.allclose(b.weights, 0.25)

    @given(hnp.arrays(np.float64, 3, elements=st.floats(1.0, 300.0)))
    def test_put_call_parity(self, s):
        k = 90.0
        w = [0.5, 0.3, 0.2]
        s2 = s[None, :]
        diff = BasketCall(w, k).terminal(s2) - BasketPut(w, k).terminal(s2)
        assert np.allclose(diff, s2 @ np.asarray(w) - k)

    @given(hnp.arrays(np.float64, 3, elements=st.floats(1.0, 300.0)))
    def test_geometric_below_arithmetic(self, s):
        # AM–GM: geometric basket level ≤ arithmetic, so the call pays less.
        w = [1 / 3] * 3
        s2 = s[None, :]
        g = GeometricBasketCall(w, 50.0).terminal(s2)
        a = BasketCall(w, 50.0).terminal(s2)
        assert g[0] <= a[0] + 1e-9

    def test_geometric_parity(self):
        s = np.array([[100.0, 120.0]])
        w = [0.5, 0.5]
        k = 90.0
        level = np.sqrt(100.0 * 120.0)
        diff = (GeometricBasketCall(w, k).terminal(s)
                - GeometricBasketPut(w, k).terminal(s))
        assert diff[0] == pytest.approx(level - k)

    def test_negative_weights_rejected(self):
        with pytest.raises(ValidationError):
            BasketCall([0.5, -0.5], 100.0)

    def test_geometric_rejects_nonpositive_prices(self):
        with pytest.raises(ValidationError):
            GeometricBasketCall([1.0], 100.0).terminal(np.array([[0.0]]))


class TestRainbow:
    @given(hnp.arrays(np.float64, 2, elements=st.floats(1.0, 300.0)))
    def test_max_min_decomposition(self, s):
        # max(S) + min(S) = S1 + S2 ⇒ CallOnMax + CallOnMin vs baskets.
        k = 80.0
        s2 = s[None, :]
        cmax = CallOnMax(k).terminal(s2)[0]
        cmin = CallOnMin(k).terminal(s2)[0]
        assert cmax >= cmin - 1e-12
        assert cmax == pytest.approx(max(s.max() - k, 0.0))
        assert cmin == pytest.approx(max(s.min() - k, 0.0))

    @given(hnp.arrays(np.float64, 2, elements=st.floats(1.0, 300.0)))
    def test_put_on_extremes(self, s):
        k = 120.0
        s2 = s[None, :]
        assert PutOnMax(k).terminal(s2)[0] == pytest.approx(max(k - s.max(), 0.0))
        assert PutOnMin(k).terminal(s2)[0] == pytest.approx(max(k - s.min(), 0.0))

    def test_exchange_is_zero_strike_spread(self):
        s = np.array([[110.0, 95.0], [90.0, 95.0]])
        assert np.allclose(ExchangeOption().terminal(s), [15.0, 0.0])

    def test_spread_legs_must_differ(self):
        with pytest.raises(ValidationError):
            SpreadCall(5.0, long_asset=1, short_asset=1)

    def test_spread_with_strike(self):
        s = np.array([[110.0, 95.0]])
        assert SpreadCall(10.0).terminal(s)[0] == pytest.approx(5.0)

    def test_rainbow_needs_two_assets(self):
        with pytest.raises(ValidationError):
            CallOnMax(100.0, dim=1)


class TestPathDependent:
    def _paths(self):
        # Two simple deterministic paths on one asset.
        return np.array(
            [
                [[100.0], [110.0], [120.0]],
                [[100.0], [90.0], [80.0]],
            ]
        )

    def test_asian_arithmetic(self):
        p = self._paths()
        # Averages over monitoring dates (excluding t=0): 115 and 85.
        call = AsianArithmeticCall(100.0).path(p)
        put = AsianArithmeticPut(100.0).path(p)
        assert np.allclose(call, [15.0, 0.0])
        assert np.allclose(put, [0.0, 15.0])

    def test_asian_geometric_below_arithmetic(self):
        p = self._paths()
        g = AsianGeometricCall(100.0).path(p)
        a = AsianArithmeticCall(100.0).path(p)
        assert np.all(g <= a + 1e-12)

    def test_asian_terminal_refuses(self):
        with pytest.raises(ValidationError):
            AsianArithmeticCall(100.0).terminal(np.array([[100.0]]))

    def test_call_dispatch_on_rank(self):
        p = self._paths()
        out = AsianArithmeticCall(100.0)(p)  # __call__ with 3-D input
        assert out.shape == (2,)

    def test_lookbacks(self):
        p = self._paths()
        assert np.allclose(FloatingStrikeLookbackCall().path(p), [20.0, 0.0])
        assert np.allclose(FloatingStrikeLookbackPut().path(p), [0.0, 20.0])
        assert np.allclose(FixedStrikeLookbackCall(105.0).path(p), [15.0, 0.0])
        assert np.allclose(FixedStrikeLookbackPut(95.0).path(p), [0.0, 15.0])

    def test_floating_lookbacks_nonnegative_property(self):
        rng = np.random.default_rng(5)
        paths = np.abs(rng.lognormal(size=(50, 6, 1))) * 100.0
        assert np.all(FloatingStrikeLookbackCall().path(paths) >= 0.0)
        assert np.all(FloatingStrikeLookbackPut().path(paths) >= 0.0)

    def test_paths_need_two_dates(self):
        with pytest.raises(ValidationError):
            AsianArithmeticCall(100.0).path(np.ones((3, 1, 1)))


class TestBarrier:
    def _paths(self):
        return np.array(
            [
                [[100.0], [125.0], [110.0]],  # crosses 120 up-barrier
                [[100.0], [105.0], [110.0]],  # never crosses
            ]
        )

    def test_up_and_out_knocks(self):
        b = BarrierOption("up-and-out", "call", 100.0, 120.0)
        assert np.allclose(b.path(self._paths()), [0.0, 10.0])

    def test_up_and_in_complements(self):
        b = BarrierOption("up-and-in", "call", 100.0, 120.0)
        assert np.allclose(b.path(self._paths()), [10.0, 0.0])

    @given(st.integers(0, 100))
    def test_in_out_parity_pathwise(self, seed):
        # KO + KI = vanilla on every path (rebate 0) — exact identity.
        rng = np.random.default_rng(seed)
        paths = 100.0 * np.exp(np.cumsum(rng.normal(0, 0.05, size=(20, 8, 1)), axis=1))
        paths = np.concatenate([np.full((20, 1, 1), 100.0), paths], axis=1)
        for kind in ("up", "down"):
            h = 115.0 if kind == "up" else 85.0
            ko = BarrierOption(f"{kind}-and-out", "call", 100.0, h).path(paths)
            ki = BarrierOption(f"{kind}-and-in", "call", 100.0, h).path(paths)
            vanilla = np.maximum(paths[:, -1, 0] - 100.0, 0.0)
            assert np.allclose(ko + ki, vanilla)

    def test_rebate_paid_on_knockout(self):
        b = BarrierOption("up-and-out", "call", 100.0, 120.0, rebate=3.0)
        assert b.path(self._paths())[0] == pytest.approx(3.0)

    def test_direction_and_knock_properties(self):
        b = BarrierOption("down-and-in", "put", 100.0, 80.0)
        assert b.direction == "down"
        assert b.knock == "in"

    def test_invalid_kind(self):
        with pytest.raises(ValidationError):
            BarrierOption("sideways-and-out", "call", 100.0, 120.0)

    def test_terminal_refuses(self):
        with pytest.raises(ValidationError):
            BarrierOption("up-and-out", "call", 100.0, 120.0).terminal(
                np.array([[100.0]])
            )


class TestRepr:
    def test_repr_shows_parameters(self):
        assert "strike=100.0" in repr(Call(100.0))
        assert "BasketCall" in repr(BasketCall([1, 1], 90.0))
