"""Hypothesis property tests for the closed-form parity identities.

These complement the fixed-point accuracy tests: instead of checking one
contract against one reference number, they assert the *identities* the
formulas must satisfy over a whole region of parameter space — Margrabe
symmetry/parity/homogeneity, Kirk's approximation collapsing to the exact
exchange price at zero strike, geometric-basket upper bounds, and barrier
in-out parity (including dividends, which the fixed-point tests skip).
"""

from __future__ import annotations

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.analytic import (
    barrier_price,
    bs_price,
    geometric_basket_price,
    kirk_spread_price,
    margrabe_price,
)
from repro.market import MultiAssetGBM


def approx(expected, rel=1e-9, abs=1e-9):
    import pytest

    return pytest.approx(expected, rel=rel, abs=abs)


spots = st.floats(50.0, 200.0)
vols = st.floats(0.05, 0.6)
rhos = st.floats(-0.9, 0.9)
rates = st.floats(0.0, 0.1)
divs = st.floats(0.0, 0.05)
expiries = st.floats(0.1, 3.0)


class TestMargrabe:
    @given(s1=spots, s2=spots, v1=vols, v2=vols, rho=rhos, t=expiries,
           q1=divs, q2=divs)
    def test_exchange_parity(self, s1, s2, v1, v2, rho, t, q1, q2):
        # max(S1−S2,0) − max(S2−S1,0) = S1−S2, so the two exchange options
        # differ by exactly the forward spread.
        long_leg = margrabe_price(s1, s2, v1, v2, rho, t,
                                  dividend1=q1, dividend2=q2)
        short_leg = margrabe_price(s2, s1, v2, v1, rho, t,
                                   dividend1=q2, dividend2=q1)
        fwd_spread = s1 * math.exp(-q1 * t) - s2 * math.exp(-q2 * t)
        assert long_leg - short_leg == approx(fwd_spread)

    @given(s1=spots, s2=spots, v1=vols, v2=vols, rho=rhos, t=expiries,
           lam=st.floats(0.1, 10.0))
    def test_scaling_homogeneity(self, s1, s2, v1, v2, rho, t, lam):
        base = margrabe_price(s1, s2, v1, v2, rho, t)
        scaled = margrabe_price(lam * s1, lam * s2, v1, v2, rho, t)
        assert scaled == approx(lam * base)

    @given(s1=spots, s2=spots, v1=vols, v2=vols, rho=rhos, t=expiries)
    def test_bounds(self, s1, s2, v1, v2, rho, t):
        # Intrinsic ≤ price ≤ long-leg spot (the option never exceeds the
        # value of the asset it delivers).
        price = margrabe_price(s1, s2, v1, v2, rho, t)
        assert max(s1 - s2, 0.0) - 1e-9 <= price <= s1 + 1e-9


class TestKirk:
    @given(s1=spots, s2=spots, v1=vols, v2=vols, rho=rhos, r=rates,
           t=expiries)
    def test_zero_strike_is_margrabe(self, s1, s2, v1, v2, rho, r, t):
        # At K = 0 Kirk's blend weight w = F2/(F2+K) = 1, so the
        # approximation reduces to the exact exchange price — independent
        # of the rate, which cancels.
        kirk = kirk_spread_price(s1, s2, 0.0, v1, v2, rho, r, t)
        exact = margrabe_price(s1, s2, v1, v2, rho, t)
        assert kirk == approx(exact)

    @given(s1=spots, s2=spots, v1=vols, v2=vols, rho=rhos, r=rates,
           t=expiries)
    def test_monotone_decreasing_in_strike(self, s1, s2, v1, v2, rho, r, t):
        strikes = (0.0, 5.0, 10.0, 20.0)
        prices = [kirk_spread_price(s1, s2, k, v1, v2, rho, r, t)
                  for k in strikes]
        for lo, hi in zip(prices, prices[1:]):
            assert hi <= lo + 1e-9


class TestGeometricBasket:
    @given(spot=spots, vol=vols, rho=st.floats(0.0, 0.9), r=rates,
           t=expiries, strike=st.floats(60.0, 180.0),
           dim=st.integers(2, 5))
    def test_bounded_by_vanilla_sum(self, spot, vol, rho, r, t, strike, dim):
        # Geometric mean ≤ arithmetic mean and (·)⁺ is subadditive, so
        # C_geo ≤ C_arith ≤ Σ wᵢ · C_BS(Sᵢ, K).
        model = MultiAssetGBM.equicorrelated(dim, spot, vol, r, rho)
        w = [1.0 / dim] * dim
        geo = geometric_basket_price(model, w, strike, t)
        vanilla_sum = sum(wi * bs_price(spot, strike, vol, r, t)
                          for wi in w)
        assert geo <= vanilla_sum + 1e-9

    @given(spot=spots, vol=vols, rho=st.floats(0.0, 0.9), r=rates,
           t=expiries, strike=st.floats(60.0, 180.0))
    def test_degenerate_weights_equal_vanilla(self, spot, vol, rho, r, t,
                                              strike):
        model = MultiAssetGBM.equicorrelated(3, spot, vol, r, rho)
        geo = geometric_basket_price(model, [1.0, 0.0, 0.0], strike, t)
        vanilla = bs_price(spot, strike, vol, r, t)
        assert geo == approx(vanilla)

    @given(spot=spots, vol=vols, rho=st.floats(0.0, 0.9), r=rates,
           t=expiries, strike=st.floats(60.0, 180.0),
           dim=st.integers(2, 5))
    def test_put_call_parity(self, spot, vol, rho, r, t, strike, dim):
        # C − P = df·(G_forward − K) with the basket's lognormal forward.
        from repro.analytic.geometric_basket import geometric_basket_moments

        model = MultiAssetGBM.equicorrelated(dim, spot, vol, r, rho)
        w = [1.0 / dim] * dim
        call = geometric_basket_price(model, w, strike, t, option="call")
        put = geometric_basket_price(model, w, strike, t, option="put")
        m, v = geometric_basket_moments(model, w, t)
        forward = math.exp(m + 0.5 * v * v)
        rhs = math.exp(-r * t) * (forward - strike)
        assert call - put == approx(rhs)


class TestBarrierInOutParity:
    @given(spot=spots, strike=st.floats(60.0, 180.0), vol=vols, r=rates,
           q=divs, t=expiries,
           option=st.sampled_from(["call", "put"]),
           direction=st.sampled_from(["up", "down"]),
           barrier_gap=st.floats(1.05, 2.0))
    def test_in_plus_out_is_vanilla(self, spot, strike, vol, r, q, t,
                                    option, direction, barrier_gap):
        # With zero rebate, knock-in + knock-out = vanilla — for calls and
        # puts, both barrier directions, and nonzero dividend yields.
        barrier = spot * barrier_gap if direction == "up" else spot / barrier_gap
        common = dict(vol=vol, rate=r, expiry=t, option=option, dividend=q)
        knocked_in = barrier_price(spot, strike, barrier,
                                   kind=f"{direction}-and-in", **common)
        knocked_out = barrier_price(spot, strike, barrier,
                                    kind=f"{direction}-and-out", **common)
        vanilla = bs_price(spot, strike, vol, r, t, option=option, dividend=q)
        assert knocked_in + knocked_out == approx(vanilla)

    @given(spot=spots, strike=st.floats(60.0, 180.0), vol=vols, r=rates,
           t=expiries, option=st.sampled_from(["call", "put"]))
    def test_distant_barrier_is_vanilla(self, spot, strike, vol, r, t,
                                        option):
        # An unreachable knock-out barrier leaves the vanilla price intact.
        vanilla = bs_price(spot, strike, vol, r, t, option=option)
        far_out = barrier_price(spot, strike, spot * 50.0, vol, r, t,
                                kind="up-and-out", option=option)
        assert far_out == approx(vanilla, rel=1e-6, abs=1e-6)


def test_margrabe_rate_independence():
    # The discounting and drift cancel: Margrabe needs no rate argument,
    # and Kirk at K=0 must agree for *any* rate.
    for rate in (0.0, 0.03, 0.1):
        kirk = kirk_spread_price(100.0, 96.0, 0.0, 0.25, 0.2, 0.5, rate, 1.0)
        assert kirk == approx(margrabe_price(100.0, 96.0, 0.25, 0.2,
                                                    0.5, 1.0))


def test_barrier_parity_with_rebate_breaks_and_reports():
    # Sanity guard on the parity test itself: a nonzero rebate *should*
    # break in+out == vanilla (both legs collect it), proving the property
    # is not vacuously true.
    common = dict(vol=0.2, rate=0.05, expiry=1.0, option="call", rebate=5.0)
    knocked_in = barrier_price(100.0, 100.0, 130.0, kind="up-and-in", **common)
    knocked_out = barrier_price(100.0, 100.0, 130.0, kind="up-and-out", **common)
    vanilla = bs_price(100.0, 100.0, 0.2, 0.05, 1.0)
    assert knocked_in + knocked_out > vanilla + 0.5
