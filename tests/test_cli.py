"""Command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestPrice:
    def test_basket_prints_price_and_ci(self, capsys):
        code = main(["price", "--contract", "basket", "--dim", "2",
                     "--paths", "20000", "--seed", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "price" in out and "95% CI" in out
        assert "arithmetic-basket-d2" in out

    def test_qmc_rounds_path_count(self, capsys):
        code = main(["price", "--paths", "10001", "--qmc", "--seed", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "qmc-sobol" in out

    @pytest.mark.parametrize("contract", ["rainbow", "spread"])
    def test_other_contracts(self, capsys, contract):
        code = main(["price", "--contract", contract, "--paths", "10000"])
        assert code == 0
        assert contract.split("-")[0] in capsys.readouterr().out or True


class TestScaling:
    def test_mc_report(self, capsys):
        code = main(["scaling", "--engine", "mc", "--plist", "1,2,4",
                     "--paths", "20000"])
        out = capsys.readouterr().out
        assert code == 0
        assert "speedup" in out
        assert "Amdahl fit" in out

    def test_lattice_report(self, capsys):
        code = main(["scaling", "--engine", "lattice", "--plist", "1,4",
                     "--steps", "40"])
        assert code == 0
        assert "lattice" in capsys.readouterr().out

    def test_pde_report(self, capsys):
        code = main(["scaling", "--engine", "pde", "--plist", "1,2",
                     "--grid", "48", "--steps", "32"])
        assert code == 0
        assert "PDE" in capsys.readouterr().out

    def test_bad_plist_is_exit_code_2(self, capsys):
        assert main(["scaling", "--plist", "1,two,3"]) == 2
        assert main(["scaling", "--plist", "0,2"]) == 2

    def test_machine_parameters_accepted(self, capsys):
        code = main(["scaling", "--plist", "1,2", "--paths", "10000",
                     "--alpha", "5e-6", "--beta", "1e-9"])
        assert code == 0

    def test_emit_trace_writes_artifacts(self, capsys, tmp_path):
        prefix = str(tmp_path / "scale")
        code = main(["scaling", "--plist", "1,2", "--paths", "8000",
                     "--emit-trace", prefix])
        out = capsys.readouterr().out
        assert code == 0
        assert "trace summary" in out
        doc = json.loads((tmp_path / "scale.trace.json").read_text())
        assert any(e.get("ph") == "X" for e in doc["traceEvents"])
        metrics = json.loads((tmp_path / "scale.metrics.json").read_text())
        assert "sim.messages" in metrics["counters"]


class TestTrace:
    def test_mc_trace_writes_trace_and_metrics(self, capsys, tmp_path):
        prefix = str(tmp_path / "run")
        code = main(["trace", "--engine", "mc", "--p", "4",
                     "--paths", "8000", "--out", prefix])
        out = capsys.readouterr().out
        assert code == 0
        assert "trace summary" in out and "price" in out
        doc = json.loads((tmp_path / "run.trace.json").read_text())
        names = {e["name"] for e in doc["traceEvents"]}
        assert "mc.paths" in names and "mc.reduce" in names
        metrics = json.loads((tmp_path / "run.metrics.json").read_text())
        assert metrics["gauges"]["sim.p"] == 4

    def test_chaos_trace_has_fault_instants(self, capsys, tmp_path):
        prefix = str(tmp_path / "chaos")
        code = main(["trace", "--engine", "mc", "--p", "8",
                     "--paths", "8000", "--fault-seed", "7",
                     "--crash-rate", "0.5", "--out", prefix])
        out = capsys.readouterr().out
        assert code == 0
        assert "faults" in out
        doc = json.loads((tmp_path / "chaos.trace.json").read_text())
        assert any(e.get("ph") == "i" for e in doc["traceEvents"])

    @pytest.mark.parametrize("engine,extra", [
        ("lattice", ["--steps", "24"]),
        ("pde", ["--grid", "32", "--steps", "16"]),
        ("lsm", ["--paths", "2000", "--steps", "8"]),
    ])
    def test_other_engines(self, capsys, tmp_path, engine, extra):
        prefix = str(tmp_path / engine)
        code = main(["trace", "--engine", engine, "--p", "2",
                     "--out", prefix, *extra])
        assert code == 0
        assert (tmp_path / f"{engine}.trace.json").exists()

    def test_process_backend_writes_worker_trace(self, capsys, tmp_path):
        prefix = str(tmp_path / "mcp")
        code = main(["trace", "--engine", "mc", "--p", "2",
                     "--paths", "4000", "--backend", "process",
                     "--out", prefix])
        assert code == 0
        doc = json.loads((tmp_path / "mcp.workers.trace.json").read_text())
        assert any(e["name"] == "task" for e in doc["traceEvents"])


class TestPortfolio:
    def test_all_schedules_reported(self, capsys):
        code = main(["portfolio", "--contracts", "6", "--paths", "5000",
                     "--ranks", "3"])
        out = capsys.readouterr().out
        assert code == 0
        for sched in ("block", "cyclic", "lpt", "dynamic"):
            assert sched in out


class TestPortfolioCache:
    def test_shared_cache_replays_three_of_four_schedules(self, capsys):
        code = main(["portfolio", "--contracts", "4", "--paths", "3000",
                     "--ranks", "2"])
        out = capsys.readouterr().out
        assert code == 0
        # 4 contracts valued once, then replayed by the other 3 schedules.
        assert "4 contracts valued, 12 replayed" in out
        assert "hit rate 75%" in out


class TestServe:
    def test_stream_with_cache_and_replay(self, capsys):
        code = main(["serve", "--requests", "12", "--contracts", "4",
                     "--paths", "1500", "--batch", "4", "--repeat", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "req/s" in out and "hit rate" in out
        # Pass 2 is a pure replay: zero backend map calls, 100 % hit rate.
        rows = [ln.split("|") for ln in out.splitlines() if "|" in ln]
        pass2 = next(r for r in rows if r[0].strip() == "2")
        assert int(pass2[3]) == 0
        assert float(pass2[4]) == 1.0

    def test_cache_disabled(self, capsys):
        code = main(["serve", "--requests", "4", "--contracts", "4",
                     "--paths", "1000", "--batch", "2", "--cache", "0",
                     "--repeat", "1", "--chunksize", "none"])
        assert code == 0

    def test_bad_chunksize_is_exit_code_2(self, capsys):
        assert main(["serve", "--requests", "2", "--chunksize", "bogus"]) == 2


def _write_ledger(path, times, engine="mc"):
    from repro.obs import RunLedger, RunRecord

    ledger = RunLedger(path)
    for t in times:
        ledger.append(RunRecord(run_id="0" * 12, kind="engine",
                                engine=engine, config="c" * 12,
                                backend="serial", workers=1, p=4,
                                stages={"execute": t}, wall_s=t))
    return path


class TestObs:
    def test_report_summarizes_ledger(self, tmp_path, capsys):
        path = _write_ledger(tmp_path / "runs.jsonl", [0.1, 0.2])
        code = main(["obs", "report", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "p50 [s]" in out and "mc" in out

    def test_report_missing_ledger_is_exit_2(self, tmp_path, capsys):
        assert main(["obs", "report", str(tmp_path / "nope.jsonl")]) == 2
        assert "error" in capsys.readouterr().err

    def test_diff_self_replay_is_quiet(self, tmp_path, capsys):
        path = _write_ledger(tmp_path / "base.jsonl", [0.1, 0.11, 0.09])
        code = main(["obs", "diff", str(path), str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 failures" in out

    def test_diff_injected_2x_slowdown_exits_1(self, tmp_path, capsys):
        base = _write_ledger(tmp_path / "base.jsonl", [0.1, 0.1, 0.1])
        slow = _write_ledger(tmp_path / "slow.jsonl", [0.2, 0.2, 0.2])
        code = main(["obs", "diff", str(base), str(slow)])
        out = capsys.readouterr().out
        assert code == 1
        assert "FAIL" in out

    def test_flame_writes_collapsed_profile(self, tmp_path, capsys):
        out_path = tmp_path / "mc.collapsed"
        code = main(["obs", "flame", "--engine", "mc", "--p", "2",
                     "--paths", "40000", "--repeat", "2",
                     "--interval-ms", "1", "--seed", "3",
                     "--out", str(out_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "collapsed:" in out and "price" in out
        assert out_path.exists()

    def test_serve_ledger_flag_appends_batch_records(self, tmp_path, capsys):
        from repro.obs import read_ledger

        path = tmp_path / "serve.jsonl"
        code = main(["serve", "--requests", "6", "--contracts", "3",
                     "--paths", "1000", "--batch", "3", "--repeat", "1",
                     "--ledger", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "ledger" in out
        records = list(read_ledger(path))
        assert records and all(r.kind == "serve" for r in records)


class TestGateway:
    def test_overload_sweep_reports_and_sheds(self, capsys):
        code = main(["gateway", "--shards", "4", "--overload", "2x",
                     "--duration", "2", "--seed", "5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "4 shards" in out and "2x capacity" in out
        assert "goodput" in out and "shed rate" in out
        assert "latency by lane" in out and "interactive" in out
        assert "per-shard queues and caches" in out

    def test_repeat_book_priced_prints_digests(self, capsys):
        code = main(["gateway", "--shards", "2", "--overload", "0.5",
                     "--duration", "0.5", "--paths", "400",
                     "--repeat-book", "--priced", "--seed", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "digests" in out and "prices" in out

    def test_closed_loop_mode(self, capsys):
        code = main(["gateway", "--shards", "2", "--closed", "4",
                     "--think", "0.02", "--duration", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "closed loop, 4 clients" in out

    def test_ledger_flag_appends_gateway_record(self, tmp_path, capsys):
        from repro.obs import read_ledger

        path = tmp_path / "gateway.jsonl"
        code = main(["gateway", "--shards", "2", "--duration", "1",
                     "--ledger", str(path)])
        assert code == 0
        assert "ledger" in capsys.readouterr().out
        records = list(read_ledger(path))
        assert len(records) == 1 and records[0].kind == "gateway"
        assert records[0].extra["goodput"] > 0

    def test_bad_overload_is_a_usage_error(self, capsys):
        assert main(["gateway", "--overload", "fast"]) == 2
        assert main(["gateway", "--overload", "0x"]) == 2
        err = capsys.readouterr().err
        assert "--overload" in err


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])
