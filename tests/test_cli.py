"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestPrice:
    def test_basket_prints_price_and_ci(self, capsys):
        code = main(["price", "--contract", "basket", "--dim", "2",
                     "--paths", "20000", "--seed", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "price" in out and "95% CI" in out
        assert "arithmetic-basket-d2" in out

    def test_qmc_rounds_path_count(self, capsys):
        code = main(["price", "--paths", "10001", "--qmc", "--seed", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "qmc-sobol" in out

    @pytest.mark.parametrize("contract", ["rainbow", "spread"])
    def test_other_contracts(self, capsys, contract):
        code = main(["price", "--contract", contract, "--paths", "10000"])
        assert code == 0
        assert contract.split("-")[0] in capsys.readouterr().out or True


class TestScaling:
    def test_mc_report(self, capsys):
        code = main(["scaling", "--engine", "mc", "--plist", "1,2,4",
                     "--paths", "20000"])
        out = capsys.readouterr().out
        assert code == 0
        assert "speedup" in out
        assert "Amdahl fit" in out

    def test_lattice_report(self, capsys):
        code = main(["scaling", "--engine", "lattice", "--plist", "1,4",
                     "--steps", "40"])
        assert code == 0
        assert "lattice" in capsys.readouterr().out

    def test_pde_report(self, capsys):
        code = main(["scaling", "--engine", "pde", "--plist", "1,2",
                     "--grid", "48", "--steps", "32"])
        assert code == 0
        assert "PDE" in capsys.readouterr().out

    def test_bad_plist_is_exit_code_2(self, capsys):
        assert main(["scaling", "--plist", "1,two,3"]) == 2
        assert main(["scaling", "--plist", "0,2"]) == 2

    def test_machine_parameters_accepted(self, capsys):
        code = main(["scaling", "--plist", "1,2", "--paths", "10000",
                     "--alpha", "5e-6", "--beta", "1e-9"])
        assert code == 0


class TestPortfolio:
    def test_all_schedules_reported(self, capsys):
        code = main(["portfolio", "--contracts", "6", "--paths", "5000",
                     "--ranks", "3"])
        out = capsys.readouterr().out
        assert code == 0
        for sched in ("block", "cyclic", "lpt", "dynamic"):
            assert sched in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])
