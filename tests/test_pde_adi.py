"""2-D ADI solver against multi-asset closed forms."""

import numpy as np
import pytest

from repro.analytic import (
    kirk_spread_price,
    margrabe_price,
    rainbow_two_asset_price,
)
from repro.errors import ValidationError
from repro.market import MultiAssetGBM, constant_correlation
from repro.payoffs import (
    AsianGeometricCall,
    BasketCall,
    Call,
    CallOnMax,
    CallOnMin,
    ExchangeOption,
    SpreadCall,
)
from repro.pde import ADISolver, adi_price


class TestAccuracy:
    def test_exchange_vs_margrabe(self, model_2d):
        exact = margrabe_price(100, 95, 0.2, 0.3, 0.4, 1.0)
        r = adi_price(model_2d, ExchangeOption(), 1.0, n_space=160, n_time=80)
        assert r.price == pytest.approx(exact, abs=0.03)

    @pytest.mark.parametrize("kind,payoff", [
        ("call-on-max", CallOnMax(100.0)),
        ("call-on-min", CallOnMin(100.0)),
    ])
    def test_rainbow_vs_stulz(self, model_2d, kind, payoff):
        exact = rainbow_two_asset_price(100, 95, 100, 0.2, 0.3, 0.4, 0.05, 1.0,
                                        kind=kind)
        r = adi_price(model_2d, payoff, 1.0, n_space=160, n_time=80)
        assert r.price == pytest.approx(exact, abs=0.05)

    def test_spread_vs_kirk(self):
        model = MultiAssetGBM([100.0, 96.0], [0.25, 0.2], 0.05,
                              correlation=constant_correlation(2, 0.5))
        kirk = kirk_spread_price(100, 96, 5.0, 0.25, 0.2, 0.5, 0.05, 1.0)
        r = adi_price(model, SpreadCall(5.0), 1.0, n_space=160, n_time=80)
        # Kirk is itself approximate — agree to ~1%.
        assert r.price == pytest.approx(kirk, rel=0.02)

    def test_basket_two_assets(self, model_2d):
        # Sanity: 2-asset basket call prices between the two vanilla extremes.
        r = adi_price(model_2d, BasketCall([0.5, 0.5], 100.0), 1.0,
                      n_space=120, n_time=60)
        assert 0 < r.price < 100

    def test_negative_correlation(self):
        model = MultiAssetGBM([100.0, 95.0], [0.2, 0.3], 0.05,
                              correlation=constant_correlation(2, -0.6))
        exact = margrabe_price(100, 95, 0.2, 0.3, -0.6, 1.0)
        r = adi_price(model, ExchangeOption(), 1.0, n_space=200, n_time=100)
        assert r.price == pytest.approx(exact, rel=0.01)

    def test_grid_refinement_reduces_error(self, model_2d):
        exact = margrabe_price(100, 95, 0.2, 0.3, 0.4, 1.0)
        coarse = adi_price(model_2d, ExchangeOption(), 1.0, n_space=60,
                           n_time=30).price
        fine = adi_price(model_2d, ExchangeOption(), 1.0, n_space=240,
                         n_time=120).price
        assert abs(fine - exact) < abs(coarse - exact)


class TestAmerican:
    def test_american_geq_european(self, model_2d):
        eu = adi_price(model_2d, CallOnMax(100.0), 1.0, n_space=100, n_time=50)
        am = adi_price(model_2d, CallOnMax(100.0), 1.0, n_space=100, n_time=50,
                       american=True)
        assert am.price >= eu.price - 1e-9

    def test_american_max_call_with_dividends_vs_lattice(self):
        from repro.lattice import beg_price

        model = MultiAssetGBM(
            [100.0, 100.0], [0.2, 0.2], 0.05, dividends=[0.1, 0.1],
            correlation=constant_correlation(2, 0.0),
        )
        tree = beg_price(model, CallOnMax(100.0), 1.0, 150, american=True).price
        r = adi_price(model, CallOnMax(100.0), 1.0, n_space=200, n_time=100,
                      american=True)
        assert r.price == pytest.approx(tree, rel=0.01)


class TestSolverObject:
    def test_step_preserves_shape(self, model_2d):
        solver = ADISolver(model_2d, 1.0, n_space=40, n_time=10)
        sx, sy = solver.grid_x.s, solver.grid_y.s
        mesh = np.stack(np.meshgrid(sx, sy, indexing="ij"), axis=-1).reshape(-1, 2)
        v = ExchangeOption().terminal(mesh).reshape(sx.size, sy.size)
        out = solver.step(v)
        assert out.shape == v.shape

    def test_mixed_term_zero_for_uncorrelated(self):
        model = MultiAssetGBM([100.0, 95.0], [0.2, 0.3], 0.05)
        solver = ADISolver(model, 1.0, n_space=20, n_time=5)
        v = np.outer(np.arange(21.0), np.arange(21.0))
        assert np.allclose(solver.mixed_term(v), 0.0)

    def test_mixed_term_on_separable_product(self, model_2d):
        # V = x·y has V_xy = 1 ⇒ mixed term = ρσ₁σ₂ in the interior.
        solver = ADISolver(model_2d, 1.0, n_space=20, n_time=5)
        x = solver.grid_x.x
        y = solver.grid_y.x
        v = np.outer(x, y)
        out = solver.mixed_term(v)
        expected = 0.4 * 0.2 * 0.3
        assert np.allclose(out[1:-1, 1:-1], expected, rtol=1e-10)

    def test_requires_two_assets(self, model_1d):
        with pytest.raises(ValidationError):
            ADISolver(model_1d, 1.0)

    def test_payoff_dim_checked(self, model_2d):
        solver = ADISolver(model_2d, 1.0, n_space=20, n_time=5)
        with pytest.raises(ValidationError):
            solver.price(Call(100.0))

    def test_path_dependent_rejected(self, model_2d):
        solver = ADISolver(model_2d, 1.0, n_space=20, n_time=5)
        with pytest.raises(ValidationError):
            solver.price(AsianGeometricCall(100.0, dim=2))

    def test_delta_reported(self, model_2d):
        r = adi_price(model_2d, CallOnMax(100.0), 1.0, n_space=100, n_time=50)
        assert 0 < r.delta < 1
        assert 0 < r.meta["delta2"] < 1
