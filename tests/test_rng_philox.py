"""Philox4x32: counter semantics, exact jumps, key splitting."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.rng import Philox4x32


class TestCounterSemantics:
    def test_reproducible(self):
        assert np.array_equal(Philox4x32(5).random_raw(64), Philox4x32(5).random_raw(64))

    def test_stream_parameter_changes_output(self):
        a = Philox4x32(5, stream=0).random_raw(64)
        b = Philox4x32(5, stream=1).random_raw(64)
        assert not np.array_equal(a, b)

    @given(st.integers(0, 2000), st.integers(1, 500))
    def test_jump_is_exact_at_any_offset(self, skip, n):
        ref = Philox4x32(9).random_raw(skip + n)
        g = Philox4x32(9)
        g.jump(skip)
        assert np.array_equal(g.random_raw(n), ref[skip:])

    def test_position_tracks_consumption(self):
        g = Philox4x32(1)
        g.random_raw(13)
        g.jump(5)
        assert g.position == 18

    def test_clone_at_odd_position(self):
        g = Philox4x32(2)
        g.random_raw(7)  # mid-block
        c = g.clone()
        assert np.array_equal(g.random_raw(9), c.random_raw(9))

    def test_negative_jump_rejected(self):
        with pytest.raises(ValidationError):
            Philox4x32(1).jump(-3)


class TestSplitting:
    def test_children_differ_from_parent_and_each_other(self):
        parent = Philox4x32(7)
        kids = parent.spawn(5)
        streams = [parent.clone().random_raw(256)] + [k.random_raw(256) for k in kids]
        for i in range(len(streams)):
            for j in range(i + 1, len(streams)):
                assert not np.array_equal(streams[i], streams[j])

    def test_spawn_is_deterministic(self):
        a = Philox4x32(7).spawn(3)[2].random_raw(32)
        b = Philox4x32(7).spawn(3)[2].random_raw(32)
        assert np.array_equal(a, b)

    def test_children_uncorrelated(self):
        kids = Philox4x32(11).spawn(2)
        u0 = kids[0].uniforms(100_000)
        u1 = kids[1].uniforms(100_000)
        assert abs(np.corrcoef(u0, u1)[0, 1]) < 0.01


class TestStatistics:
    def test_uniform_moments(self):
        u = Philox4x32(3).uniforms(200_000)
        assert abs(u.mean() - 0.5) < 0.005
        assert abs(u.var() - 1.0 / 12.0) < 0.002

    def test_bit_balance(self):
        # Each of the 64 output bits should be ~50% ones.
        raw = Philox4x32(17).random_raw(20_000)
        for bit in (0, 1, 31, 32, 63):
            ones = ((raw >> np.uint64(bit)) & np.uint64(1)).mean()
            assert abs(ones - 0.5) < 0.02, f"bit {bit} biased: {ones}"

    def test_normals_moments(self):
        z = Philox4x32(19).normals(200_000)
        assert abs(z.mean()) < 0.01
        assert abs(z.std() - 1.0) < 0.01
        # Kurtosis of a standard normal is 3.
        kurt = np.mean(z**4)
        assert abs(kurt - 3.0) < 0.1


class TestEdgeCases:
    def test_zero_draws(self):
        assert Philox4x32(0).random_raw(0).size == 0

    def test_single_draw_across_block_boundary(self):
        g = Philox4x32(4)
        ref = Philox4x32(4).random_raw(4)
        singles = np.array([g.random_raw(1)[0] for _ in range(4)])
        assert np.array_equal(singles, ref)
