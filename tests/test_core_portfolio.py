"""Portfolio task farm: schedule-invariant prices, load-balance ordering."""

import numpy as np
import pytest

from repro.core import PortfolioPricer
from repro.errors import ValidationError
from repro.workloads import basket_workload, random_portfolio

#: Dims chosen so contract costs are strongly heterogeneous (1×..8×).
MIXED_BOOK_DIMS = (1, 1, 1, 8, 8, 2, 2, 4, 1, 4, 8, 2)


def _mixed_book():
    return [basket_workload(d) for d in MIXED_BOOK_DIMS]


class TestPriceInvariance:
    def test_schedule_never_changes_prices(self):
        book = _mixed_book()
        values = {}
        for sched in ("block", "cyclic", "lpt"):
            run = PortfolioPricer(10_000, schedule=sched, seed=1).run(book, 4)
            values[sched] = tuple(r.price for r in run.results)
        assert values["block"] == values["cyclic"] == values["lpt"]

    def test_p_never_changes_prices(self):
        book = _mixed_book()
        pricer = PortfolioPricer(10_000, schedule="lpt", seed=1)
        run1 = pricer.run(book, 1)
        run8 = pricer.run(book, 8)
        assert tuple(r.price for r in run1.results) == tuple(
            r.price for r in run8.results
        )

    def test_deterministic_in_seed(self):
        book = _mixed_book()
        a = PortfolioPricer(10_000, seed=5).run(book, 2).total_value
        b = PortfolioPricer(10_000, seed=5).run(book, 2).total_value
        c = PortfolioPricer(10_000, seed=6).run(book, 2).total_value
        assert a == b
        assert a != c


class TestScheduling:
    def test_lpt_minimizes_makespan_on_heterogeneous_book(self):
        book = _mixed_book()
        times = {}
        for sched in ("block", "cyclic", "lpt"):
            run = PortfolioPricer(10_000, schedule=sched, seed=1).run(book, 4)
            times[sched] = run.sim_time
        assert times["lpt"] <= times["block"] + 1e-12
        assert times["lpt"] <= times["cyclic"] + 1e-12

    def test_lpt_near_lower_bound(self):
        book = _mixed_book()
        pricer = PortfolioPricer(10_000, schedule="lpt", seed=1)
        run = pricer.run(book, 4)
        costs = run.meta["costs"]
        flop = pricer.spec.flop_time
        lower_bound = max(sum(costs) / 4, max(costs)) * flop
        # Graham's bound: LPT ≤ (4/3 − 1/3p)·OPT ≤ 4/3·lower bound (+comm).
        assert run.sim_time <= lower_bound * (4.0 / 3.0) + 0.01

    def test_homogeneous_book_all_schedules_tie(self):
        book = [basket_workload(4) for _ in range(8)]
        times = [
            PortfolioPricer(10_000, schedule=s, seed=1).run(book, 4).sim_time
            for s in ("block", "cyclic", "lpt")
        ]
        assert max(times) - min(times) < 1e-9

    def test_imbalance_metric(self):
        book = _mixed_book()
        run_lpt = PortfolioPricer(10_000, schedule="lpt", seed=1).run(book, 4)
        run_blk = PortfolioPricer(10_000, schedule="block", seed=1).run(book, 4)
        assert run_lpt.imbalance <= run_blk.imbalance + 1e-12
        assert run_lpt.imbalance >= 0.0

    def test_assignment_covers_all_contracts(self):
        book = _mixed_book()
        run = PortfolioPricer(10_000, schedule="cyclic", seed=1).run(book, 5)
        assert len(run.assignment) == len(book)
        assert set(run.assignment) <= set(range(5))

    def test_single_rank(self):
        book = _mixed_book()[:3]
        run = PortfolioPricer(10_000, seed=1).run(book, 1)
        assert run.imbalance == pytest.approx(0.0)

    def test_more_ranks_than_contracts(self):
        book = _mixed_book()[:2]
        run = PortfolioPricer(10_000, schedule="lpt", seed=1).run(book, 8)
        assert np.isfinite(run.sim_time)


class TestScalingBehaviour:
    def test_speedup_with_p(self):
        book = random_portfolio(16, dim=4, seed=2)
        pricer = PortfolioPricer(20_000, schedule="lpt", seed=1)
        t1 = pricer.run(book, 1).sim_time
        t8 = pricer.run(book, 8).sim_time
        assert t1 / t8 > 5.0

    def test_accuracy_on_random_book(self):
        # Portfolio pricing must agree with pricing each contract alone.
        from repro.mc import MonteCarloEngine

        book = random_portfolio(3, dim=3, seed=4)
        run = PortfolioPricer(50_000, seed=9).run(book, 2)
        for w, res in zip(book, run.results):
            solo = MonteCarloEngine(50_000, seed=99).price(w.model, w.payoff,
                                                           w.expiry)
            assert abs(res.price - solo.price) < 4 * (res.stderr + solo.stderr)


class TestValidation:
    def test_empty_book(self):
        with pytest.raises(ValidationError):
            PortfolioPricer(1000).run([], 2)

    def test_bad_schedule(self):
        with pytest.raises(ValidationError):
            PortfolioPricer(1000, schedule="random")


class TestDynamicSchedule:
    def test_dynamic_balances_without_cost_estimates(self):
        book = _mixed_book()
        dyn = PortfolioPricer(10_000, schedule="dynamic", seed=1).run(book, 4)
        blk = PortfolioPricer(10_000, schedule="block", seed=1).run(book, 4)
        # Self-scheduling balances at least as well as naive block here,
        # despite paying a dispatch latency per contract.
        assert dyn.sim_time <= blk.sim_time + 4 * 50e-6 * len(book)

    def test_dynamic_pays_dispatch_overhead_on_homogeneous_book(self):
        book = [basket_workload(4) for _ in range(8)]
        dyn = PortfolioPricer(10_000, schedule="dynamic", seed=1).run(book, 4)
        lpt = PortfolioPricer(10_000, schedule="lpt", seed=1).run(book, 4)
        # Same balance, but dynamic adds one alpha per contract.
        assert dyn.sim_time > lpt.sim_time
        assert dyn.sim_time == pytest.approx(lpt.sim_time + 2 * 50e-6, rel=0.2)

    def test_dynamic_prices_match_other_schedules(self):
        book = _mixed_book()
        dyn = PortfolioPricer(10_000, schedule="dynamic", seed=1).run(book, 4)
        blk = PortfolioPricer(10_000, schedule="block", seed=1).run(book, 4)
        assert tuple(r.price for r in dyn.results) == tuple(
            r.price for r in blk.results
        )
