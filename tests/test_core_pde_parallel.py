"""Parallel ADI pricer: bit-identity with the sequential solver and the
transpose-bound scaling shape."""

import numpy as np
import pytest

from repro.core import ParallelPDEPricer
from repro.errors import ValidationError
from repro.market import MultiAssetGBM, constant_correlation
from repro.parallel import MachineSpec
from repro.payoffs import CallOnMax, ExchangeOption, SpreadCall
from repro.pde import adi_price


class TestBitIdentity:
    @pytest.mark.parametrize("p", [1, 2, 3, 8, 16])
    def test_matches_sequential_for_any_p(self, model_2d, p):
        seq = adi_price(model_2d, SpreadCall(5.0), 1.0, n_space=96, n_time=24).price
        par = ParallelPDEPricer(n_space=96, n_time=24).price(
            model_2d, SpreadCall(5.0), 1.0, p
        )
        assert par.price == pytest.approx(seq, abs=1e-12)

    @pytest.mark.parametrize("p", [1, 4])
    def test_american_matches_sequential(self, p):
        model = MultiAssetGBM(
            [100.0, 100.0], [0.2, 0.2], 0.05, dividends=[0.1, 0.1],
            correlation=constant_correlation(2, 0.0),
        )
        seq = adi_price(model, CallOnMax(100.0), 1.0, n_space=80, n_time=20,
                        american=True).price
        par = ParallelPDEPricer(n_space=80, n_time=20, american=True).price(
            model, CallOnMax(100.0), 1.0, p
        )
        assert par.price == pytest.approx(seq, abs=1e-12)

    def test_exchange_accuracy_preserved(self, model_2d):
        from repro.analytic import margrabe_price

        exact = margrabe_price(100, 95, 0.2, 0.3, 0.4, 1.0)
        par = ParallelPDEPricer(n_space=160, n_time=80).price(
            model_2d, ExchangeOption(), 1.0, 8
        )
        assert par.price == pytest.approx(exact, abs=0.03)


class TestScalingShape:
    def test_speedup_peaks_then_degrades(self, model_2d):
        pricer = ParallelPDEPricer(n_space=128, n_time=16)
        results = pricer.sweep(model_2d, SpreadCall(5.0), 1.0, [1, 2, 4, 8, 16, 64])
        t1 = results[0].sim_time
        speedups = [t1 / r.sim_time for r in results]
        # Rises first...
        assert speedups[1] > 1.2
        # ...but the O(P) all-to-all eventually wins: P=64 worse than peak.
        assert speedups[-1] < max(speedups[:5])

    def test_comm_dominated_by_alltoall_volume(self, model_2d):
        p = 8
        r = ParallelPDEPricer(n_space=96, n_time=10).price(
            model_2d, SpreadCall(5.0), 1.0, p
        )
        # Two all-to-alls per step, each P(P−1) messages, plus a final bcast.
        expected_msgs = 10 * 2 * p * (p - 1) + (p - 1)
        assert r.messages == expected_msgs

    def test_bigger_grid_scales_better(self, model_2d):
        effs = []
        for n_space in (48, 96, 192):
            pricer = ParallelPDEPricer(n_space=n_space, n_time=8)
            rs = pricer.sweep(model_2d, SpreadCall(5.0), 1.0, [1, 8])
            effs.append(rs[0].sim_time / rs[1].sim_time / 8)
        assert effs[0] < effs[2]

    def test_network_sensitivity(self, model_2d):
        slow = ParallelPDEPricer(n_space=96, n_time=8,
                                 spec=MachineSpec(alpha=500e-6, beta=1e-7)).price(
            model_2d, SpreadCall(5.0), 1.0, 8
        )
        fast = ParallelPDEPricer(n_space=96, n_time=8,
                                 spec=MachineSpec(alpha=5e-6, beta=1e-9)).price(
            model_2d, SpreadCall(5.0), 1.0, 8
        )
        assert fast.sim_time < slow.sim_time
        assert fast.price == slow.price


class TestValidation:
    def test_requires_two_asset_model(self, model_1d):
        with pytest.raises(ValidationError):
            ParallelPDEPricer(n_space=40, n_time=4).price(
                model_1d, SpreadCall(5.0, dim=2), 1.0, 2
            )

    def test_meta(self, model_2d):
        r = ParallelPDEPricer(n_space=40, n_time=4).price(
            model_2d, SpreadCall(5.0), 1.0, 2
        )
        assert r.engine == "pde"
        assert r.meta["n_space"] == 40
        assert r.stderr == 0.0
