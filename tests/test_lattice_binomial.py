"""1-D binomial lattice: convergence, schemes, American exercise."""

import numpy as np
import pytest

from repro.analytic import bs_greeks, bs_price
from repro.errors import StabilityError, ValidationError
from repro.lattice import binomial_parameters, binomial_price, richardson_price
from repro.payoffs import AsianGeometricCall, BasketCall, Call, Put, Straddle


class TestParameters:
    @pytest.mark.parametrize("scheme", ["crr", "jr", "tian"])
    def test_moments_roughly_matched(self, scheme):
        # One-step mean must match the risk-neutral growth to O(dt²).
        dt = 1.0 / 500
        u, d, p = binomial_parameters(0.2, 0.05, 0.0, dt, scheme)
        mean = p * u + (1 - p) * d
        assert mean == pytest.approx(np.exp(0.05 * dt), abs=1e-6)

    def test_crr_symmetry(self):
        u, d, _ = binomial_parameters(0.3, 0.02, 0.0, 0.01, "crr")
        assert u * d == pytest.approx(1.0)

    def test_jr_equal_probability(self):
        _, _, p = binomial_parameters(0.3, 0.02, 0.0, 0.01, "jr")
        assert p == 0.5

    def test_coarse_grid_raises_stability(self):
        # Huge drift with tiny vol pushes p out of (0,1).
        with pytest.raises(StabilityError):
            binomial_parameters(0.01, 0.5, 0.0, 1.0, "crr")

    def test_unknown_scheme(self):
        with pytest.raises(ValidationError):
            binomial_parameters(0.2, 0.05, 0.0, 0.01, "leisen")


class TestEuropeanConvergence:
    @pytest.mark.parametrize("scheme", ["crr", "jr", "tian"])
    def test_converges_to_black_scholes(self, scheme):
        # Binomial prices oscillate in n; average adjacent step counts to
        # damp the even/odd wobble before comparing errors.
        exact = bs_price(100, 100, 0.2, 0.05, 1.0)

        def smoothed_err(n):
            a = binomial_price(100, Call(100.0), 0.2, 0.05, 1.0, n,
                               scheme=scheme).price
            b = binomial_price(100, Call(100.0), 0.2, 0.05, 1.0, n + 1,
                               scheme=scheme).price
            return abs(0.5 * (a + b) - exact)

        assert smoothed_err(1600) < smoothed_err(100)
        assert smoothed_err(1600) < 5e-3

    def test_put_call_parity_at_finite_steps(self):
        c = binomial_price(100, Call(95.0), 0.2, 0.05, 1.0, 64).price
        p = binomial_price(100, Put(95.0), 0.2, 0.05, 1.0, 64).price
        assert c - p == pytest.approx(100 - 95 * np.exp(-0.05), abs=1e-9)

    def test_straddle_additivity(self):
        s = binomial_price(100, Straddle(100.0), 0.2, 0.05, 1.0, 128).price
        c = binomial_price(100, Call(100.0), 0.2, 0.05, 1.0, 128).price
        p = binomial_price(100, Put(100.0), 0.2, 0.05, 1.0, 128).price
        assert s == pytest.approx(c + p, abs=1e-10)

    def test_dividend_yield(self):
        with_div = binomial_price(100, Call(100.0), 0.2, 0.05, 1.0, 400,
                                  dividend=0.03).price
        exact = bs_price(100, 100, 0.2, 0.05, 1.0, dividend=0.03)
        assert with_div == pytest.approx(exact, abs=0.02)


class TestGreeksFromTree:
    def test_delta_gamma_close_to_analytic(self):
        r = binomial_price(100, Call(100.0), 0.2, 0.05, 1.0, 1000)
        g = bs_greeks(100, 100, 0.2, 0.05, 1.0)
        assert r.delta[0] == pytest.approx(g.delta, abs=5e-3)
        assert r.gamma == pytest.approx(g.gamma, rel=0.05)


class TestAmerican:
    def test_american_put_premium(self):
        euro = binomial_price(100, Put(100.0), 0.2, 0.05, 1.0, 500).price
        amer = binomial_price(100, Put(100.0), 0.2, 0.05, 1.0, 500,
                              american=True).price
        assert amer > euro
        assert amer == pytest.approx(6.09, abs=0.03)  # classical reference

    def test_american_call_no_dividend_equals_european(self):
        euro = binomial_price(100, Call(100.0), 0.2, 0.05, 1.0, 500).price
        amer = binomial_price(100, Call(100.0), 0.2, 0.05, 1.0, 500,
                              american=True).price
        assert amer == pytest.approx(euro, abs=1e-9)

    def test_deep_itm_american_put_is_intrinsic(self):
        r = binomial_price(10, Put(100.0), 0.2, 0.05, 1.0, 200, american=True)
        assert r.price == pytest.approx(90.0, abs=1e-9)


class TestRichardson:
    def test_reduces_error(self):
        exact = bs_price(100, 100, 0.2, 0.05, 1.0)
        plain = binomial_price(100, Call(100.0), 0.2, 0.05, 1.0, 400).price
        extrap = richardson_price(
            lambda n: binomial_price(100, Call(100.0), 0.2, 0.05, 1.0, n), 200
        ).price
        assert abs(extrap - exact) < abs(plain - exact)

    def test_meta_records_both_grids(self):
        r = richardson_price(
            lambda n: binomial_price(100, Call(100.0), 0.2, 0.05, 1.0, n), 100
        )
        assert "coarse_price" in r.meta and "fine_price" in r.meta
        assert r.steps == 200

    def test_invalid_order(self):
        with pytest.raises(ValidationError):
            richardson_price(lambda n: binomial_price(
                100, Call(100.0), 0.2, 0.05, 1.0, n), 10, order=0.0)


class TestValidation:
    def test_rejects_multi_asset_payoff(self):
        with pytest.raises(ValidationError, match="single-asset"):
            binomial_price(100, BasketCall([0.5, 0.5], 100.0), 0.2, 0.05, 1.0, 10)

    def test_rejects_path_dependent(self):
        with pytest.raises(ValidationError, match="path-dependent"):
            binomial_price(100, AsianGeometricCall(100.0), 0.2, 0.05, 1.0, 10)

    def test_node_count_reported(self):
        r = binomial_price(100, Call(100.0), 0.2, 0.05, 1.0, 10)
        assert r.nodes == 11 * 12 // 2
