"""Importance sampling and multilevel Monte Carlo."""

import numpy as np
import pytest

from repro.analytic import bs_price, geometric_asian_price
from repro.errors import ValidationError
from repro.market import MultiAssetGBM
from repro.mc import (
    ImportanceSampling,
    MonteCarloEngine,
    PlainMC,
    drift_to_strike,
    mlmc_price,
)
from repro.payoffs import (
    AsianArithmeticCall,
    AsianGeometricCall,
    BasketCall,
    Call,
    CallOnMax,
)
from repro.rng import Philox4x32


class TestDriftToStrike:
    def test_zero_shift_when_already_itm(self, model_1d):
        shift = drift_to_strike(model_1d, Call(50.0), 1.0)
        assert np.allclose(shift, 0.0)

    def test_shift_hits_strike(self, model_1d):
        shift = drift_to_strike(model_1d, Call(180.0), 1.0)
        prices = model_1d.terminal_from_normals(shift[None, :], 1.0)
        assert prices[0, 0] == pytest.approx(180.0, rel=1e-6)

    def test_basket_shift(self, model_4d):
        payoff = BasketCall([0.25] * 4, 160.0)
        shift = drift_to_strike(model_4d, payoff, 1.0)
        prices = model_4d.terminal_from_normals(shift[None, :], 1.0)
        assert payoff.basket_level(prices)[0] == pytest.approx(160.0, rel=1e-6)

    def test_requires_strike(self, model_1d):
        from repro.payoffs import FloatingStrikeLookbackCall

        with pytest.raises(ValidationError, match="strike"):
            drift_to_strike(model_1d, FloatingStrikeLookbackCall(), 1.0)

    def test_zero_strike_spread_needs_no_shift(self, model_2d):
        # ExchangeOption carries strike = 0, which every positive price
        # exceeds — the auto-shift is legitimately zero.
        from repro.payoffs import ExchangeOption

        assert np.allclose(drift_to_strike(model_2d, ExchangeOption(), 1.0), 0.0)


class TestImportanceSampling:
    def test_unbiased_on_otm_call(self, model_1d):
        exact = bs_price(100, 180, 0.2, 0.05, 1.0)
        shift = drift_to_strike(model_1d, Call(180.0), 1.0)
        r = MonteCarloEngine(100_000, technique=ImportanceSampling(shift),
                            seed=1).price(model_1d, Call(180.0), 1.0)
        assert r.within(exact, z=5)

    def test_large_variance_reduction_deep_otm(self, model_1d):
        shift = drift_to_strike(model_1d, Call(200.0), 1.0)
        plain = MonteCarloEngine(100_000, seed=2).price(model_1d, Call(200.0), 1.0)
        imp = MonteCarloEngine(100_000, technique=ImportanceSampling(shift),
                              seed=2).price(model_1d, Call(200.0), 1.0)
        assert imp.stderr < 0.2 * max(plain.stderr, 1e-12)

    def test_zero_shift_equals_plain(self, model_1d):
        plain = PlainMC().estimate(model_1d, Call(100.0), 1.0, 20_000,
                                   Philox4x32(3))
        imp = ImportanceSampling(np.zeros(1)).estimate(
            model_1d, Call(100.0), 1.0, 20_000, Philox4x32(3)
        )
        assert imp[0] == pytest.approx(plain[0], rel=1e-12)

    def test_multi_asset_otm_basket(self, model_4d):
        payoff = BasketCall([0.25] * 4, 170.0)
        shift = drift_to_strike(model_4d, payoff, 1.0)
        plain = MonteCarloEngine(100_000, seed=4).price(model_4d, payoff, 1.0)
        imp = MonteCarloEngine(100_000, technique=ImportanceSampling(shift),
                              seed=4).price(model_4d, payoff, 1.0)
        assert imp.stderr < plain.stderr
        assert abs(imp.price - plain.price) < 5 * plain.stderr + 1e-4

    def test_shift_length_checked(self, model_4d):
        with pytest.raises(ValidationError):
            ImportanceSampling([1.0]).partial(
                model_4d, BasketCall([0.25] * 4, 100.0), 1.0, 100, Philox4x32(0)
            )

    def test_path_dependent_rejected(self, model_1d):
        with pytest.raises(ValidationError):
            ImportanceSampling([1.0]).partial(
                model_1d, AsianGeometricCall(100.0), 1.0, 100, Philox4x32(0),
                steps=12,
            )

    def test_parallel_composes(self, model_1d):
        from repro.core import ParallelMCPricer

        shift = drift_to_strike(model_1d, Call(180.0), 1.0)
        pricer = ParallelMCPricer(40_000, technique=ImportanceSampling(shift),
                                  seed=5)
        r = pricer.price(model_1d, Call(180.0), 1.0, 8)
        exact = bs_price(100, 180, 0.2, 0.05, 1.0)
        assert abs(r.price - exact) < 5 * r.stderr + 1e-5


class TestMLMC:
    def test_matches_fine_level_estimate(self, model_1d):
        res = mlmc_price(model_1d, AsianArithmeticCall(100.0), 1.0,
                         base_steps=4, levels=3, target_stderr=0.02, seed=1)
        fine = MonteCarloEngine(150_000, steps=32, seed=2).price(
            model_1d, AsianArithmeticCall(100.0), 1.0
        )
        assert abs(res.price - fine.price) < 4 * (res.stderr + fine.stderr) + 0.01

    def test_geometric_asian_near_closed_form(self, model_1d):
        res = mlmc_price(model_1d, AsianGeometricCall(100.0), 1.0,
                         base_steps=8, levels=3, target_stderr=0.01, seed=3)
        exact = geometric_asian_price(100, 100, 0.2, 0.05, 1.0, 64)
        assert abs(res.price - exact) < 5 * res.stderr + 0.01

    def test_level_variances_decay(self, model_1d):
        res = mlmc_price(model_1d, AsianArithmeticCall(100.0), 1.0,
                         base_steps=4, levels=4, target_stderr=0.02, seed=4)
        v = res.var_per_level
        # Coupled corrections: V_ℓ falls by ≳2× per level past level 1.
        assert v[2] < v[1]
        assert v[4] < v[2]
        assert v[4] < 0.05 * v[0]

    def test_sample_counts_decay(self, model_1d):
        res = mlmc_price(model_1d, AsianArithmeticCall(100.0), 1.0,
                         base_steps=4, levels=4, target_stderr=0.02, seed=5)
        n = res.n_per_level
        assert n[0] > n[2] > n[4]

    def test_cheaper_than_single_level_at_matched_error(self, model_1d):
        res = mlmc_price(model_1d, AsianArithmeticCall(100.0), 1.0,
                         base_steps=4, levels=4, target_stderr=0.01, seed=6)
        # Single-level cost for the same stderr on the finest grid:
        # N_single = (σ/ε)², cost = N_single × 64 steps.
        fine = MonteCarloEngine(20_000, steps=64, seed=7).price(
            model_1d, AsianArithmeticCall(100.0), 1.0
        )
        sigma = fine.stderr * np.sqrt(20_000)
        single_cost = (sigma / 0.01) ** 2 * 64
        assert res.cost_units < 0.5 * single_cost

    def test_deterministic(self, model_1d):
        a = mlmc_price(model_1d, AsianArithmeticCall(100.0), 1.0,
                       base_steps=4, levels=2, target_stderr=0.05, seed=8)
        b = mlmc_price(model_1d, AsianArithmeticCall(100.0), 1.0,
                       base_steps=4, levels=2, target_stderr=0.05, seed=8)
        assert a.price == b.price

    def test_multi_asset_supported(self, model_2d):
        payoff = AsianArithmeticCall(100.0, asset=0, dim=2)
        res = mlmc_price(model_2d, AsianArithmeticCall(100.0, dim=2), 1.0,
                         base_steps=4, levels=2, target_stderr=0.05, seed=9)
        assert np.isfinite(res.price) and res.price > 0

    def test_terminal_payoff_rejected(self, model_1d):
        with pytest.raises(ValidationError, match="path-dependent"):
            mlmc_price(model_1d, Call(100.0), 1.0, levels=2)

    def test_str(self, model_1d):
        res = mlmc_price(model_1d, AsianArithmeticCall(100.0), 1.0,
                         base_steps=4, levels=1, target_stderr=0.1, seed=10)
        assert "mlmc" in str(res)
