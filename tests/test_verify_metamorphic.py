"""Tests for the metamorphic property suite (repro.verify.metamorphic)."""

from __future__ import annotations

import pytest

from repro.verify.metamorphic import (METAMORPHIC_CHECKS, PropertyResult,
                                      run_metamorphic)

N_PATHS = 8_000
SEED = 3


def test_full_suite_holds():
    results = run_metamorphic(n_paths=N_PATHS, seed=SEED)
    failures = [r for r in results if not r.ok]
    assert not failures, "\n".join(str(r) for r in failures)
    # Every registered check contributed at least one result.
    assert {r.prop for r in results} == set(METAMORPHIC_CHECKS)


def test_suite_is_deterministic():
    first = run_metamorphic(n_paths=N_PATHS, seed=SEED)
    second = run_metamorphic(n_paths=N_PATHS, seed=SEED)
    assert [r.measured for r in first] == [r.measured for r in second]


@pytest.mark.parametrize("name", sorted(METAMORPHIC_CHECKS))
def test_each_check_passes_standalone(name):
    for r in METAMORPHIC_CHECKS[name](N_PATHS, SEED):
        assert r.ok, str(r)
        assert r.prop == name


def test_exact_properties_have_zero_residual():
    """CRN ordering and schedule invariance are deterministic claims:
    their residuals must be exactly zero, not merely within tolerance."""
    strike = METAMORPHIC_CHECKS["strike-monotonicity"](N_PATHS, SEED)
    sched = METAMORPHIC_CHECKS["schedule-invariance"](N_PATHS, SEED)
    for r in strike + sched:
        assert r.measured == 0.0, str(r)


def test_violation_is_reported_not_raised():
    bad = PropertyResult("put-call-parity", "synthetic", False, 1.0, 0.1)
    assert not bad.ok
    text = str(bad)
    assert "VIOLATED" in text and "put-call-parity" in text
    doc = bad.to_dict()
    assert doc["ok"] is False and doc["measured"] == 1.0


def test_to_dict_round_trip():
    results = run_metamorphic(n_paths=N_PATHS, seed=SEED)
    for r in results:
        doc = r.to_dict()
        assert set(doc) == {"prop", "subject", "ok", "measured", "allowed",
                            "detail"}
        assert doc["ok"] is True
