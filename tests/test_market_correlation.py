"""Correlation utilities."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.market import (
    cholesky_factor,
    constant_correlation,
    is_positive_semidefinite,
    random_correlation,
)


class TestConstantCorrelation:
    def test_structure(self):
        m = constant_correlation(3, 0.5)
        assert np.allclose(np.diag(m), 1.0)
        off = m[~np.eye(3, dtype=bool)]
        assert np.allclose(off, 0.5)

    def test_dim_one(self):
        assert constant_correlation(1, 0.9).shape == (1, 1)

    def test_lower_feasibility_bound(self):
        # For d assets, rho ≥ −1/(d−1); just inside works, outside raises.
        m = constant_correlation(4, -1.0 / 3.0 + 1e-9)
        assert is_positive_semidefinite(m)
        with pytest.raises(ValidationError):
            constant_correlation(4, -0.4)

    @given(st.integers(2, 8), st.floats(min_value=0.0, max_value=0.99))
    def test_always_factorizable(self, dim, rho):
        m = constant_correlation(dim, rho)
        l_factor = cholesky_factor(m)
        assert np.allclose(l_factor @ l_factor.T, m, atol=1e-10)


class TestCholesky:
    def test_identity(self):
        assert np.allclose(cholesky_factor(np.eye(4)), np.eye(4))

    def test_lower_triangular(self):
        m = constant_correlation(3, 0.4)
        l_factor = cholesky_factor(m)
        assert np.allclose(np.triu(l_factor, 1), 0.0)

    def test_singular_psd_handled(self):
        # Perfect correlation is PSD but singular; the bump retry handles it.
        m = np.array([[1.0, 1.0], [1.0, 1.0]])
        l_factor = cholesky_factor(m)
        assert np.allclose(l_factor @ l_factor.T, m, atol=1e-6)

    def test_indefinite_raises_without_repair(self):
        m = np.array([[1.0, 0.9, 0.9], [0.9, 1.0, -0.9], [0.9, -0.9, 1.0]])
        with pytest.raises(ValidationError):
            cholesky_factor(m)

    def test_repair_flag_projects_then_factors(self):
        m = np.array([[1.0, 0.9, 0.9], [0.9, 1.0, -0.9], [0.9, -0.9, 1.0]])
        l_factor = cholesky_factor(m, repair=True)
        reconstructed = l_factor @ l_factor.T
        assert is_positive_semidefinite(reconstructed)
        assert np.allclose(np.diag(reconstructed), 1.0, atol=1e-8)


class TestRandomCorrelation:
    @given(st.integers(1, 8), st.integers(0, 50))
    def test_always_valid(self, dim, seed):
        m = random_correlation(dim, seed)
        assert m.shape == (dim, dim)
        assert np.allclose(np.diag(m), 1.0)
        assert np.allclose(m, m.T)
        assert is_positive_semidefinite(m)
        assert np.all(np.abs(m) <= 1.0 + 1e-12)

    def test_deterministic_in_seed(self):
        assert np.allclose(random_correlation(4, 7), random_correlation(4, 7))
        assert not np.allclose(random_correlation(4, 7), random_correlation(4, 8))

    def test_concentration_shrinks_offdiagonals(self):
        loose = random_correlation(6, 1, concentration=0.5)
        tight = random_correlation(6, 1, concentration=20.0)
        off = ~np.eye(6, dtype=bool)
        assert np.abs(tight[off]).mean() < np.abs(loose[off]).mean()


class TestIsPsd:
    def test_detects_both_cases(self):
        assert is_positive_semidefinite(np.eye(2))
        assert not is_positive_semidefinite(np.array([[1.0, 2.0], [2.0, 1.0]]))
