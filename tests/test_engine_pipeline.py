"""The unified engine pipeline: registry coverage, determinism, shims.

Every parallel family now prices through the shared runner
(:mod:`repro.engine.runner`). These tests gate the refactor's contract:

* the capability registry covers all five parallel families, and every
  subsystem hook resolves by canonical name only;
* pricing is bitwise deterministic per engine (two fresh runs agree on
  every bit of every numeric field);
* the legacy ``repro.core`` adapters and a direct ``run_engine`` call on
  the registry-resolved pipeline class agree on every result field except
  the wall clock;
* the ``repro.core.result`` import shim still exposes the one shared
  :class:`~repro.engine.result.ParallelRunResult`.
"""

import numpy as np
import pytest

from repro.core import (
    ParallelLatticePricer,
    ParallelLSMPricer,
    ParallelMCGreeks,
    ParallelMCPricer,
    ParallelPDEPricer,
)
from repro.engine import PARALLEL_ENGINES, REFERENCE_FAMILIES, run_engine
from repro.engine.names import GREEKS, LATTICE, LSM, MC, PDE
from repro.engine.registry import (
    EngineCapabilities,
    EngineRegistry,
    EngineSpec,
    default_registry,
)
from repro.errors import ValidationError
from repro.workloads.suites import scaling_workload

#: Per-family factory: a fresh legacy config plus the rank count to run at.
#: Sizes are small — the whole module prices in a few seconds.
CONFIGS = {
    MC: lambda: (ParallelMCPricer(4_000, seed=3), 4),
    LATTICE: lambda: (ParallelLatticePricer(24), 3),
    PDE: lambda: (ParallelPDEPricer(n_space=24, n_time=6), 2),
    LSM: lambda: (ParallelLSMPricer(2_000, 4, seed=5), 3),
    GREEKS: lambda: (ParallelMCGreeks(2_000, seed=7), 2),
}

#: Every ParallelRunResult field except wall_time (backend-dependent) and
#: meta (may carry non-comparable diagnostics like the recorded cluster).
COMPARED_FIELDS = ("price", "stderr", "p", "sim_time", "compute_time",
                   "comm_time", "idle_time", "messages", "bytes_moved",
                   "engine")


def _run_legacy(name):
    cfg, p = CONFIGS[name]()
    w = scaling_workload(name)
    return cfg.price(w.model, w.payoff, w.expiry, p)


class TestRegistryCoverage:
    def test_every_parallel_family_is_registered(self):
        assert default_registry().names(parallel=True) == PARALLEL_ENGINES

    def test_reference_families_match_constant(self):
        assert default_registry().names(reference=True) == REFERENCE_FAMILIES

    def test_every_parallel_family_has_a_test_config(self):
        assert set(CONFIGS) == set(PARALLEL_ENGINES)

    @pytest.mark.parametrize("name", PARALLEL_ENGINES)
    def test_pipeline_hook_resolves_matching_engine_class(self, name):
        engine_cls = default_registry().get(name).pipeline()
        assert engine_cls.name == name

    def test_servable_families(self):
        assert default_registry().names(servable=True) == (MC, LATTICE, PDE, LSM)

    def test_scalable_and_traceable_families(self):
        reg = default_registry()
        assert reg.names(scalable=True) == (MC, LATTICE, PDE, LSM)
        assert reg.names(traceable=True) == (MC, LATTICE, PDE, LSM)

    def test_unknown_engine_raises(self):
        with pytest.raises(ValidationError, match="unknown engine"):
            default_registry().get("fft")

    def test_duplicate_registration_raises(self):
        reg = EngineRegistry()
        reg.register(EngineSpec(name="x", summary="first"))
        with pytest.raises(ValidationError, match="already registered"):
            reg.register(EngineSpec(name="x", summary="second"))

    def test_capability_flags(self):
        reg = default_registry()
        assert reg.get(MC).capabilities.degradable
        assert reg.get(MC).capabilities.supports_qmc
        assert not reg.get(MC).capabilities.american
        for name in (LATTICE, PDE, LSM):
            assert reg.get(name).capabilities.american, name
        assert reg.get(PDE).capabilities.max_dim == 2
        assert EngineCapabilities(stochastic=True, american=True).flags() == (
            "stochastic", "american")

    def test_only_mc_uses_a_real_backend_in_the_trace_cli(self):
        reg = default_registry()
        assert reg.get(MC).uses_backend
        assert not any(reg.get(n).uses_backend
                       for n in (LATTICE, PDE, LSM, GREEKS))


class TestPipelineDeterminism:
    @pytest.mark.parametrize("name", PARALLEL_ENGINES)
    def test_two_fresh_runs_are_bitwise_identical(self, name):
        a = _run_legacy(name)
        b = _run_legacy(name)
        for f in COMPARED_FIELDS:
            assert getattr(a, f) == getattr(b, f), f

    def test_greeks_arrays_are_bitwise_deterministic(self):
        w = scaling_workload(GREEKS)
        runs = [ParallelMCGreeks(2_000, seed=7).compute(
            w.model, w.payoff, w.expiry, 2) for _ in range(2)]
        for f in ("delta", "gamma", "vega"):
            assert np.array_equal(getattr(runs[0], f), getattr(runs[1], f)), f


class TestLegacyAdapterRegression:
    @pytest.mark.parametrize("name", PARALLEL_ENGINES)
    def test_adapter_matches_registry_resolved_pipeline(self, name):
        # The legacy repro.core entry point and a raw run_engine call on
        # the registry's pipeline class must agree bitwise on everything
        # but the wall clock.
        legacy = _run_legacy(name)
        cfg, p = CONFIGS[name]()
        w = scaling_workload(name)
        engine_cls = default_registry().get(name).pipeline()
        direct = run_engine(engine_cls(cfg), w.model, w.payoff, w.expiry, p)
        for f in COMPARED_FIELDS:
            assert getattr(legacy, f) == getattr(direct, f), f

    def test_result_class_import_shim(self):
        from repro.core import ParallelRunResult as from_core_pkg
        from repro.core.result import ParallelRunResult as from_core_mod
        from repro.engine.result import ParallelRunResult as from_engine

        assert from_core_mod is from_engine
        assert from_core_pkg is from_engine

    @pytest.mark.parametrize("name", PARALLEL_ENGINES)
    def test_result_is_stamped_with_canonical_name(self, name):
        assert _run_legacy(name).engine == name
