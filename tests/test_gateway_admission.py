"""Unit tests for admission control and the GatewayCore state machine.

Everything here runs the core directly with injected instants — no
executor, no clock — pinning the decision semantics the overload tier
and both front-ends rely on: lane drain order, queue bounds, deadline
sheds at the door, expiry sheds at dispatch, EWMA service estimation,
and the canonical decision log.
"""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.gateway.admission import (LANES, AdmissionController, Decision,
                                     GatewayRequest, decision_digest,
                                     lane_priority)
from repro.gateway.core import GatewayCore
from repro.obs.metrics import MetricsRegistry
from repro.serve.batching import PricingRequest
from repro.workloads.generators import strike_strip

BOOK = strike_strip(8)


def _greq(i: int = 0, *, lane: str = "standard", deadline_s: float = 10.0,
          seed: int = 0) -> GatewayRequest:
    contract = BOOK[i % len(BOOK)]
    return GatewayRequest(
        request=PricingRequest(contract, engine="mc", n_paths=1_000,
                               seed=seed, name=contract.name),
        lane=lane, deadline_s=deadline_s)


# -- lanes and validation ----------------------------------------------------

def test_lane_priorities_are_total_and_ordered():
    ranks = [lane_priority(lane) for lane in LANES]
    assert ranks == sorted(ranks) == list(range(len(LANES)))
    with pytest.raises(ValidationError):
        lane_priority("express")


def test_gateway_request_validates():
    with pytest.raises(ValidationError):
        _greq(lane="nope")
    with pytest.raises(ValidationError):
        _greq(deadline_s=0.0)


def test_admission_controller_reasons():
    ctl = AdmissionController(max_queue=2, headroom=1.0)
    admit = ctl.decide(lane_depth=0, work_ahead_s=0.0, service_s=0.1,
                       now=0.0, deadline_at=1.0)
    assert admit == ""
    assert ctl.decide(lane_depth=2, work_ahead_s=0.0, service_s=0.1,
                      now=0.0, deadline_at=1.0) == "queue-full"
    assert ctl.decide(lane_depth=0, work_ahead_s=5.0, service_s=0.1,
                      now=0.0, deadline_at=1.0) == "deadline"
    # Headroom sheds earlier: a marginally feasible wait becomes a shed.
    tight = AdmissionController(max_queue=2, headroom=2.0)
    assert tight.decide(lane_depth=0, work_ahead_s=0.5, service_s=0.1,
                        now=0.0, deadline_at=1.0) == "deadline"


# -- core: admission at the door --------------------------------------------

def test_offer_admits_and_logs():
    core = GatewayCore(2, service_hint_s=0.1)
    pending, decision = core.offer(_greq(0), now=1.0)
    assert pending is not None
    assert decision.action == "admit"
    assert pending.deadline_at == pytest.approx(1.0 + 10.0)
    assert pending.shard == decision.shard
    assert core.admitted == 1 and core.shed == {}


def test_queue_full_sheds_at_the_bound():
    core = GatewayCore(1, max_queue=3, service_hint_s=1e-6)
    for i in range(3):
        pending, _ = core.offer(_greq(seed=i), now=0.0)
        assert pending is not None
    pending, decision = core.offer(_greq(seed=99), now=0.0)
    assert pending is None
    assert decision.reason == "queue-full"
    assert core.queue_depth(0) == 3
    assert core.shed == {"queue-full": 1}


def test_queue_bound_is_per_lane():
    core = GatewayCore(1, max_queue=2, service_hint_s=1e-6)
    for i in range(2):
        assert core.offer(_greq(seed=i, lane="bulk"), now=0.0)[0]
    # bulk is full; interactive still has room on the same shard.
    assert core.offer(_greq(seed=9, lane="bulk"), now=0.0)[0] is None
    assert core.offer(_greq(seed=9, lane="interactive"), now=0.0)[0]


def test_hopeless_deadline_sheds_at_the_door():
    core = GatewayCore(1, service_hint_s=5.0)
    pending, decision = core.offer(_greq(deadline_s=1.0), now=0.0)
    assert pending is None
    assert decision.reason == "deadline"


def test_work_ahead_counts_own_and_higher_lanes_only():
    core = GatewayCore(1, service_hint_s=1.0)
    # Two queued bulk requests are invisible to an interactive arrival
    # (it overtakes them) but push a bulk arrival past a 2.5s budget.
    assert core.offer(_greq(seed=1, lane="bulk", deadline_s=50.0), 0.0)[0]
    assert core.offer(_greq(seed=2, lane="bulk", deadline_s=50.0), 0.0)[0]
    ok, _ = core.offer(_greq(seed=3, lane="interactive", deadline_s=2.5), 0.0)
    assert ok is not None
    shed, decision = core.offer(_greq(seed=4, lane="bulk", deadline_s=2.5),
                                0.0)
    assert shed is None and decision.reason == "deadline"


# -- core: dispatch ----------------------------------------------------------

def test_dispatch_drains_lanes_in_priority_order():
    core = GatewayCore(1, service_hint_s=1e-6)
    b, _ = core.offer(_greq(seed=1, lane="bulk"), 0.0)
    s, _ = core.offer(_greq(seed=2, lane="standard"), 0.0)
    i, _ = core.offer(_greq(seed=3, lane="interactive"), 0.0)
    order = [core.next_request(0, 0.0).seq for _ in range(3)]
    assert order == [i.seq, s.seq, b.seq]
    assert core.next_request(0, 0.0) is None


def test_expired_entries_shed_at_dispatch():
    core = GatewayCore(1, service_hint_s=0.5)
    stale, _ = core.offer(_greq(seed=1, deadline_s=1.0), now=0.0)
    fresh, _ = core.offer(_greq(seed=2, deadline_s=50.0), now=0.0)
    # Time jumps past the first deadline: dispatch sheds it, serves the
    # second, and the log records the expiry.
    popped = core.next_request(0, now=2.0)
    assert popped.seq == fresh.seq
    assert core.shed == {"expired": 1}
    reasons = [d for d in core.decisions if d.seq == stale.seq]
    assert reasons[-1].action == "shed" and reasons[-1].reason == "expired"


def test_complete_updates_ewma_and_flags_late():
    core = GatewayCore(1, service_hint_s=1.0, ewma_alpha=0.5)
    p1, _ = core.offer(_greq(seed=1, deadline_s=100.0), 0.0)
    core.start(0, p1, 0.0, 2.0)
    done = core.complete(0, core.next_request(0, 0.0) or p1, 2.0, 2.0)
    # First observation replaces the hint outright.
    assert core.service_estimate(0) == pytest.approx(2.0)
    assert done.action == "done" and done.reason == ""
    # Feasible at admission (estimate says 4.0 <= deadline 5.0) but the
    # actual service ran long — completes past the deadline.
    p2, _ = core.offer(_greq(seed=2, deadline_s=3.0), 2.0)
    assert p2 is not None
    core.complete(0, p2, 6.0, 4.0)
    # Then EWMA: 2.0 + 0.5 * (4.0 - 2.0).
    assert core.service_estimate(0) == pytest.approx(3.0)
    late = core.decisions[-1]
    assert late.action == "done" and late.reason == "late"
    assert late.latency_s == pytest.approx(4.0)


def test_metrics_mirror_the_counters():
    metrics = MetricsRegistry()
    core = GatewayCore(1, max_queue=1, service_hint_s=1e-6, metrics=metrics)
    p, _ = core.offer(_greq(seed=1), 0.0)
    core.offer(_greq(seed=2), 0.0)   # queue-full shed
    core.complete(0, p, 0.1, 0.1)
    assert metrics.counter("gateway.admitted").value == 1
    assert metrics.counter("gateway.shed", reason="queue-full").value == 1
    assert metrics.counter("gateway.completed").value == 1
    assert metrics.histogram("gateway.latency_s", lane="standard").count == 1


# -- the decision log --------------------------------------------------------

def test_decision_digest_is_order_and_content_sensitive():
    a = Decision(seq=0, t=0.0, shard=0, lane="standard", action="admit")
    b = Decision(seq=1, t=0.5, shard=1, lane="bulk", action="shed",
                 reason="queue-full")
    assert decision_digest([a, b]) == decision_digest([a, b])
    assert decision_digest([a, b]) != decision_digest([b, a])
    assert decision_digest([a]) != decision_digest([
        Decision(seq=0, t=0.0, shard=0, lane="standard", action="admit",
                 reason="x")])


def test_validation_of_core_parameters():
    with pytest.raises(ValidationError):
        GatewayCore(0)
    with pytest.raises(ValidationError):
        GatewayCore(1, ewma_alpha=0.0)
    with pytest.raises(ValidationError):
        GatewayCore(1, service_hint_s=0.0)
    with pytest.raises(ValidationError):
        AdmissionController(max_queue=0)
